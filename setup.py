"""Legacy setup shim.

Kept because `pip install -e .` (PEP 660) requires the `wheel` package,
which offline environments may lack; `python setup.py develop` installs
an editable egg-link with plain setuptools. All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()

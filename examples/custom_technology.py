#!/usr/bin/env python
"""Evaluate a hypothetical future memory technology (Figures 9 & 10).

The paper's generalization study asks: as emerging technologies mature,
what latency/energy envelope must they hit to be viable? This example
answers it two ways:

1. sweeps read/write latency and energy multipliers over the NMM/N6
   execution profile (the paper's heat maps), and
2. defines a concrete hypothetical device ("ReRAM-2020": 2x DRAM read
   latency, 6x write, 1.5x read energy, 8x write energy, no refresh)
   and evaluates it directly against PCM/STT-RAM/FeRAM.

Run:  python examples/custom_technology.py
"""

from repro.designs.configs import N_CONFIGS
from repro.designs.nmm import NMMDesign
from repro.experiments.heatmap import figure9, figure10
from repro.experiments.render import render_heatmap
from repro.experiments.runner import Runner
from repro.tech.params import DRAM, FERAM, PCM, STTRAM
from repro.tech.scaling import scaled_technology
from repro.workloads.registry import get_workload


def main() -> None:
    runner = Runner(scale=1 / 1024, seed=0)
    workloads = [get_workload(n) for n in ("CG", "BT", "Hashing")]

    print("== generalization heat maps (NMM, 512MB DRAM cache, 512B pages) ==\n")
    print(render_heatmap(figure9(runner, workloads=workloads, factors=(1, 2, 5, 10, 20))))
    print()
    print(render_heatmap(figure10(runner, workloads=workloads, factors=(1, 2, 5, 10, 20))))

    # A concrete hypothetical device on the same profile.
    reram = scaled_technology(
        DRAM,
        read_latency_x=2.0,
        write_latency_x=6.0,
        read_energy_x=1.5,
        write_energy_x=8.0,
        static_x=0.0,  # non-volatile: no refresh
        name="ReRAM-2020",
    )

    print("\n== hypothetical ReRAM-2020 vs the paper's NVMs (NMM/N6) ==\n")
    print(f"{'tech':12s} {'time_norm':>10s} {'energy_norm':>12s} {'edp_norm':>10s}")
    for tech in (reram, PCM, STTRAM, FERAM):
        time_sum = energy_sum = edp_sum = 0.0
        for workload in workloads:
            design = NMMDesign(
                tech, N_CONFIGS["N6"], scale=runner.scale, reference=runner.reference
            )
            ev = runner.evaluate(design, workload)
            time_sum += ev.time_norm
            energy_sum += ev.energy_norm
            edp_sum += ev.edp_norm
        n = len(workloads)
        print(f"{tech.name:12s} {time_sum / n:10.3f} {energy_sum / n:12.3f} "
              f"{edp_sum / n:10.3f}")


if __name__ == "__main__":
    main()

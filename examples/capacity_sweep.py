#!/usr/bin/env python
"""Capacity / page-size sweep over the NMM design space (Figures 1 & 2).

Reproduces the paper's headline NVM study for a workload subset you
choose on the command line: how does the DRAM-cache capacity (N1–N3)
and page size (N3–N9) trade runtime against energy for PCM, STT-RAM,
and FeRAM main memories?

Run:  python examples/capacity_sweep.py [workload ...]
      python examples/capacity_sweep.py Graph500 Hashing
"""

import sys

from repro.experiments.figures import figure1, figure2
from repro.experiments.render import render_figure
from repro.experiments.runner import Runner
from repro.workloads.registry import SUITE, get_workload


def main() -> None:
    names = sys.argv[1:] or ["CG", "Graph500"]
    for name in names:
        if name not in SUITE:
            raise SystemExit(f"unknown workload {name!r}; choose from {list(SUITE)}")
    workloads = [get_workload(name) for name in names]

    runner = Runner(scale=1 / 1024, seed=0)
    print(f"workloads: {', '.join(names)}   (scale {runner.scale:g})\n")

    runtime = figure1(runner, workloads=workloads)
    print(render_figure(runtime))
    print()
    energy = figure2(runner, workloads=workloads)
    print(render_figure(energy))

    # Point out the EDP-optimal configuration per technology.
    print("\nEDP-optimal configurations (time_norm * energy_norm):")
    for tech in runtime.series:
        edp = {
            cfg: runtime.series[tech][cfg] * energy.series[tech][cfg]
            for cfg in runtime.categories
        }
        best = min(edp, key=edp.get)
        print(f"  {tech:8s} -> {best} (EDP {edp[best]:.3f}, "
              f"time {runtime.series[tech][best]:.3f}, "
              f"energy {energy.series[tech][best]:.3f})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""NDM oracle walkthrough: partitioning an address space across DRAM+NVM.

Reproduces the paper's NDM methodology end to end for one workload:

1. trace the workload and profile its hot address ranges (the ranges
   "referenced by different basic blocks", merged when close);
2. enumerate oracle placements — each candidate range to NVM, the rest
   to DRAM — plus the all-NVM extreme;
3. model each placement's runtime/energy/EDP and report the ranking,
   with the DRAM-capacity feasibility check.

Run:  python examples/partitioned_memory.py [workload]
"""

import sys

from repro.experiments.runner import Runner
from repro.partition.profiler import profile_ranges
from repro.tech.params import PCM
from repro.units import format_bytes
from repro.workloads.registry import SUITE, get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Graph500"
    if name not in SUITE:
        raise SystemExit(f"unknown workload {name!r}; choose from {list(SUITE)}")

    runner = Runner(scale=1 / 1024, seed=0)
    workload = get_workload(name)
    trace = runner.prepare(workload)

    print(f"== hot-range profile of {name} ==")
    profiles = profile_ranges(trace.result.stream, trace.result.tracer)
    total_refs = sum(p.references for p in profiles)
    for p in profiles:
        share = p.references / total_refs if total_refs else 0.0
        print(f"  {p.range.label:40s} {format_bytes(p.range.size):>8s} "
              f"refs={p.references:>9,} ({share:5.1%})  "
              f"stores={p.store_fraction:5.1%}")

    print(f"\n== oracle placements (NVM = PCM) ==")
    placements = runner.ndm_oracle(workload, PCM, objective="edp")
    for result in placements:
        ev = result.evaluation
        flag = "ok " if result.feasible else "infeasible"
        print(f"  [{flag}] {result.label}")
        print(f"          time x{ev.time_norm:.3f}  energy x{ev.energy_norm:.3f} "
              f" EDP x{ev.edp_norm:.3f}  "
              f"(DRAM needs {format_bytes(result.dram_bytes_required)})")

    best = placements[0]
    print(f"\nbest placement: {best.label}")
    print(f"  {best.evaluation.time_overhead_pct:+.1f}% runtime, "
          f"{best.evaluation.energy_saving_pct:+.1f}% energy saving "
          f"vs the DRAM baseline — the paper's conclusion that NDM trades "
          f"substantial runtime for energy shows up here.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""NVM endurance study: wear, Start-Gap leveling, and device lifetime.

The paper defers "wearing, which is typical of NVM" to future work;
this example closes the loop. It drives a workload through the NMM
design, feeds the NVM-arriving write stream into per-line wear
tracking — with and without Start-Gap wear leveling — and estimates
device lifetime for PCM/STT-RAM/FeRAM cell endurances using the
performance model's full-scale write rate.

Run:  python examples/endurance_study.py [workload]
"""

import sys

from repro.designs.configs import N_CONFIGS
from repro.designs.nmm import NMMDesign
from repro.endurance.lifetime import CELL_ENDURANCE, estimate_lifetime
from repro.endurance.startgap import StartGapRemapper
from repro.endurance.writes import WriteTracker
from repro.experiments.runner import Runner
from repro.tech.params import PCM
from repro.workloads.registry import SUITE, get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Hashing"
    if name not in SUITE:
        raise SystemExit(f"unknown workload {name!r}; choose from {list(SUITE)}")

    runner = Runner(scale=1 / 1024, seed=0)
    workload = get_workload(name)
    design = NMMDesign(PCM, N_CONFIGS["N6"], scale=runner.scale,
                       reference=runner.reference)

    # Rebuild the design's lower hierarchy, capturing NVM-bound requests.
    trace = runner.prepare(workload)
    dram_cache = design.lower_caches()[0]
    device_lines = max(
        1024, trace.traced_footprint_bytes // 64
    )
    base = trace.result.stream.stats().min_address

    plain = WriteTracker(device_lines, base_address=base)
    leveled = WriteTracker(
        device_lines,
        base_address=base,
        remapper=StartGapRemapper(device_lines),
    )
    for chunk in trace.post_l3.chunks():
        nvm_requests = dram_cache.process(chunk)
        plain.observe(nvm_requests)
        leveled.observe(nvm_requests)

    plain_stats = plain.stats()
    leveled_stats = leveled.stats()
    print(f"== NVM wear for {name} (NMM/N6, PCM) ==")
    print(f"  line writes          : {plain_stats.total_writes:,}")
    print(f"  without leveling     : imbalance x{plain_stats.imbalance:.1f} "
          f"(hottest line {plain_stats.max_writes} writes)")
    print(f"  with Start-Gap       : imbalance x{leveled_stats.imbalance:.1f} "
          f"(+{leveled.remapper.overhead_writes} overhead writes)")

    # Full-scale write rate from the model.
    ev = runner.evaluate(design, workload)
    stats = runner.stats_for(design, workload)
    nvm = stats.level("NVM")
    n_full = trace.ref_raw.amat_ns  # ns per ref (reference)
    upscale = (workload.info.t_ref_s / (trace.ref_raw.amat_ns * 1e-9)) / stats.references
    write_rate = nvm.stores * upscale / ev.time_s

    print(f"\n  modeled NVM write rate (full scale): {write_rate:,.0f} lines/s")
    print(f"\n== estimated lifetimes (footprint-sized device) ==")
    full_lines = workload.info.footprint_bytes // 64
    for tech_name, endurance in CELL_ENDURANCE.items():
        for label, wear, overhead in (
            ("no leveling", plain_stats, 0.0),
            ("Start-Gap  ", leveled_stats,
             1.0 / leveled.remapper.gap_write_interval),
        ):
            est = estimate_lifetime(
                wear,
                cell_endurance=endurance,
                device_lines=full_lines,
                write_rate_per_s=write_rate,
                overhead_fraction=overhead,
            )
            years = f"{est.years:,.1f}" if est.years < 1e6 else ">1e6"
            print(f"  {tech_name:8s} {label}: {years:>12s} years "
                  f"(leveling efficiency {est.leveling_efficiency:.2f})")


if __name__ == "__main__":
    main()

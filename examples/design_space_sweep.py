#!/usr/bin/env python
"""Full design-space sweep with Pareto-frontier extraction.

Evaluates every design family of the paper — plus this reproduction's
6-level deep hybrid — on a workload subset, prints the suite-average
summary per configuration, extracts the time/energy Pareto frontier,
and writes an SVG chart of the frontier designs.

Run:  python examples/design_space_sweep.py
"""

import logging

from repro.designs.configs import EH_CONFIGS, N_CONFIGS
from repro.designs.deephybrid import DeepHybridDesign
from repro.designs.fourlc import FourLCDesign
from repro.designs.fourlcnvm import FourLCNVMDesign
from repro.designs.nmm import NMMDesign
from repro.designs.reference import ReferenceDesign
from repro.experiments.figures import FigureSeries
from repro.experiments.plot import figure_to_svg
from repro.experiments.runner import Runner
from repro.experiments.sweep import (
    best_by,
    pareto_frontier,
    run_sweep,
    summarize,
)
from repro.tech.params import EDRAM, HMC, PCM, STTRAM
from repro.workloads.registry import get_workload


def build_designs(runner):
    """A cross-section of the design space (24 configurations)."""
    common = dict(scale=runner.scale, reference=runner.reference)
    designs = [ReferenceDesign(**common)]
    for tech in (EDRAM, HMC):
        for cfg in ("EH1", "EH6"):
            designs.append(FourLCDesign(tech, EH_CONFIGS[cfg], **common))
    for nvm in (PCM, STTRAM):
        for cfg in ("N1", "N3", "N6", "N9"):
            designs.append(NMMDesign(nvm, N_CONFIGS[cfg], **common))
        designs.append(
            FourLCNVMDesign(EDRAM, nvm, EH_CONFIGS["EH1"], **common)
        )
        designs.append(
            DeepHybridDesign(EDRAM, nvm, EH_CONFIGS["EH1"], N_CONFIGS["N6"],
                             **common)
        )
    return designs


def main() -> None:
    logging.basicConfig(level=logging.INFO, format="%(message)s")
    runner = Runner(scale=1 / 1024, seed=0)
    workloads = [get_workload(n) for n in ("BT", "CG", "Hashing")]

    records = run_sweep(runner, build_designs(runner), workloads)
    summaries = summarize(records)

    print(f"\n{'design':28s} {'time':>8s} {'energy':>8s} {'EDP':>8s}")
    for summary in sorted(summaries, key=lambda s: s.edp_norm):
        print(f"{summary.design:28s} {summary.time_norm:8.3f} "
              f"{summary.energy_norm:8.3f} {summary.edp_norm:8.3f}")

    frontier = pareto_frontier(summaries)
    print("\ntime/energy Pareto frontier:")
    for summary in frontier:
        print(f"  {summary.design:28s} time x{summary.time_norm:.3f} "
              f"energy x{summary.energy_norm:.3f}")
    winner = best_by(summaries, "edp_norm")
    print(f"\nbest EDP overall: {winner.design} (x{winner.edp_norm:.3f})")

    # Chart the frontier.
    chart = FigureSeries(
        figure="Pareto frontier",
        title="suite-average time vs energy (frontier designs)",
        metric="normalized",
        categories=[s.design for s in frontier],
        series={
            "time_norm": {s.design: s.time_norm for s in frontier},
            "energy_norm": {s.design: s.energy_norm for s in frontier},
        },
    )
    path = figure_to_svg(chart, "pareto_frontier.svg", width=1100)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()

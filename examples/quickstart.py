#!/usr/bin/env python
"""Quickstart: evaluate one emerging-memory design on one workload.

Builds the paper's NMM design (PCM main memory behind a 512 MB DRAM
cache with 512 B pages — configuration N6), traces the NPB CG kernel,
and prints runtime/energy/EDP against the conventional DRAM baseline.

Run:  python examples/quickstart.py
"""

from repro.designs.configs import N_CONFIGS
from repro.designs.nmm import NMMDesign
from repro.experiments.runner import Runner
from repro.tech.params import PCM
from repro.workloads.registry import get_workload


def main() -> None:
    # A runner owns tracing, the shared L1-L3 simulation, and the
    # models. scale shrinks every capacity and footprint together so
    # the experiment fits on a laptop (DESIGN.md section 4).
    runner = Runner(scale=1 / 1024, seed=0)

    workload = get_workload("CG")
    design = NMMDesign(
        PCM, N_CONFIGS["N6"], scale=runner.scale, reference=runner.reference
    )

    evaluation = runner.evaluate(design, workload)

    print(f"workload : {workload.name} ({workload.info.description})")
    print(f"design   : {design.name}  ({design.dram_cache_config().describe()})")
    print()
    print(f"runtime  : {evaluation.time_s:8.2f} s   "
          f"({evaluation.time_overhead_pct:+.1f}% vs DRAM baseline)")
    print(f"dynamic  : {evaluation.dynamic_j:8.2f} J")
    print(f"static   : {evaluation.static_j:8.2f} J")
    print(f"total    : {evaluation.energy_j:8.2f} J   "
          f"({evaluation.energy_saving_pct:+.1f}% saving)")
    print(f"EDP      : {evaluation.edp_js:8.1f} J*s  "
          f"(normalized {evaluation.edp_norm:.3f})")

    # Per-level data movement is available too:
    stats = runner.stats_for(design, workload)
    print("\nper-level traffic:")
    for level in stats.levels:
        print(f"  {level.name:6s} loads={level.loads:>10,} "
              f"stores={level.stores:>9,} hit={level.hit_rate:.3f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The paper's deferred factors, quantified: cost, wear, checkpointing.

Section VI lists what the study does not cover — total cost of
ownership, NVM wear — and its related work motivates NVM as fast
checkpoint memory. This example runs all three extension models on one
configuration (NMM with PCM at N3 capacity) and prints a one-page
"should you buy it" summary.

Run:  python examples/deferred_factors.py [workload]
"""

import sys

from repro.designs.configs import N_CONFIGS
from repro.designs.nmm import NMMDesign
from repro.designs.reference import ReferenceDesign
from repro.experiments.checkpoint import (
    PFS_TARGET,
    CheckpointTarget,
    plan_checkpointing,
)
from repro.experiments.runner import Runner
from repro.tech.cost import design_capacities_gb, estimate_cost
from repro.tech.ewt import with_early_write_termination
from repro.tech.params import PCM
from repro.workloads.registry import SUITE, get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "AMG2013"
    if name not in SUITE:
        raise SystemExit(f"unknown workload {name!r}; choose from {list(SUITE)}")

    runner = Runner(scale=1 / 1024, seed=0)
    workload = get_workload(name)
    footprint = workload.info.footprint_bytes

    reference = ReferenceDesign(scale=runner.scale, reference=runner.reference)
    nmm = NMMDesign(PCM, N_CONFIGS["N3"], scale=runner.scale,
                    reference=runner.reference)
    nmm_ewt = NMMDesign(with_early_write_termination(PCM), N_CONFIGS["N3"],
                        scale=runner.scale, reference=runner.reference)

    print(f"== deferred-factor summary: {name}, NMM-PCM-N3 vs DRAM baseline ==\n")

    # --- performance & energy (the paper's models) -----------------------
    ev_ref = runner.evaluate(reference, workload)
    ev_nmm = runner.evaluate(nmm, workload)
    ev_ewt = runner.evaluate(nmm_ewt, workload)
    print("performance/energy:")
    print(f"  runtime    x{ev_nmm.time_norm:.3f}")
    print(f"  energy     x{ev_nmm.energy_norm:.3f} "
          f"(x{ev_ewt.energy_norm:.3f} with early write termination)")

    # --- cost (deferred: TCO) --------------------------------------------
    ref_cost = estimate_cost(ev_ref, design_capacities_gb(reference, footprint))
    nmm_cost = estimate_cost(ev_nmm, design_capacities_gb(nmm, footprint))
    print("\ncapital + energy cost (1M runs amortized):")
    print(f"  baseline   ${ref_cost.total_dollars:10,.0f} "
          f"(capital ${ref_cost.capital_dollars:,.0f})")
    print(f"  NMM-PCM    ${nmm_cost.total_dollars:10,.0f} "
          f"(capital ${nmm_cost.capital_dollars:,.0f})")

    # --- wear (deferred: endurance) ----------------------------------------
    stats = runner.stats_for(nmm, workload)
    nvm = stats.level("NVM")
    trace = runner.prepare(workload)
    upscale = (
        workload.info.t_ref_s / (trace.ref_raw.amat_ns * 1e-9)
    ) / stats.references
    write_rate = nvm.stores * upscale / ev_nmm.time_s
    from repro.endurance.lifetime import CELL_ENDURANCE, estimate_lifetime
    from repro.endurance.writes import WearStats

    perfect = WearStats(0, 0, 0, 0.0, 0.0, 1.0)
    lifetime = estimate_lifetime(
        perfect,
        cell_endurance=CELL_ENDURANCE["PCM"],
        device_lines=footprint // 64,
        write_rate_per_s=write_rate,
        overhead_fraction=0.01,  # Start-Gap at psi=100
    )
    print("\nendurance (PCM, Start-Gap leveled):")
    print(f"  NVM write rate {write_rate:,.0f} lines/s "
          f"-> lifetime {lifetime.years:,.1f} years")

    # --- checkpointing (related-work motivation) ---------------------------
    pcm_target = CheckpointTarget.from_technology(PCM, bandwidth_gbs=2.0)
    for target in (pcm_target, PFS_TARGET):
        plan = plan_checkpointing(footprint, target)
        print(f"\ncheckpointing to {target.name}:")
        print(f"  {plan.delta_s:6.1f} s/checkpoint, optimal interval "
              f"{plan.tau_opt_s / 60:5.1f} min, waste {plan.waste_fraction:.1%}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Bring your own workload: instrument a kernel and evaluate designs.

Everything the built-in suite does is available to user code: allocate
TracedArrays from a Tracer, run your algorithm, wrap the stream in a
Workload, and hand it to the Runner. This example instruments a
2D 5-point Jacobi stencil (a workload family the built-in suite does
not include) and compares the paper's designs on it.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro.designs.configs import EH_CONFIGS, N_CONFIGS
from repro.designs.fourlc import FourLCDesign
from repro.designs.fourlcnvm import FourLCNVMDesign
from repro.designs.nmm import NMMDesign
from repro.experiments.runner import Runner
from repro.tech.params import EDRAM, PCM
from repro.trace.tracer import Tracer
from repro.units import GiB
from repro.workloads.base import TraceResult, Workload, WorkloadInfo


class Jacobi2D(Workload):
    """5-point Jacobi relaxation on an n x n grid."""

    info = WorkloadInfo(
        name="Jacobi2D",
        suite="Custom",
        footprint_gb=2.0,  # pretend full-size footprint
        t_ref_s=60.0,  # pretend reference runtime
        inputs="n x n grid, 2 arrays",
        description="2D 5-point Jacobi stencil",
    )

    def __init__(self, sweeps: int = 2) -> None:
        self.sweeps = sweeps

    def trace(self, scale: float = 1.0 / 256, seed: int = 0) -> TraceResult:
        target = self.scaled_footprint_bytes(scale)
        n = max(16, int((target / (2 * 8)) ** 0.5))  # two n x n float64 arrays
        tracer = Tracer()
        with tracer.pause():
            rng = np.random.default_rng(seed)
            u = tracer.array("jacobi.u", (n, n))
            v = tracer.array("jacobi.v", (n, n))
            u.data[:] = rng.uniform(-1, 1, size=(n, n))
            before = float(np.abs(np.diff(u.data, axis=0)).mean())

        src, dst = u, v
        for _ in range(self.sweeps):
            # Row-wise traced sweep: loads of the 5-point neighbourhood,
            # stores of the updated interior row.
            for i in range(1, n - 1):
                north = src[i - 1, 1:-1]
                south = src[i + 1, 1:-1]
                west = src[i, 0:-2]
                east = src[i, 2:]
                centre = src[i, 1:-1]
                dst[i, 1:-1] = 0.2 * (north + south + east + west + centre)
            src, dst = dst, src

        with tracer.pause():
            after = float(np.abs(np.diff(src.data, axis=0)).mean())
        return TraceResult(
            stream=tracer.stream,
            tracer=tracer,
            checks={"grid": n, "smoothing": after < before},
        )


def main() -> None:
    runner = Runner(scale=1 / 1024, seed=0)
    workload = Jacobi2D()

    designs = [
        NMMDesign(PCM, N_CONFIGS["N6"], scale=runner.scale, reference=runner.reference),
        FourLCDesign(EDRAM, EH_CONFIGS["EH1"], scale=runner.scale,
                     reference=runner.reference),
        FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH1"], scale=runner.scale,
                        reference=runner.reference),
    ]

    trace = runner.prepare(workload)
    stats = trace.result.stream.stats()
    print(f"Jacobi2D traced: {stats.events:,} accesses, "
          f"{stats.footprint_bytes / 2**20:.1f} MB footprint, "
          f"store fraction {stats.store_fraction:.2f}")
    assert trace.result.checks["smoothing"], "the stencil must do real work"

    print(f"\n{'design':24s} {'time_norm':>10s} {'energy_norm':>12s} {'edp_norm':>10s}")
    for design in designs:
        ev = runner.evaluate(design, workload)
        print(f"{design.name:24s} {ev.time_norm:10.3f} {ev.energy_norm:12.3f} "
              f"{ev.edp_norm:10.3f}")


if __name__ == "__main__":
    main()

"""NVM device-lifetime estimation.

Lifetime is set by the first line to exhaust its cell endurance::

    lifetime_s = endurance / (per-line write rate of the hottest line)
               = endurance * device_lines / (write_rate * imbalance)

where ``imbalance`` (max/mean per-line writes) comes from the measured
wear distribution and ``write_rate`` (line writes per second at full
scale) comes from the performance model: NVM stores of the traced run,
upscaled to the full run, divided by the modeled runtime. Wear leveling
improves lifetime by driving ``imbalance`` toward 1 at the cost of its
overhead writes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.endurance.writes import WearStats
from repro.errors import ModelError

#: Published cell-endurance orders of magnitude (writes per cell).
CELL_ENDURANCE: dict[str, float] = {
    "PCM": 1e8,
    "STTRAM": 1e15,
    "FeRAM": 1e14,
}

_SECONDS_PER_YEAR: float = 365.25 * 24 * 3600


@dataclass(frozen=True)
class LifetimeEstimate:
    """Outcome of a lifetime analysis.

    Attributes:
        years: estimated years until the hottest line wears out.
        ideal_years: years under perfect leveling (imbalance = 1).
        leveling_efficiency: years / ideal_years in (0, 1].
        write_rate_per_s: modeled full-scale line-write rate.
        overhead_fraction: extra writes added by wear leveling
            (0 when none).
    """

    years: float
    ideal_years: float
    leveling_efficiency: float
    write_rate_per_s: float
    overhead_fraction: float


def estimate_lifetime(
    wear: WearStats,
    *,
    cell_endurance: float,
    device_lines: int,
    write_rate_per_s: float,
    overhead_fraction: float = 0.0,
) -> LifetimeEstimate:
    """Estimate device lifetime from a measured wear distribution.

    Args:
        wear: wear statistics of the (traced) run.
        cell_endurance: writes a cell survives (see
            :data:`CELL_ENDURANCE`).
        device_lines: physical lines of the device.
        write_rate_per_s: full-scale line writes per second (from the
            performance model).
        overhead_fraction: additional write overhead of the leveling
            scheme (e.g. 1/ψ for Start-Gap).

    Returns:
        A :class:`LifetimeEstimate`.
    """
    if cell_endurance <= 0:
        raise ModelError("cell endurance must be positive")
    if device_lines <= 0:
        raise ModelError("device must have lines")
    if write_rate_per_s < 0 or overhead_fraction < 0:
        raise ModelError("rates must be non-negative")

    effective_rate = write_rate_per_s * (1.0 + overhead_fraction)
    if effective_rate == 0:
        infinite = float("inf")
        return LifetimeEstimate(
            years=infinite,
            ideal_years=infinite,
            leveling_efficiency=1.0,
            write_rate_per_s=0.0,
            overhead_fraction=overhead_fraction,
        )
    # Perfect leveling: every line ages at rate effective_rate / lines.
    ideal_seconds = cell_endurance * device_lines / effective_rate
    imbalance = max(1.0, wear.imbalance)
    seconds = ideal_seconds / imbalance
    return LifetimeEstimate(
        years=seconds / _SECONDS_PER_YEAR,
        ideal_years=ideal_seconds / _SECONDS_PER_YEAR,
        leveling_efficiency=1.0 / imbalance,
        write_rate_per_s=write_rate_per_s,
        overhead_fraction=overhead_fraction,
    )

"""Per-line write tracking and wear-distribution statistics.

NVM cells wear out with writes; what limits device lifetime is not the
*total* write volume but the *hottest line* (the first line to exceed
cell endurance kills the device without remapping). The tracker
consumes the store requests arriving at an NVM device — exactly the
writeback stream the cache simulator produces — optionally through a
wear-leveling remapper, and summarizes the resulting wear distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.trace.events import AccessBatch
from repro.units import log2_int


@dataclass(frozen=True)
class WearStats:
    """Summary of a device's per-line wear distribution.

    Attributes:
        total_writes: total line writes absorbed.
        lines_written: number of distinct physical lines written.
        max_writes: writes to the hottest physical line.
        mean_writes: total / device lines.
        cov: coefficient of variation of per-line writes over the whole
            device (0 = perfectly even wear).
        imbalance: max / mean (1.0 = perfect leveling). This is the
            factor by which the hottest line shortens lifetime.
    """

    total_writes: int
    lines_written: int
    max_writes: int
    mean_writes: float
    cov: float
    imbalance: float


class WriteTracker:
    """Counts writes per physical line of a simulated NVM device.

    Args:
        device_lines: number of physical lines the device has.
        line_size: line size in bytes (power of two).
        base_address: byte address mapped to logical line 0 (the
            device's base in the simulated address space); addresses
            are wrapped modulo the device size, which models the
            physical address decoding of a real part.
        remapper: optional wear-leveling remapper with a
            ``remap(logical_line) -> physical_line`` method and a
            ``write_performed()`` hook (e.g.
            :class:`~repro.endurance.startgap.StartGapRemapper`).
    """

    def __init__(
        self,
        device_lines: int,
        line_size: int = 64,
        base_address: int = 0,
        remapper=None,
    ) -> None:
        if device_lines <= 0:
            raise SimulationError("device must have at least one line")
        self.device_lines = device_lines
        self.line_size = line_size
        self._line_bits = log2_int(line_size)
        self.base_address = base_address
        self.remapper = remapper
        # Physical wear counters (remapper may use device_lines + spares).
        physical = device_lines if remapper is None else remapper.physical_lines
        self.writes = np.zeros(physical, dtype=np.int64)

    def observe(self, batch: AccessBatch) -> None:
        """Feed a request batch; only store requests wear the device."""
        if len(batch) == 0:
            return
        mask = batch.is_store != 0
        if not mask.any():
            return
        addrs = batch.addresses[mask]
        logical = (
            (addrs - np.uint64(self.base_address)) >> np.uint64(self._line_bits)
        ).astype(np.int64) % self.device_lines
        if self.remapper is None:
            np.add.at(self.writes, logical, 1)
        else:
            # Remapping state advances with every write, so the loop is
            # serial (the remapper is O(1) per write).
            for line in logical.tolist():
                self.writes[self.remapper.remap(line)] += 1
                self.remapper.write_performed()

    def stats(self) -> WearStats:
        """Current wear-distribution summary."""
        total = int(self.writes.sum())
        max_writes = int(self.writes.max()) if total else 0
        mean = total / len(self.writes) if len(self.writes) else 0.0
        if mean > 0:
            cov = float(self.writes.std() / mean)
            imbalance = max_writes / mean
        else:
            cov = 0.0
            imbalance = 1.0
        return WearStats(
            total_writes=total,
            lines_written=int(np.count_nonzero(self.writes)),
            max_writes=max_writes,
            mean_writes=mean,
            cov=cov,
            imbalance=imbalance,
        )

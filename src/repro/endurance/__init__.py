"""NVM endurance modeling (the paper's deferred "wearing" factor).

"We have not factored in ... wearing, which is typical of NVM" —
Section VI. This subpackage adds it:

- :mod:`repro.endurance.writes` — per-line write tracking of the
  NVM-arriving request stream and wear-distribution statistics;
- :mod:`repro.endurance.startgap` — the Start-Gap wear-leveling scheme
  the paper cites (Qureshi et al., MICRO 2009 [12]): an algebraic
  line remapping that needs only two registers, spreading hot-line
  writes over the whole device;
- :mod:`repro.endurance.lifetime` — device lifetime estimation from
  cell endurance, modeled write rates, and the wear distribution.
"""

from repro.endurance.writes import WearStats, WriteTracker
from repro.endurance.startgap import StartGapRemapper
from repro.endurance.lifetime import CELL_ENDURANCE, estimate_lifetime, LifetimeEstimate

__all__ = [
    "WriteTracker",
    "WearStats",
    "StartGapRemapper",
    "CELL_ENDURANCE",
    "LifetimeEstimate",
    "estimate_lifetime",
]

"""Start-Gap wear leveling (Qureshi et al., MICRO 2009 — the paper's
reference [12]).

Start-Gap adds one spare line to the device and two registers:

- ``gap``: the physical position of the spare (initially the last
  line);
- ``start``: a rotation offset (initially 0), incremented each time the
  gap completes a full sweep of the device.

Every ``gap_write_interval`` (ψ, typically 100) writes, the line just
above the gap moves into the gap, and the gap moves up one position —
so over time every logical line slowly migrates through every physical
position, spreading spatially-concentrated writes across the device at
an overhead of one extra write per ψ writes.

The address mapping is algebraic (no table)::

    physical = (logical + start) mod N
    if physical >= gap: physical += 1       # skip the gap
"""

from __future__ import annotations

from repro.errors import SimulationError

#: The ψ recommended by the Start-Gap paper.
DEFAULT_GAP_WRITE_INTERVAL: int = 100


class StartGapRemapper:
    """Start-Gap logical→physical line remapping.

    Args:
        device_lines: number of *logical* lines exposed (N); the device
            physically has N + 1 (one spare: the gap).
        gap_write_interval: writes between gap movements (ψ).
    """

    def __init__(
        self,
        device_lines: int,
        gap_write_interval: int = DEFAULT_GAP_WRITE_INTERVAL,
    ) -> None:
        if device_lines <= 0:
            raise SimulationError("device must have at least one line")
        if gap_write_interval <= 0:
            raise SimulationError("gap_write_interval must be positive")
        self.device_lines = device_lines
        self.gap_write_interval = gap_write_interval
        self.gap = device_lines  # spare initially at the end
        self.start = 0
        self._writes_since_move = 0
        #: total gap-movement (overhead) writes performed
        self.overhead_writes = 0

    @property
    def physical_lines(self) -> int:
        """Physical lines incl. the spare."""
        return self.device_lines + 1

    def remap(self, logical_line: int) -> int:
        """Physical line currently backing ``logical_line``."""
        if not 0 <= logical_line < self.device_lines:
            raise SimulationError(
                f"logical line {logical_line} out of range "
                f"[0, {self.device_lines})"
            )
        physical = (logical_line + self.start) % self.device_lines
        if physical >= self.gap:
            physical += 1
        return physical

    def write_performed(self) -> None:
        """Account one demand write; move the gap every ψ writes."""
        self._writes_since_move += 1
        if self._writes_since_move >= self.gap_write_interval:
            self._writes_since_move = 0
            self._move_gap()

    def _move_gap(self) -> None:
        """Move the gap one position (one overhead line copy)."""
        self.overhead_writes += 1
        if self.gap == 0:
            # The gap has swept the whole device: wrap it to the end
            # and advance the rotation.
            self.gap = self.device_lines
            self.start = (self.start + 1) % self.device_lines
        else:
            self.gap -= 1

    def mapping_is_bijective(self) -> bool:
        """Diagnostic: the N logical lines map to N distinct physical
        lines, none of them the gap."""
        seen = {self.remap(line) for line in range(self.device_lines)}
        return len(seen) == self.device_lines and self.gap not in seen

"""Sampled simulation windows: warmup + measured window per stride.

Full-scale (NPB class C/D footprint) traces run to billions of
references; simulating every one is exact but makes whole-campaign
turnaround infeasible. The standard systems answer — used by
PEBS-style online tracers (arXiv:2011.13432) and by the source paper's
own iteration-reduction methodology — is *periodic sampling*: simulate
a short **warmup** segment to re-warm cache state, **measure** the
window that follows, skip the rest of the stride, and extrapolate.

:class:`SampleSpec` names the three lengths (in trace events)::

    |<-------------------- stride -------------------->|
    | warmup (simulated, | window (simulated, | skipped |
    |   not measured)    |     measured)      |         |

and :func:`iter_sample_segments` slices any
:class:`~repro.trace.stream.AddressStream` into ``(batch, measured)``
pairs accordingly (chunk boundaries are respected — slices are
zero-copy views). The runner replays only warmup + window events,
snapshots per-level counters around each measured window, and scales
the measured deltas by ``total_events / measured_events`` to estimate
whole-stream :class:`~repro.cache.stats.HierarchyStats`.

Fidelity: the estimate is exact for stride-stationary behaviour and
degrades with phase behaviour whose period beats against the stride;
the measured fraction is recorded alongside every extrapolated result
so downstream consumers can judge. Streams no longer than
``warmup + window`` are measured in full (factor 1.0) — sampling never
makes a short stream *less* exact.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Iterable, Iterator

from repro.cache.stats import LevelStats
from repro.errors import ConfigError
from repro.trace.events import AccessBatch
from repro.trace.stream import AddressStream


@dataclass(frozen=True)
class SampleSpec:
    """Periodic sampling parameters, all in trace events.

    Attributes:
        warmup: events simulated (to warm cache state) but excluded
            from measurement at the start of each stride.
        window: events simulated *and* measured after the warmup.
        stride: distance between window starts; events beyond
            ``warmup + window`` within a stride are skipped entirely.
    """

    warmup: int
    window: int
    stride: int

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigError(
                f"sample window must be positive, got {self.window}"
            )
        if self.warmup < 0:
            raise ConfigError(
                f"sample warmup must be non-negative, got {self.warmup}"
            )
        if self.stride < self.warmup + self.window:
            raise ConfigError(
                f"sample stride ({self.stride}) must cover "
                f"warmup + window ({self.warmup + self.window})"
            )

    @classmethod
    def parse(cls, text: str) -> "SampleSpec":
        """Parse the CLI form ``warmup:window:stride``."""
        parts = text.split(":")
        if len(parts) != 3:
            raise ConfigError(
                f"sample spec must be WARMUP:WINDOW:STRIDE, got {text!r}"
            )
        try:
            warmup, window, stride = (int(p) for p in parts)
        except ValueError as exc:
            raise ConfigError(
                f"sample spec fields must be integers, got {text!r}"
            ) from exc
        return cls(warmup=warmup, window=window, stride=stride)

    @property
    def key(self) -> str:
        """Canonical string form (CLI syntax, journal engine_class)."""
        return f"{self.warmup}:{self.window}:{self.stride}"

    @property
    def measured_fraction(self) -> float:
        """Fraction of a long stream that lands in measured windows."""
        return self.window / self.stride

    def simulated_events(self, total: int) -> int:
        """Events actually simulated (warmup + window) out of ``total``."""
        return sum(
            len(batch)
            for batch, _ in iter_sample_segments_of_length(total, self)
        )


def _segments_of_length(total: int, spec: SampleSpec) -> Iterator[tuple[int, int, bool]]:
    """Yield ``(start, stop, measured)`` simulated spans of a stream.

    Skipped spans are not yielded. Streams no longer than
    ``warmup + window`` come back as one fully measured span.
    """
    if total <= 0:
        return
    if total <= spec.warmup + spec.window:
        yield 0, total, True
        return
    position = 0
    while position < total:
        phase = position % spec.stride
        if phase < spec.warmup:
            stop = min(total, position + (spec.warmup - phase))
            yield position, stop, False
        elif phase < spec.warmup + spec.window:
            stop = min(total, position + (spec.warmup + spec.window - phase))
            yield position, stop, True
        else:
            stop = min(total, position + (spec.stride - phase))
        position = stop


def iter_sample_segments_of_length(
    total: int, spec: SampleSpec
) -> Iterator[tuple[range, bool]]:
    """Simulated spans of an abstract stream of ``total`` events."""
    for start, stop, measured in _segments_of_length(total, spec):
        yield range(start, stop), measured


def iter_sample_segments(
    stream: AddressStream, spec: SampleSpec
) -> Iterator[tuple[AccessBatch, bool]]:
    """Slice a stream into simulated ``(batch, measured)`` segments.

    Batches are zero-copy views of the stream's chunks, in stream
    order; a segment crossing a chunk boundary is yielded as multiple
    batches with the same ``measured`` flag. Skipped spans produce
    nothing.
    """
    spans = _segments_of_length(len(stream), spec)
    span = next(spans, None)
    base = 0
    for chunk in stream.chunks():
        chunk_end = base + len(chunk)
        while span is not None and span[0] < chunk_end:
            start, stop, measured = span
            lo = max(start, base) - base
            hi = min(stop, chunk_end) - base
            if hi > lo:
                yield chunk.slice(lo, hi), measured
            if stop <= chunk_end:
                span = next(spans, None)
            else:
                break
        base = chunk_end


def iter_recorded_segments(
    stream: AddressStream, segments: list[tuple[int, bool]]
) -> Iterator[tuple[AccessBatch, bool]]:
    """Re-slice a recorded stream along previously recorded segments.

    ``segments`` is a list of ``(events, measured)`` pairs summing to
    ``len(stream)`` — e.g. the per-source-segment capture counts the
    runner records during a sampled upper-level simulation. Yields
    ``(batch, measured)`` zero-copy views in order, splitting at chunk
    boundaries as needed; zero-length segments are skipped.
    """
    queue = [(int(n), bool(m)) for n, m in segments]
    index = 0
    remaining = 0
    measured = False
    for chunk in stream.chunks():
        position = 0
        while position < len(chunk):
            while remaining == 0:
                if index >= len(queue):
                    raise ConfigError(
                        "recorded segments shorter than the stream they "
                        "describe"
                    )
                remaining, measured = queue[index]
                index += 1
            take = min(remaining, len(chunk) - position)
            yield chunk.slice(position, position + take), measured
            position += take
            remaining -= take


# ----------------------------------------------------------------------
# Counter snapshot/delta/scale arithmetic for extrapolation
# ----------------------------------------------------------------------

#: Integer counter fields of :class:`LevelStats` (everything but name).
_COUNTER_FIELDS = tuple(
    f.name for f in fields(LevelStats) if f.name != "name"
)


def snapshot_levels(levels: Iterable[LevelStats]) -> list[LevelStats]:
    """Value copies of live counter objects (cheap: a few ints each)."""
    return [replace(level) for level in levels]


def delta_levels(
    after: Iterable[LevelStats], before: Iterable[LevelStats]
) -> list[LevelStats]:
    """Per-field ``after - before`` (counters accumulated in between)."""
    out = []
    for a, b in zip(after, before):
        out.append(LevelStats(name=a.name, **{
            name: getattr(a, name) - getattr(b, name)
            for name in _COUNTER_FIELDS
        }))
    return out


def add_levels(
    accumulator: list[LevelStats] | None, increment: Iterable[LevelStats]
) -> list[LevelStats]:
    """Accumulate measured deltas (None starts a fresh accumulator)."""
    increment = list(increment)
    if accumulator is None:
        return increment
    return [a.merge(b) for a, b in zip(accumulator, increment)]


def scale_levels(levels: Iterable[LevelStats], factor: float) -> list[LevelStats]:
    """Extrapolate measured counters to the whole stream.

    Each counter is scaled and rounded independently; rates (hit rate,
    bandwidth shares) are preserved to rounding. ``factor`` 1.0 is the
    identity.
    """
    if factor == 1.0:
        return [replace(level) for level in levels]
    return [
        LevelStats(name=level.name, **{
            name: int(round(getattr(level, name) * factor))
            for name in _COUNTER_FIELDS
        })
        for level in levels
    ]

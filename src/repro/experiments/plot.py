"""Standalone SVG rendering of figures and heat maps.

The environment this reproduction targets has no plotting stack, so
charts are emitted as self-contained SVG (hand-assembled markup — no
dependencies). Two chart types cover the paper's needs:

- grouped bar charts for the Figure 1–8 series
  (:func:`figure_to_svg`);
- color-mapped grids for the Figure 9–10 heat maps
  (:func:`heatmap_to_svg`).

``python -m repro.experiments figure 2 --svg fig2.svg`` writes one.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape

from repro.errors import ModelError
from repro.experiments.figures import FigureSeries
from repro.experiments.heatmap import HeatMap

#: Series colors (colorblind-safe Okabe-Ito subset).
PALETTE = ["#0072B2", "#E69F00", "#009E73", "#CC79A7", "#56B4E9", "#D55E00"]

_FONT = 'font-family="Helvetica, Arial, sans-serif"'


def _svg_document(width: int, height: int, body: list[str]) -> str:
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">\n'
        + "\n".join(body)
        + "\n</svg>\n"
    )


def _nice_ticks(vmax: float, n: int = 5) -> list[float]:
    """Round tick positions covering [0, vmax]."""
    if vmax <= 0:
        return [0.0, 1.0]
    raw = vmax / n
    magnitude = 10 ** int(f"{raw:e}".split("e")[1])
    for step in (1, 2, 2.5, 5, 10):
        if raw <= step * magnitude:
            tick = step * magnitude
            break
    else:  # pragma: no cover - loop always breaks at step=10
        tick = 10 * magnitude
    ticks = []
    value = 0.0
    while value < vmax + tick / 2:
        ticks.append(round(value, 10))
        value += tick
    return ticks


def figure_to_svg(
    fig: FigureSeries,
    path: str | Path,
    *,
    width: int = 900,
    height: int = 420,
) -> Path:
    """Write a grouped bar chart of a figure's series.

    Returns the path written.
    """
    if not fig.series:
        raise ModelError("cannot plot an empty figure")
    margin_left, margin_right = 70, 20
    margin_top, margin_bottom = 56, 64
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom
    categories = fig.categories
    labels = list(fig.series)
    vmax = max(
        max(points.values()) for points in fig.series.values()
    )
    ticks = _nice_ticks(vmax)
    vtop = ticks[-1]

    def y_of(value: float) -> float:
        return margin_top + plot_h * (1.0 - value / vtop)

    body: list[str] = []
    body.append(
        f'<text x="{width / 2}" y="22" text-anchor="middle" {_FONT} '
        f'font-size="15" font-weight="bold">{escape(fig.figure)}: '
        f"{escape(fig.title)}</text>"
    )
    # Axes + gridlines + tick labels.
    for tick in ticks:
        y = y_of(tick)
        body.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" '
            f'x2="{width - margin_right}" y2="{y:.1f}" '
            f'stroke="#ddd" stroke-width="1"/>'
        )
        body.append(
            f'<text x="{margin_left - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'{_FONT} font-size="11">{tick:g}</text>'
        )
    # Reference line at 1.0 (parity with the baseline).
    if vtop >= 1.0:
        y = y_of(1.0)
        body.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" '
            f'x2="{width - margin_right}" y2="{y:.1f}" '
            f'stroke="#999" stroke-width="1" stroke-dasharray="5,4"/>'
        )
    # Bars.
    group_w = plot_w / len(categories)
    bar_w = group_w * 0.8 / max(1, len(labels))
    for ci, category in enumerate(categories):
        group_x = margin_left + ci * group_w + group_w * 0.1
        for si, label in enumerate(labels):
            value = fig.series[label].get(category)
            if value is None:
                continue
            x = group_x + si * bar_w
            y = y_of(min(value, vtop))
            body.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                f'height="{margin_top + plot_h - y:.1f}" '
                f'fill="{PALETTE[si % len(PALETTE)]}">'
                f"<title>{escape(label)} {escape(category)}: {value:.3f}</title>"
                f"</rect>"
            )
        body.append(
            f'<text x="{group_x + group_w * 0.4:.1f}" '
            f'y="{margin_top + plot_h + 16}" text-anchor="middle" {_FONT} '
            f'font-size="11">{escape(category)}</text>'
        )
    # Legend.
    legend_x = margin_left
    legend_y = height - 18
    for si, label in enumerate(labels):
        body.append(
            f'<rect x="{legend_x}" y="{legend_y - 10}" width="12" height="12" '
            f'fill="{PALETTE[si % len(PALETTE)]}"/>'
        )
        body.append(
            f'<text x="{legend_x + 16}" y="{legend_y}" {_FONT} '
            f'font-size="12">{escape(label)}</text>'
        )
        legend_x += 26 + 8 * len(label)
    # Axis line.
    body.append(
        f'<line x1="{margin_left}" y1="{margin_top}" x2="{margin_left}" '
        f'y2="{margin_top + plot_h}" stroke="#333" stroke-width="1"/>'
    )
    body.append(
        f'<text x="16" y="{margin_top + plot_h / 2}" {_FONT} font-size="12" '
        f'transform="rotate(-90 16 {margin_top + plot_h / 2})" '
        f'text-anchor="middle">{escape(fig.metric)}</text>'
    )
    path = Path(path)
    path.write_text(_svg_document(width, height, body))
    return path


def _heat_color(value: float, vmin: float, vmax: float) -> str:
    """Blue (low) -> white (mid) -> red (high) diverging map around 1.0."""
    if vmax <= vmin:
        t = 0.5
    else:
        t = (value - vmin) / (vmax - vmin)
    t = min(1.0, max(0.0, t))
    if t < 0.5:
        # blue -> white
        s = t * 2
        r, g, b = int(40 + 215 * s), int(90 + 165 * s), 255
    else:
        s = (t - 0.5) * 2
        r, g, b = 255, int(255 - 165 * s), int(255 - 215 * s)
    return f"#{r:02x}{g:02x}{b:02x}"


def heatmap_to_svg(
    hm: HeatMap,
    path: str | Path,
    *,
    cell: int = 72,
) -> Path:
    """Write a color-grid rendering of a heat map.

    Returns the path written.
    """
    if not hm.values:
        raise ModelError("cannot plot an empty heat map")
    margin_left, margin_top = 90, 64
    rows, cols = len(hm.write_factors), len(hm.read_factors)
    width = margin_left + cols * cell + 30
    height = margin_top + rows * cell + 50
    flat = [v for row in hm.values for v in row]
    vmin, vmax = min(flat), max(flat)
    body: list[str] = []
    body.append(
        f'<text x="{width / 2}" y="22" text-anchor="middle" {_FONT} '
        f'font-size="14" font-weight="bold">{escape(hm.figure)}: '
        f"{escape(hm.title)}</text>"
    )
    for ri, (write_x, row) in enumerate(zip(hm.write_factors, hm.values)):
        y = margin_top + ri * cell
        body.append(
            f'<text x="{margin_left - 8}" y="{y + cell / 2 + 4}" '
            f'text-anchor="end" {_FONT} font-size="12">w {write_x:g}x</text>'
        )
        for ci, value in enumerate(row):
            x = margin_left + ci * cell
            body.append(
                f'<rect x="{x}" y="{y}" width="{cell}" height="{cell}" '
                f'fill="{_heat_color(value, vmin, vmax)}" stroke="#fff"/>'
            )
            body.append(
                f'<text x="{x + cell / 2}" y="{y + cell / 2 + 4}" '
                f'text-anchor="middle" {_FONT} font-size="12">'
                f"{value:.2f}</text>"
            )
    for ci, read_x in enumerate(hm.read_factors):
        x = margin_left + ci * cell
        body.append(
            f'<text x="{x + cell / 2}" y="{margin_top + rows * cell + 18}" '
            f'text-anchor="middle" {_FONT} font-size="12">r {read_x:g}x</text>'
        )
    path = Path(path)
    path.write_text(_svg_document(width, height, body))
    return path

"""Calibration of the local-traffic factor against the paper's anchor.

DESIGN.md §6.1 explains the one fitted constant of this reproduction:
``local_factor``, the analytic stack/temporary traffic per traced data
reference. Its value is chosen so that the model reproduces the single
quantitative sensitivity the paper publishes — Figure 9's "a 5x
increase in read [latency] results in 5% runtime penalty" on the
NMM/N6 execution profile.

This module makes that procedure reproducible: it measures the anchor
delta as a function of lambda (without re-simulating — the adjustment
is analytic) and solves for the lambda that hits the target via
bisection. Re-run it after changing workloads or hierarchy parameters:

    from repro.experiments.calibrate import calibrate_local_factor
    result = calibrate_local_factor(scale=1/1024)
    print(result.local_factor, result.achieved_delta)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.stats import HierarchyStats, LevelStats
from repro.designs.configs import N_CONFIGS
from repro.designs.nmm import NMMDesign
from repro.designs.reference import ReferenceDesign
from repro.errors import ModelError
from repro.experiments.runner import _LOCAL_BITS, Runner
from repro.model.evaluate import evaluate_stats, finalize
from repro.tech.params import DRAM
from repro.tech.scaling import scaled_technology
from repro.workloads.base import Workload
from repro.workloads.registry import SUITE, get_workload

#: The published anchor: read-latency multiplier and runtime delta.
ANCHOR_READ_X: float = 5.0
ANCHOR_DELTA: float = 0.05
#: The execution profile the anchor is stated for.
ANCHOR_CONFIG: str = "N6"


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a local-factor calibration.

    Attributes:
        local_factor: the fitted lambda.
        achieved_delta: the anchor delta at that lambda.
        target_delta: what was asked for.
        iterations: bisection steps taken.
    """

    local_factor: float
    achieved_delta: float
    target_delta: float
    iterations: int


def _with_locals(stats: HierarchyStats, lam: float) -> HierarchyStats:
    """Re-apply the analytic local-traffic adjustment at a new lambda."""
    extra = int(lam * stats.references)
    l1 = stats.levels[0]
    adjusted = LevelStats(
        name=l1.name,
        loads=l1.loads + extra,
        stores=l1.stores,
        load_bits=l1.load_bits + extra * _LOCAL_BITS,
        store_bits=l1.store_bits,
        load_hits=l1.load_hits + extra,
        load_misses=l1.load_misses,
        store_hits=l1.store_hits,
        store_misses=l1.store_misses,
        writebacks=l1.writebacks,
        fills=l1.fills,
    )
    return HierarchyStats(
        levels=[adjusted] + stats.levels[1:],
        references=stats.references + extra,
    )


def anchor_delta(
    runner: Runner,
    workloads: list[Workload],
    lam: float,
    read_x: float = ANCHOR_READ_X,
) -> float:
    """Average runtime delta of the read-latency anchor at lambda.

    The runner must have been constructed with ``local_factor=0`` so
    the adjustment can be applied analytically here.
    """
    if runner.local_factor != 0:
        raise ModelError("calibration requires a runner with local_factor=0")
    config = N_CONFIGS[ANCHOR_CONFIG]
    base_tech = scaled_technology(DRAM, static_x=0.0, name="NVM1x")
    fast_tech = scaled_technology(
        DRAM, read_latency_x=read_x, static_x=0.0, name="NVMrx"
    )
    total = 0.0
    for workload in workloads:
        design = NMMDesign(DRAM, config, scale=runner.scale,
                           reference=runner.reference)
        stats = _with_locals(runner.stats_for(design, workload), lam)
        ref_stats = _with_locals(
            runner.stats_for(
                ReferenceDesign(scale=runner.scale, reference=runner.reference),
                workload,
            ),
            lam,
        )
        ref_design = ReferenceDesign(scale=runner.scale,
                                     reference=runner.reference)
        ref_raw = evaluate_stats(
            "REF", ref_stats, ref_design.bindings(workload.info.footprint_bytes)
        )
        values = {}
        for label, tech in (("base", base_tech), ("scaled", fast_tech)):
            design_t = NMMDesign(tech, config, scale=runner.scale,
                                 reference=runner.reference)
            raw = evaluate_stats(
                design_t.name, stats,
                design_t.bindings(workload.info.footprint_bytes),
            )
            values[label] = finalize(raw, ref_raw, workload.info.meta()).time_norm
        total += values["scaled"] - values["base"]
    return total / len(workloads)


def calibrate_local_factor(
    scale: float = 1.0 / 1024,
    seed: int = 0,
    workload_names: list[str] | None = None,
    target_delta: float = ANCHOR_DELTA,
    lam_bounds: tuple[float, float] = (0.0, 64.0),
    tolerance: float = 0.002,
    max_iterations: int = 40,
) -> CalibrationResult:
    """Bisect lambda until the anchor delta matches the target.

    The delta decreases monotonically in lambda (more L1-hitting
    traffic dilutes the memory-level sensitivity), so bisection
    converges; if even lambda=0 undershoots the target, 0 is returned.
    """
    runner = Runner(scale=scale, seed=seed, local_factor=0.0)
    workloads = [
        get_workload(name) for name in (workload_names or list(SUITE))
    ]
    lo, hi = lam_bounds
    delta_lo = anchor_delta(runner, workloads, lo)
    if delta_lo <= target_delta:
        return CalibrationResult(
            local_factor=lo, achieved_delta=delta_lo,
            target_delta=target_delta, iterations=0,
        )
    iterations = 0
    delta_mid = delta_lo
    while iterations < max_iterations and (hi - lo) > 1e-3:
        mid = (lo + hi) / 2
        delta_mid = anchor_delta(runner, workloads, mid)
        if abs(delta_mid - target_delta) <= tolerance:
            return CalibrationResult(
                local_factor=mid, achieved_delta=delta_mid,
                target_delta=target_delta, iterations=iterations + 1,
            )
        if delta_mid > target_delta:
            lo = mid
        else:
            hi = mid
        iterations += 1
    mid = (lo + hi) / 2
    return CalibrationResult(
        local_factor=mid,
        achieved_delta=anchor_delta(runner, workloads, mid),
        target_delta=target_delta,
        iterations=iterations,
    )

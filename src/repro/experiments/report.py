"""Markdown report generation.

Produces a self-contained reproduction report — the tables, every
figure's series, the heat maps, and a scorecard of the paper's shape
claims — as a single Markdown document. This is what
``python -m repro.experiments report`` writes; CI can archive it per
commit to track reproduction drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import figures as figures_mod
from repro.experiments import heatmap as heatmap_mod
from repro.experiments import tables as tables_mod
from repro.experiments.figures import FigureSeries
from repro.experiments.heatmap import HeatMap
from repro.experiments.runner import Runner
from repro.workloads.base import Workload


@dataclass
class ClaimCheck:
    """One paper claim verified against the regenerated data.

    Attributes:
        claim: short statement of the paper's claim.
        holds: whether the regenerated data satisfies it.
        detail: the numbers behind the verdict.
    """

    claim: str
    holds: bool
    detail: str


@dataclass
class ReproductionReport:
    """All regenerated artifacts plus the claim scorecard."""

    figures: dict[str, FigureSeries] = field(default_factory=dict)
    heatmaps: dict[str, HeatMap] = field(default_factory=dict)
    claims: list[ClaimCheck] = field(default_factory=list)


def _md_table(headers: list[str], rows: list[list[str]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines += ["| " + " | ".join(str(c) for c in row) + " |" for row in rows]
    return "\n".join(lines)


def _figure_md(fig: FigureSeries, precision: int = 3) -> str:
    headers = [fig.metric] + fig.categories
    rows = [
        [label] + [f"{points.get(c, float('nan')):.{precision}f}" for c in fig.categories]
        for label, points in fig.series.items()
    ]
    return f"### {fig.figure}: {fig.title}\n\n" + _md_table(headers, rows)


def _heatmap_md(hm: HeatMap, precision: int = 3) -> str:
    headers = ["write\\read"] + [f"{f:g}x" for f in hm.read_factors]
    rows = [
        [f"{wf:g}x"] + [f"{v:.{precision}f}" for v in row]
        for wf, row in zip(hm.write_factors, hm.values)
    ]
    return f"### {hm.figure}: {hm.title}\n\n" + _md_table(headers, rows)


def check_claims(report: ReproductionReport) -> list[ClaimCheck]:
    """Evaluate the paper's key shape claims on regenerated data."""
    claims: list[ClaimCheck] = []

    fig1 = report.figures.get("Figure 1")
    if fig1:
        ok = all(
            series["N3"] < series["N1"] for series in fig1.series.values()
        )
        claims.append(
            ClaimCheck(
                claim="NMM: larger DRAM cache reduces runtime (N1 -> N3)",
                holds=ok,
                detail=", ".join(
                    f"{label}: {s['N1']:.3f}->{s['N3']:.3f}"
                    for label, s in fig1.series.items()
                ),
            )
        )
    fig2 = report.figures.get("Figure 2")
    if fig2:
        bests = {
            label: min(series, key=series.get)
            for label, series in fig2.series.items()
        }
        ok = all(best not in ("N1", "N2", "N3") for best in bests.values()) and all(
            min(series.values()) < 1.0 for series in fig2.series.values()
        )
        claims.append(
            ClaimCheck(
                claim="NMM: sub-4KB pages minimize energy with net savings",
                holds=ok,
                detail=str(bests),
            )
        )
    fig4 = report.figures.get("Figure 4")
    if fig4:
        ok = all(
            series["EH6"] > series["EH1"] for series in fig4.series.values()
        )
        claims.append(
            ClaimCheck(
                claim="4LC: energy grows with page size (EH1 best region)",
                holds=ok,
                detail=", ".join(
                    f"{label}: EH1 {s['EH1']:.3f} vs EH6 {s['EH6']:.3f}"
                    for label, s in fig4.series.items()
                ),
            )
        )
    fig6 = report.figures.get("Figure 6")
    if fig6:
        ok = any(series["EH1"] < 0.7 for series in fig6.series.values())
        claims.append(
            ClaimCheck(
                claim="4LCNVM: 64B pages reach deep energy savings",
                holds=ok,
                detail=", ".join(
                    f"{label}: {s['EH1']:.3f}" for label, s in fig6.series.items()
                ),
            )
        )
    fig7 = report.figures.get("Figure 7")
    if fig7:
        values = [v for s in fig7.series.values() for v in s.values()]
        claims.append(
            ClaimCheck(
                claim="NDM: every workload pays a runtime overhead",
                holds=all(v >= 1.0 for v in values),
                detail=f"range {min(values):.3f}..{max(values):.3f}",
            )
        )
    fig9 = report.heatmaps.get("Figure 9")
    if fig9:
        base = fig9.at(fig9.read_factors[0], fig9.write_factors[0])
        rx5 = next((f for f in fig9.read_factors if f == 5), None)
        if rx5:
            delta = fig9.at(5, fig9.write_factors[0]) - base
            claims.append(
                ClaimCheck(
                    claim="Heat map: 5x read latency costs single-digit % runtime",
                    holds=0.0 < delta < 0.15,
                    detail=f"delta {delta:+.3f} over base {base:.3f}",
                )
            )
    fig10 = report.heatmaps.get("Figure 10")
    if fig10:
        saving_cells = sum(1 for row in fig10.values for v in row if v < 1.0)
        claims.append(
            ClaimCheck(
                claim="Heat map: energy-saving cells despite costlier ops",
                holds=saving_cells > 0,
                detail=f"{saving_cells} cells below DRAM parity",
            )
        )
    return claims


def generate_report(
    runner: Runner,
    workloads: list[Workload] | None = None,
    heatmap_factors: tuple[float, ...] = (1, 2, 5, 10, 20),
) -> ReproductionReport:
    """Regenerate every figure and check the claims."""
    report = ReproductionReport()
    for fn in (
        figures_mod.figure1,
        figures_mod.figure2,
        figures_mod.figure3,
        figures_mod.figure4,
        figures_mod.figure5,
        figures_mod.figure6,
        figures_mod.figure7,
        figures_mod.figure8,
    ):
        fig = fn(runner, workloads)
        report.figures[fig.figure] = fig
    for fn in (heatmap_mod.figure9, heatmap_mod.figure10):
        hm = fn(runner, workloads, factors=heatmap_factors)
        report.heatmaps[hm.figure] = hm
    report.claims = check_claims(report)
    return report


def render_markdown(report: ReproductionReport, scale: float) -> str:
    """The full Markdown document."""
    parts = [
        "# Reproduction report",
        "",
        f"Generated by `repro` at scale {scale:g}.",
        "",
        "## Tables",
        "",
    ]
    for number, fn in enumerate(
        (tables_mod.table1, tables_mod.table2, tables_mod.table3, tables_mod.table4),
        start=1,
    ):
        headers, rows = fn()
        parts += [f"### Table {number}", "", _md_table(headers, rows), ""]
    parts += ["## Figures", ""]
    for fig in report.figures.values():
        parts += [_figure_md(fig), ""]
    for hm in report.heatmaps.values():
        parts += [_heatmap_md(hm), ""]
    parts += ["## Claim scorecard", ""]
    rows = [
        ["✓" if claim.holds else "✗", claim.claim, claim.detail]
        for claim in report.claims
    ]
    parts.append(_md_table(["holds", "claim", "detail"], rows))
    parts.append("")
    return "\n".join(parts)

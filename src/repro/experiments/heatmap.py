"""Figures 9 & 10: the generalization heat maps.

The paper's final study abstracts away named technologies: using the
execution profile of the NMM design (512 MB DRAM cache, 512 B pages —
configuration N6), it scales the main memory's read/write latency
(Figure 9) or read/write energy (Figure 10) as multiples of DRAM's and
maps the resulting normalized runtime / energy.

Because the hierarchy's data movement does not depend on the terminal
technology, the whole sweep reuses one simulation per workload and
re-evaluates only the closed-form model — exactly how the paper could
sweep a continuous parameter space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.designs.configs import N_CONFIGS
from repro.designs.nmm import NMMDesign
from repro.experiments.runner import Runner
from repro.model.evaluate import finalize
from repro.tech.params import DRAM
from repro.tech.scaling import scaled_technology
from repro.workloads.base import Workload
from repro.workloads.registry import SUITE, get_workload

#: Default multiplier axis (the paper sweeps 1x..20x).
DEFAULT_FACTORS: tuple[float, ...] = (1, 2, 5, 10, 15, 20)
#: The execution profile the heat maps are generated from.
PROFILE_CONFIG: str = "N6"


@dataclass
class HeatMap:
    """A (write factor × read factor) grid of averaged model outputs.

    Attributes:
        figure: figure label.
        title: what the map shows.
        metric: "time_norm" or "energy_norm".
        read_factors: column axis (read multipliers).
        write_factors: row axis (write multipliers).
        values: ``values[i][j]`` = metric at write_factors[i],
            read_factors[j], averaged over the workload suite.
    """

    figure: str
    title: str
    metric: str
    read_factors: list[float]
    write_factors: list[float]
    values: list[list[float]] = field(default_factory=list)

    def at(self, read_x: float, write_x: float) -> float:
        """Value at a grid point.

        Raises:
            ValueError: if the point is not on the grid.
        """
        try:
            j = self.read_factors.index(read_x)
            i = self.write_factors.index(write_x)
        except ValueError:
            raise ValueError(
                f"({read_x}, {write_x}) not on the grid "
                f"{self.read_factors} x {self.write_factors}"
            ) from None
        return self.values[i][j]


def _heatmap(
    figure: str,
    title: str,
    metric: str,
    scale_latency: bool,
    runner: Runner,
    workloads: list[Workload] | None,
    factors: tuple[float, ...],
) -> HeatMap:
    suite = workloads if workloads is not None else [get_workload(n) for n in SUITE]
    config = N_CONFIGS[PROFILE_CONFIG]
    out = HeatMap(
        figure=figure,
        title=title,
        metric=metric,
        read_factors=list(factors),
        write_factors=list(factors),
    )

    # One simulation per workload: stats are shared across the sweep.
    traces = []
    for workload in suite:
        design = NMMDesign(DRAM, config, scale=runner.scale, reference=runner.reference)
        stats = runner.stats_for(design, workload)
        trace = runner.prepare(workload)
        traces.append((workload, stats, trace))

    for write_x in factors:
        row: list[float] = []
        for read_x in factors:
            if scale_latency:
                tech = scaled_technology(
                    DRAM,
                    read_latency_x=read_x,
                    write_latency_x=write_x,
                    static_x=0.0,
                    name="NVMx",
                )
            else:
                tech = scaled_technology(
                    DRAM,
                    read_energy_x=read_x,
                    write_energy_x=write_x,
                    static_x=0.0,
                    name="NVMx",
                )
            total = 0.0
            for workload, stats, trace in traces:
                design = NMMDesign(
                    tech, config, scale=runner.scale, reference=runner.reference
                )
                from repro.model.evaluate import evaluate_stats

                raw = evaluate_stats(
                    design.name,
                    stats,
                    design.bindings(workload.info.footprint_bytes),
                )
                evaluation = finalize(raw, trace.ref_raw, workload.info.meta())
                total += getattr(evaluation, metric)
            row.append(total / len(traces))
        out.values.append(row)
    return out


def figure9(
    runner: Runner,
    workloads: list[Workload] | None = None,
    factors: tuple[float, ...] = DEFAULT_FACTORS,
) -> HeatMap:
    """Figure 9: normalized runtime vs read/write *latency* multipliers."""
    return _heatmap(
        "Figure 9",
        "Heat-map of normalized runtime of NMM as a function of "
        "read and write latency",
        "time_norm",
        True,
        runner,
        workloads,
        factors,
    )


def figure10(
    runner: Runner,
    workloads: list[Workload] | None = None,
    factors: tuple[float, ...] = DEFAULT_FACTORS,
) -> HeatMap:
    """Figure 10: normalized energy vs read/write *energy* multipliers."""
    return _heatmap(
        "Figure 10",
        "Heat-map of normalized energy consumed by NMM as a function of "
        "read and write energy",
        "energy_norm",
        False,
        runner,
        workloads,
        factors,
    )

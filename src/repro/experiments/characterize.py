"""Workload characterization: the analysis behind Table 4.

The paper picks workloads for their memory behaviour ("memory bound
... large memory footprint"); this module produces the quantitative
version of that justification from a traced run:

- footprint and read/write mix;
- reuse-distance CDF points (predicted fully-associative hit rates at
  L1/L2/L3/L4-class capacities — sampled, since reuse analysis is
  quadratic-ish);
- post-L3 memory intensity (main-memory accesses per 1000 references);
- page-level spatial locality (DRAM-cache hit rate at 4 KB pages, the
  quantity that decides the NMM design's fate per workload).

``characterize()`` returns a structured profile; ``render_profiles``
prints the suite table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.setassoc import SetAssociativeCache
from repro.experiments.runner import Runner
from repro.trace.reuse import hit_rate_at_capacity, reuse_distances
from repro.trace.stream import AddressStream
from repro.units import KiB, MiB
from repro.workloads.base import Workload


def _spatial_sample(stream: AddressStream, rate: float) -> AddressStream:
    """Keep all accesses to a hash-sampled ``rate`` fraction of lines."""
    if rate >= 1.0:
        return stream
    threshold = np.uint64(int(rate * (1 << 32)))
    out = AddressStream()
    mask32 = np.uint64(0xFFFFFFFF)
    for chunk in stream.chunks():
        lines = chunk.addresses >> np.uint64(6)
        # 32-bit avalanche mixer (lowbias32-style) so the threshold
        # comparison is uniform even for small, dense line numbers.
        h = (lines * np.uint64(2654435761)) & mask32
        h ^= h >> np.uint64(16)
        h = (h * np.uint64(0x45D9F3B)) & mask32
        h ^= h >> np.uint64(16)
        mask = h < threshold
        if mask.any():
            out.append(
                chunk.addresses[mask], chunk.sizes[mask], chunk.is_store[mask]
            )
    return out

#: Capacities (lines of 64 B) the reuse CDF is reported at.
CDF_CAPACITIES: dict[str, int] = {
    "32KB": 32 * KiB // 64,
    "256KB": 256 * KiB // 64,
    "2.5MB": 2560 * KiB // 64,
    "16MB": 16 * MiB // 64,
}

#: Sampling divisor for the reuse analysis (it is O(n·d̄)).
_REUSE_SAMPLE_TARGET: int = 60_000


@dataclass(frozen=True)
class WorkloadProfile:
    """Characterization of one traced workload.

    Attributes:
        name: workload name.
        events: traced references.
        footprint_mb: traced footprint (64 B-line proxy), MB.
        store_fraction: fraction of references that are stores.
        reuse_cdf: capacity label -> predicted fully-associative LRU
            hit rate (from the sampled reuse-distance profile).
        memory_intensity: main-memory accesses per 1000 references on
            the reference hierarchy (post-L3 traffic density).
        page_hit_rate: hit rate of a 4 KB-page DRAM-cache-class level
            fed with the post-L3 stream (spatial locality at page
            granularity).
    """

    name: str
    events: int
    footprint_mb: float
    store_fraction: float
    reuse_cdf: dict[str, float]
    memory_intensity: float
    page_hit_rate: float


def characterize(runner: Runner, workload: Workload) -> WorkloadProfile:
    """Profile one workload on the runner's traced run."""
    trace = runner.prepare(workload)
    stats = trace.result.stream.stats()

    # Reuse CDF via SHARDS-style *spatial* sampling: keep every access
    # to a hash-sampled subset of lines. Unlike systematic (1-in-k)
    # sampling this preserves each kept line's full reuse pattern; the
    # measured stack distances shrink by the sampling rate R, so
    # capacities are compared at C*R (Waldspurger et al., FAST'15).
    rate = min(1.0, _REUSE_SAMPLE_TARGET / max(1, len(trace.result.stream)))
    sampled = _spatial_sample(trace.result.stream, rate)
    distances = reuse_distances(sampled)
    cdf = {
        label: hit_rate_at_capacity(distances, max(1, int(lines * rate)))
        for label, lines in CDF_CAPACITIES.items()
    }

    # Post-L3 intensity relative to *data* references (exclude the
    # analytic local traffic so workloads are comparable).
    data_references = len(trace.result.stream)
    intensity = 1000.0 * len(trace.post_l3) / max(1, data_references)

    # Page-level spatial locality of the memory stream, measured with a
    # page cache sized to ~1/8 of the traced footprint so capacity
    # pressure is comparable across workloads and scales (a fixed size
    # would trivially hold small traced runs entirely).
    target_capacity = max(4096 * 8, stats.footprint_bytes // 8)
    sets = 1 << max(0, (target_capacity // (4096 * 8) - 1).bit_length())
    page_cache = SetAssociativeCache(
        CacheConfig(
            "PROF", sets * 4096 * 8, 8, 4096, sector_size=64, hashed_sets=True
        )
    )
    for chunk in trace.post_l3.chunks():
        page_cache.process(chunk)
    return WorkloadProfile(
        name=workload.name,
        events=data_references,
        footprint_mb=stats.footprint_bytes / MiB,
        store_fraction=stats.store_fraction,
        reuse_cdf=cdf,
        memory_intensity=intensity,
        page_hit_rate=page_cache.stats.hit_rate,
    )


def render_profiles(profiles: list[WorkloadProfile]) -> str:
    """The suite characterization table."""
    headers = (
        f"{'workload':10s} {'events':>10s} {'fp(MB)':>7s} {'st%':>5s} "
        + " ".join(f"{label:>7s}" for label in CDF_CAPACITIES)
        + f" {'mem/1k':>7s} {'pg-hit':>7s}"
    )
    lines = [headers, "-" * len(headers)]
    for p in profiles:
        lines.append(
            f"{p.name:10s} {p.events:>10,} {p.footprint_mb:7.1f} "
            f"{100 * p.store_fraction:5.1f} "
            + " ".join(
                f"{p.reuse_cdf[label]:7.3f}" for label in CDF_CAPACITIES
            )
            + f" {p.memory_intensity:7.1f} {p.page_hit_rate:7.3f}"
        )
    return "\n".join(lines)

"""Shared lower-level prefix simulation plans.

The runner already simulates the L1–L3 SRAM pyramid once per workload
and replays the captured post-L3 stream per design. A :class:`SimPlan`
generalizes that trick to the *lower* levels: designs whose
``lower_caches()`` chains start with identical configurations share the
simulation of that common prefix. In the paper's sweeps every 4LC and
4LC-NVM point uses the same eDRAM (or HMC) L4, so the expensive L4
simulation runs once; a :class:`CapturingCache` records the post-L4
stream (fills, writebacks, and — in drain mode — end-of-stream
flushes, in emission order) and only the cheap terminal memories
differ per design.

Exactness: a cache level's behaviour depends only on its own
configuration and its input stream — there is no back-invalidation, so
nothing below a level can influence it. Two designs whose chains share
a config-identical prefix therefore drive bit-identical prefix
simulations, and replaying the captured inter-level stream through the
remaining levels reproduces, batch for batch, exactly what a full
:class:`~repro.cache.hierarchy.Hierarchy` run would feed them. Drain
order is preserved too: a captured level's flush lands in the captured
stream after all regular traffic and after the flush residue of the
levels above it, which is precisely the top-to-bottom order of
:meth:`Hierarchy.drain`. The equivalence tests assert bit-identical
:class:`~repro.cache.stats.HierarchyStats` for every built-in design.

Plans are trees: each node is one cache level keyed by its canonical
:func:`config_key`; designs attach at the node where their chain ends.
Subtrees containing a single design skip capture entirely (there is
nobody to share with, and capture costs memory), running the remaining
chain directly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace
from typing import TYPE_CHECKING, Iterable

from repro.cache.config import CacheConfig
from repro.cache.hierarchy import drain_chain, run_chain
from repro.cache.partition import PartitionedMemory
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.stats import LevelStats
from repro.telemetry.core import NullTelemetry, Telemetry, get_active
from repro.trace.events import AccessBatch
from repro.trace.stream import AddressStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.designs.base import MemoryDesign


def config_key(config: CacheConfig) -> tuple:
    """Canonical identity of a cache level's simulation behaviour.

    Two levels with equal keys produce identical statistics and emit
    identical downstream batches on identical input streams (the config
    fully determines geometry, sectoring, set hashing, and replacement
    policy). The ``engine`` field is deliberately normalized out: the
    scalar and set-parallel engines are bit-identical, so designs that
    differ only in engine choice share a simulation node (the node runs
    with whichever engine the first-attached design requested).
    """
    return dataclasses.astuple(dataclasses.replace(config, engine="auto"))


class CapturingCache(SetAssociativeCache):
    """A cache level that records every batch it emits downward.

    Both regular emissions (fills + dirty-eviction writebacks from
    :meth:`process`) and end-of-stream flushes (:meth:`flush_dirty`)
    are appended to :attr:`captured`, so the captured stream is exactly
    what the next level would have seen — in order — during a full
    hierarchy run, drain traffic included.
    """

    def __init__(self, config: CacheConfig) -> None:
        super().__init__(config)
        self.captured = AddressStream()

    def process(self, batch: AccessBatch) -> AccessBatch:
        out = super().process(batch)
        if len(out):
            self.captured.append(out.addresses, out.sizes, out.is_store)
        return out

    def flush_dirty(self) -> AccessBatch:
        out = super().flush_dirty()
        if len(out):
            self.captured.append(out.addresses, out.sizes, out.is_store)
        return out


class _Sink:
    """Terminal that absorbs a captured level's emissions unrecorded."""

    name = "SINK"

    def process(self, batch: AccessBatch) -> None:
        return None


class _PlanNode:
    """One cache level in the prefix tree (the root carries no config)."""

    __slots__ = ("config", "children", "designs")

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config
        self.children: dict[tuple, "_PlanNode"] = {}
        self.designs: list["MemoryDesign"] = []

    def design_count(self) -> int:
        """Designs attached in this subtree."""
        return len(self.designs) + sum(
            child.design_count() for child in self.children.values()
        )


def _memory_stats(memory) -> list[LevelStats]:
    if isinstance(memory, PartitionedMemory):
        return memory.stats_list
    return [memory.stats]


class SimPlan:
    """A shared-prefix simulation plan over a set of designs.

    Args:
        designs: the designs to simulate together. Designs sharing a
            ``sim_key()`` are simulation-identical and collapse to one
            representative; designs whose lower chains contain
            non-standard cache types (anything that is not exactly a
            :class:`SetAssociativeCache`) cannot be regrouped safely
            and run *direct* — their own instances, no sharing.

    Attributes:
        designs: the input designs, in order.
    """

    def __init__(self, designs: Iterable["MemoryDesign"]) -> None:
        self.designs = list(designs)
        self._root = _PlanNode()
        self._direct: list["MemoryDesign"] = []
        seen: set[str] = set()
        for design in self.designs:
            sim_key = design.sim_key()
            if sim_key in seen:
                continue
            seen.add(sim_key)
            lower = design.lower_caches()
            if any(type(cache) is not SetAssociativeCache for cache in lower):
                self._direct.append(design)
                continue
            node = self._root
            for cache in lower:
                key = config_key(cache.config)
                child = node.children.get(key)
                if child is None:
                    child = node.children[key] = _PlanNode(cache.config)
                node = child
            node.designs.append(design)

    # -- reporting ------------------------------------------------------

    @property
    def sim_count(self) -> int:
        """Distinct simulation behaviours (one per unique sim key)."""
        return self._root.design_count() + len(self._direct)

    @property
    def shared_levels(self) -> int:
        """Cache levels simulated once on behalf of >1 design."""

        def count(node: _PlanNode) -> int:
            total = 0
            for child in node.children.values():
                if child.design_count() > 1:
                    total += 1
                total += count(child)
            return total

        return count(self._root)

    def describe(self) -> str:
        """One line per prefix level with its sharing degree."""
        lines: list[str] = []

        def walk(node: _PlanNode, depth: int) -> None:
            for child in node.children.values():
                n = child.design_count()
                tag = "shared" if n > 1 else "private"
                lines.append(
                    "  " * depth
                    + f"{child.config.name} [{tag} x{n}] {child.config.describe()}"
                )
                walk(child, depth + 1)

        walk(self._root, 0)
        for design in self._direct:
            lines.append(f"{design.sim_key()} [direct]")
        return "\n".join(lines) or "(terminal memories only)"

    # -- execution ------------------------------------------------------

    def execute(
        self,
        stream: AddressStream,
        *,
        drain: bool = False,
        telemetry: Telemetry | NullTelemetry | None = None,
        workload: str = "",
    ) -> dict[str, list[LevelStats]]:
        """Simulate every design's lower levels on ``stream``.

        Shared prefixes run once; each level's output is captured and
        replayed into the subtree below it. Returns, per ``sim_key``,
        the list of lower-level statistics (cache levels in chain
        order, then terminal memory levels) ready to be appended to the
        shared upper-level statistics.

        Args:
            stream: the post-L3 request stream (block requests).
            drain: flush dirty blocks at end of stream at every level,
                in hierarchy order (see
                :class:`~repro.experiments.runner.Runner`).
            telemetry: explicit instance; None resolves the active one.
            workload: label for telemetry gauges/events.
        """
        tel = telemetry if telemetry is not None else get_active()
        results: dict[str, list[LevelStats]] = {}
        self._walk(self._root, stream, [], results, drain, tel, workload)
        for design in self._direct:
            caches = design.lower_caches()
            memory = design.memory()
            for chunk in stream.chunks():
                run_chain(chunk, caches, memory)
            if drain:
                drain_chain(caches, memory)
            results[design.sim_key()] = [
                replace(c.stats) for c in caches
            ] + _memory_stats(memory)
        return results

    def _walk(
        self,
        node: _PlanNode,
        stream: AddressStream,
        prefix_stats: list[LevelStats],
        results: dict[str, list[LevelStats]],
        drain: bool,
        tel: Telemetry | NullTelemetry,
        workload: str,
    ) -> None:
        # Designs whose whole cache chain is the prefix: only their
        # terminal memory consumes the (already captured) stream.
        for design in node.designs:
            memory = design.memory()
            for chunk in stream.chunks():
                memory.process(chunk)
            results[design.sim_key()] = [
                replace(s) for s in prefix_stats
            ] + _memory_stats(memory)
        for child in node.children.values():
            shared_by = child.design_count()
            if shared_by == 1:
                self._run_private(child, stream, prefix_stats, results, drain)
                continue
            cache = CapturingCache(child.config)
            sink = _Sink()
            with tel.span(
                "simplan.prefix", level=child.config.name,
                workload=workload, designs=shared_by,
            ):
                for chunk in stream.chunks():
                    run_chain(chunk, [cache], sink)
                if drain:
                    drain_chain([cache], sink)
            stage = f"post_{child.config.name.lower()}"
            tel.gauge(
                "repro_captured_stream_requests", stage=stage,
                workload=workload,
            ).set(len(cache.captured))
            tel.gauge(
                "repro_captured_stream_nbytes", stage=stage,
                workload=workload,
            ).set(cache.captured.nbytes)
            tel.event(
                "prefix_captured", level=child.config.name,
                workload=workload, designs=shared_by,
                requests=len(cache.captured), nbytes=cache.captured.nbytes,
            )
            self._walk(
                child, cache.captured, prefix_stats + [cache.stats],
                results, drain, tel, workload,
            )

    def _run_private(
        self,
        node: _PlanNode,
        stream: AddressStream,
        prefix_stats: list[LevelStats],
        results: dict[str, list[LevelStats]],
        drain: bool,
    ) -> None:
        """Run an unshared suffix chain directly, without capture."""
        configs = []
        current = node
        while True:
            configs.append(current.config)
            if current.designs:
                design = current.designs[0]
                break
            current = next(iter(current.children.values()))
        caches = [SetAssociativeCache(c) for c in configs]
        memory = design.memory()
        for chunk in stream.chunks():
            run_chain(chunk, caches, memory)
        if drain:
            drain_chain(caches, memory)
        results[design.sim_key()] = (
            [replace(s) for s in prefix_stats]
            + [c.stats for c in caches]
            + _memory_stats(memory)
        )

"""Generic design-space sweeps and Pareto-frontier extraction.

The figures reproduce the paper's fixed sweeps; this module generalizes
them: evaluate an arbitrary iterable of designs over a workload set,
collect tidy records, and extract the time/energy Pareto frontier —
the "which configurations are even worth considering" question the
paper answers per design family with EDP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.designs.base import MemoryDesign
from repro.errors import ConfigError
from repro.experiments.runner import Runner
from repro.model.evaluate import Evaluation
from repro.workloads.base import Workload


@dataclass(frozen=True)
class SweepRecord:
    """One (design, workload) evaluation in tidy form.

    Attributes:
        design: design/configuration label.
        workload: workload name.
        evaluation: the full model output.
    """

    design: str
    workload: str
    evaluation: Evaluation


@dataclass(frozen=True)
class SweepSummary:
    """Per-design averages over the workload set.

    Attributes:
        design: design label.
        time_norm / energy_norm / edp_norm: suite means.
    """

    design: str
    time_norm: float
    energy_norm: float
    edp_norm: float


def run_sweep(
    runner: Runner,
    designs: Iterable[MemoryDesign],
    workloads: Sequence[Workload],
    *,
    workers: int = 1,
    supervise: bool = True,
) -> list[SweepRecord]:
    """Evaluate every design on every workload.

    Thin fail-fast wrapper over
    :class:`repro.resilience.executor.SweepExecutor` (shared-prefix
    batching included): the first cell failure re-raises its original
    exception. ``workers > 1`` runs the grid on the supervised worker
    pool (``supervise=False`` falls back to the legacy shard pool);
    the live exception object then cannot cross the process boundary,
    so failures re-raise as :class:`~repro.errors.SweepError` carrying
    the formatted chain. For journalling, retries, deadlines, and
    keep-going semantics, use the executor directly.
    """
    designs = list(designs)
    if not workloads:
        raise ConfigError("a sweep needs at least one workload")
    if not designs:
        raise ConfigError("a sweep needs at least one design")
    from repro.errors import SweepError
    from repro.resilience.executor import SweepExecutor

    result = SweepExecutor(
        runner, keep_going=False, workers=workers, supervise=supervise
    ).run(designs, workloads)
    for outcome in result.outcomes:
        if outcome.exception is not None:
            raise outcome.exception
        if outcome.status in ("failed", "timed_out", "poisoned"):
            raise SweepError(
                f"cell {outcome.design}/{outcome.workload} "
                f"{outcome.status}: {outcome.error}"
            )
    return [
        SweepRecord(
            design=outcome.design,
            workload=outcome.workload,
            evaluation=outcome.evaluation,
        )
        for outcome in result.outcomes
    ]


def summarize(records: Sequence[SweepRecord]) -> list[SweepSummary]:
    """Suite-average time/energy/EDP per design, input order preserved."""
    by_design: dict[str, list[Evaluation]] = {}
    for record in records:
        by_design.setdefault(record.design, []).append(record.evaluation)
    summaries = []
    for design, evaluations in by_design.items():
        n = len(evaluations)
        summaries.append(
            SweepSummary(
                design=design,
                time_norm=sum(e.time_norm for e in evaluations) / n,
                energy_norm=sum(e.energy_norm for e in evaluations) / n,
                edp_norm=sum(e.edp_norm for e in evaluations) / n,
            )
        )
    return summaries


def pareto_frontier(
    summaries: Sequence[SweepSummary],
) -> list[SweepSummary]:
    """Designs not dominated in (time_norm, energy_norm).

    A design dominates another if it is no worse on both axes and
    strictly better on at least one. Returned sorted by time.
    """
    frontier = []
    for candidate in summaries:
        dominated = any(
            other.time_norm <= candidate.time_norm
            and other.energy_norm <= candidate.energy_norm
            and (
                other.time_norm < candidate.time_norm
                or other.energy_norm < candidate.energy_norm
            )
            for other in summaries
        )
        if not dominated:
            frontier.append(candidate)
    return sorted(frontier, key=lambda s: (s.time_norm, s.energy_norm))


def best_by(
    summaries: Sequence[SweepSummary], metric: str = "edp_norm"
) -> SweepSummary:
    """The design with the lowest suite-average metric.

    Raises:
        ConfigError: for empty input or unknown metrics.
    """
    if not summaries:
        raise ConfigError("no summaries to rank")
    if metric not in ("time_norm", "energy_norm", "edp_norm"):
        raise ConfigError(f"unknown metric {metric!r}")
    return min(summaries, key=lambda s: getattr(s, metric))

"""Experiment harness: regenerates every table and figure of the paper.

- :mod:`repro.experiments.runner` — traces workloads, simulates the
  shared L1–L3 prefix once, and evaluates any design on the cached
  post-L3 request stream.
- :mod:`repro.experiments.figures` — Figures 1–8 series.
- :mod:`repro.experiments.heatmap` — Figures 9–10 heat maps.
- :mod:`repro.experiments.tables` — Tables 1–4 data.
- :mod:`repro.experiments.render` — ASCII rendering.
- :mod:`repro.experiments.cli` — ``python -m repro.experiments``.
"""

from repro.experiments.runner import Runner, WorkloadTrace
from repro.experiments.simplan import CapturingCache, SimPlan, config_key
from repro.experiments.sweep import (
    SweepRecord,
    SweepSummary,
    best_by,
    pareto_frontier,
    run_sweep,
    summarize,
)
from repro.experiments.compare import Comparison, explain_difference, render_comparison
from repro.experiments.validate import ValidationCheck, validate_simulator
from repro.experiments.characterize import WorkloadProfile, characterize, render_profiles
from repro.experiments.checkpoint import (
    CheckpointPlan,
    CheckpointTarget,
    compare_targets,
    plan_checkpointing,
)
from repro.experiments.report import ReproductionReport, generate_report, render_markdown
from repro.experiments.calibrate import CalibrationResult, calibrate_local_factor
from repro.experiments.figures import (
    FigureSeries,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
)
from repro.experiments.heatmap import HeatMap, figure9, figure10
from repro.experiments.tables import table1, table2, table3, table4
from repro.resilience import (
    CampaignResult,
    CellOutcome,
    Journal,
    RetryPolicy,
    SweepExecutor,
)

__all__ = [
    "Runner",
    "WorkloadTrace",
    "SimPlan",
    "CapturingCache",
    "config_key",
    "FigureSeries",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "HeatMap",
    "figure9",
    "figure10",
    "table1",
    "table2",
    "table3",
    "table4",
    "SweepRecord",
    "SweepSummary",
    "run_sweep",
    "summarize",
    "pareto_frontier",
    "best_by",
    "Comparison",
    "explain_difference",
    "render_comparison",
    "ValidationCheck",
    "validate_simulator",
    "WorkloadProfile",
    "characterize",
    "render_profiles",
    "CheckpointTarget",
    "CheckpointPlan",
    "plan_checkpointing",
    "compare_targets",
    "ReproductionReport",
    "generate_report",
    "render_markdown",
    "CalibrationResult",
    "calibrate_local_factor",
    "SweepExecutor",
    "CampaignResult",
    "CellOutcome",
    "Journal",
    "RetryPolicy",
]

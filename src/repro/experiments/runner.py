"""The experiment runner.

Key observation (also exploited by the paper's online framework): the
L1/L2/L3 SRAM levels are identical in every design, so their simulation
— by far the most expensive part, since they see every program
reference — can run once per workload. The runner:

1. traces each workload once per (scale, seed),
2. runs the trace through the shared SRAM pyramid once, capturing the
   post-L3 request stream (L3 fills + writebacks), and
3. evaluates each design configuration by running only its lower
   levels (L4 cache and/or memory devices) on that captured stream.

Results are exact: a design's full hierarchy run would produce the same
statistics, because the upper levels' behaviour does not depend on what
sits below them (caches are inclusive-of-nothing here — no back
invalidations, as in the paper's simulator).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.cache.hierarchy import Hierarchy, drain_chain, run_chain
from repro.cache.mainmem import MainMemory
from repro.cache.partition import PartitionedMemory
from repro.cache.stats import HierarchyStats, LevelStats
from repro.designs.base import MemoryDesign, ReferenceSystem
from repro.designs.configs import DEFAULT_SCALE, NDM_DRAM_CAPACITY
from repro.designs.ndm import NDMDesign
from repro.designs.reference import ReferenceDesign
from repro.model.evaluate import (
    Evaluation,
    RawEvaluation,
    evaluate_stats,
    finalize,
)
from repro.partition.oracle import PlacementResult, enumerate_placements
from repro.partition.profiler import profile_ranges
from repro.partition.ranges import AddressRange
from repro.tech.params import MemoryTechnology
from repro.telemetry.core import NullTelemetry, Telemetry, get_active
from repro.trace.events import AccessBatch
from repro.trace.stream import AddressStream
from repro.trace.tracer import Tracer
from repro.workloads.base import TraceResult, Workload

#: Package logger ("repro" has a NullHandler attached, so the library
#: is silent by default); enable progress lines on long runs with
#: ``logging.getLogger("repro").setLevel(logging.INFO)`` plus a handler.
logger = logging.getLogger("repro.experiments")


class CapturingMemory(MainMemory):
    """Terminal device that records every arriving request.

    Used to capture the post-L3 request stream during the shared upper
    -level simulation.
    """

    def __init__(self, name: str = "CAPTURE") -> None:
        super().__init__(name)
        self.captured = AddressStream()

    def process(self, batch: AccessBatch) -> AccessBatch:
        self.captured.append(batch.addresses, batch.sizes, batch.is_store)
        return super().process(batch)


@dataclass
class WorkloadTrace:
    """Everything the runner caches per (workload, scale, seed).

    Attributes:
        workload: the workload instance.
        result: the traced run (stream + tracer + algorithm checks).
        upper_stats: L1/L2/L3 statistics (shared by every design).
            Extrapolated to the whole stream when sampling.
        references: program reference count (Eq. 2 denominator).
            Extrapolated when sampling.
        post_l3: the request stream leaving L3 (fills + writebacks).
            Under sampling this holds only the simulated (warmup +
            measured) segments' capture.
        ref_raw: the reference design's raw evaluation on this trace.
        traced_footprint_bytes: footprint of the traced (scaled) run.
        sample_factor: extrapolation multiplier applied to measured
            counters (1.0 for exact runs).
        sample_fidelity: fraction of the trace actually measured (1.0
            for exact runs) — the recorded fidelity estimate of every
            sampled result derived from this trace.
        post_l3_segments: per simulated source segment, the number of
            captured post-L3 requests it produced and whether it was
            measured; lower-level replays use this to re-align their
            own measurement windows. ``None`` for exact runs.
    """

    workload: Workload
    result: TraceResult
    upper_stats: list[LevelStats]
    references: int
    post_l3: AddressStream
    ref_raw: RawEvaluation
    traced_footprint_bytes: int
    sample_factor: float = 1.0
    sample_fidelity: float = 1.0
    post_l3_segments: list[tuple[int, bool]] | None = None


#: Default ratio of local (stack/temporary) references to traced data
#: references. PEBIL instruments *every* memory-referencing instruction,
#: so the paper's streams include the stack traffic — loop counters,
#: spilled registers, compiler temporaries — that essentially always
#: hits L1 and typically outnumbers data-structure references several
#: times over. Our array-level instrumentation records only the data
#: structures, so the runner re-injects this traffic analytically: per
#: traced reference, ``local_factor`` additional L1 load hits are added
#: to the statistics (they never leave L1, so no simulation is needed).
#: The value is calibrated against the one quantitative sensitivity the
#: paper publishes for its execution profiles (Figure 9: a 5x main
#: memory read-latency increase costs ~5% runtime on the NMM/N6
#: profile) and puts overall L1 hit rates in the 93–97% range measured
#: on the real benchmarks.
DEFAULT_LOCAL_FACTOR: float = 8.0

#: Bits per local reference (an 8-byte access) for L1 dynamic energy.
_LOCAL_BITS: int = 64


class Runner:
    """Evaluates designs across workloads with shared-prefix caching.

    Args:
        scale: capacity/footprint scale (DESIGN.md §4).
        seed: workload input RNG seed.
        reference: the SRAM pyramid (defaults to Sandy Bridge).
        local_factor: L1-hitting local references injected per traced
            data reference (see :data:`DEFAULT_LOCAL_FACTOR`).
        engine: cache simulation engine (``"auto"``, ``"scalar"``,
            ``"setpar"`` or ``"analytic"``) applied to every cache the
            runner builds — the shared upper pyramid and each design's
            lower levels. ``auto``/``scalar``/``setpar`` are
            bit-identical and only change speed. ``analytic`` replaces
            each design's *lower-level* simulation with the reuse-
            profile model of :mod:`repro.profile` — the shared upper
            pyramid still simulates exactly (with ``auto``), profiles
            are computed once per trace (and cached on disk next to
            the trace cache), and every design evaluates in O(1)
            additional passes. Analytic per-level counts are
            approximate for set-associative levels (exact for
            fully-associative LRU and for designs with no lower
            caches); see ``docs/performance.md`` for the accuracy
            envelope.
        drain: when True, every simulation — the shared upper-level
            prefix *and* each design's lower levels — flushes dirty
            blocks at end of stream, so writebacks propagate all the
            way to main memory (``Hierarchy.run(drain=True)``
            semantics). The default False is the paper's steady-state
            accounting: a long-running application's residual dirty
            lines are a vanishing fraction of its write traffic, so
            end-of-trace flushes are intentionally excluded from the
            energy/latency model. Applied uniformly to every design,
            either choice yields exact full-hierarchy statistics.
        telemetry: explicit telemetry instance; None (the default)
            resolves the process-wide active instance per call (see
            :mod:`repro.telemetry.core`), which is the disabled
            :data:`~repro.telemetry.core.NULL_TELEMETRY` unless a
            caller activated one.
        sample: periodic sampled simulation —
            a :class:`~repro.experiments.sampling.SampleSpec` or its
            CLI string form ``"warmup:window:stride"`` (event counts).
            Only warmup + measured-window events are simulated per
            stride; measured counters are extrapolated to the whole
            stream and the measured fraction is recorded as the
            result's fidelity estimate
            (:attr:`WorkloadTrace.sample_fidelity`). Approximate by
            construction, so it is journalled under a distinct
            ``engine_class`` — sampled and exact cells never satisfy
            each other on resume. Incompatible with ``drain`` (flush
            traffic belongs to exact accounting) and with the
            ``analytic`` engine (a different approximation; compose
            intentionally, not accidentally).
        trace_arena: published trace handles keyed by workload name
            (see :class:`repro.trace.arena.TraceArena`). A workload
            found here is attached zero-copy instead of re-traced or
            loaded from the cache — how parallel sweep workers share
            one physical trace copy.
    """

    def __init__(
        self,
        scale: float = DEFAULT_SCALE,
        seed: int = 0,
        reference: ReferenceSystem | None = None,
        local_factor: float = DEFAULT_LOCAL_FACTOR,
        trace_cache_dir: str | None = None,
        drain: bool = False,
        telemetry: Telemetry | NullTelemetry | None = None,
        engine: str = "auto",
        sample: "SampleSpec | str | None" = None,
        trace_arena: "dict | None" = None,
    ) -> None:
        if local_factor < 0:
            raise ValueError("local_factor must be non-negative")
        if engine not in ("auto", "scalar", "setpar", "analytic"):
            raise ValueError(
                f"unknown engine {engine!r}; expected 'auto', 'scalar', "
                f"'setpar' or 'analytic'"
            )
        from repro.experiments.sampling import SampleSpec

        if isinstance(sample, str):
            sample = SampleSpec.parse(sample)
        if sample is not None:
            from repro.errors import ConfigError

            if engine == "analytic":
                raise ConfigError(
                    "sampled simulation and the analytic engine are both "
                    "approximations; pick one (--sample xor --engine "
                    "analytic)"
                )
            if drain:
                raise ConfigError(
                    "sampled simulation extrapolates steady-state windows; "
                    "end-of-stream drain accounting requires an exact run"
                )
        self.sample = sample
        self.trace_arena = trace_arena
        self.scale = scale
        self.seed = seed
        self.reference = reference or ReferenceSystem.sandy_bridge()
        self.local_factor = local_factor
        self.drain = drain
        self.engine = engine
        self.telemetry = telemetry
        #: Optional directory for persistent trace caching across
        #: processes: traced streams and region maps are saved after the
        #: first run and reloaded (bit-exact) instead of re-executing
        #: the workload. Keyed by (workload, scale, seed); the
        #: algorithm-check dict is not persisted (reloaded runs report
        #: ``{"cached": True}``).
        self.trace_cache_dir = trace_cache_dir
        self._traces: dict[str, WorkloadTrace] = {}
        self._design_stats: dict[tuple[str, str], HierarchyStats] = {}
        self._analytic_engines: dict[str, "AnalyticEngine"] = {}
        self._profiles: dict[tuple[str, int, int], "GranularityProfile"] = {}

    @property
    def _sim_engine(self) -> str:
        """The exact engine used for simulated caches.

        ``analytic`` only affects lower-level *evaluation*; every cache
        that is actually simulated (the shared upper pyramid, REF/NDM
        replays, screen-confirm re-simulations) uses ``auto``.
        """
        return "auto" if self.engine == "analytic" else self.engine

    def _telemetry(self) -> Telemetry | NullTelemetry:
        """The telemetry to instrument with (explicit, else active)."""
        return self.telemetry if self.telemetry is not None else get_active()

    def _cache_name(self, workload: Workload) -> str:
        return f"{workload.name}-s{self.scale:g}-r{self.seed}".replace("/", "_")

    def _load_cached_trace(self, workload: Workload) -> TraceResult | None:
        if self.trace_arena:
            handle = self.trace_arena.get(workload.name)
            if handle is not None:
                stream, regions = handle.attach()
                tracer = Tracer()
                tracer.regions.extend(regions)
                tracer.stream = stream
                return TraceResult(
                    stream=stream, tracer=tracer, checks={"cached": True}
                )
        if not self.trace_cache_dir:
            return None
        from pathlib import Path

        from repro.errors import TraceIntegrityError
        from repro.trace.io import discard_trace, load_trace

        name = self._cache_name(workload)
        directory = Path(self.trace_cache_dir)
        if not (directory / f"{name}.stream.rts").exists() and not (
            directory / f"{name}.stream.npz"
        ).exists():
            return None
        try:
            stream, regions = load_trace(directory, name, migrate=True)
            # A v2 store verifies chunks lazily as they are read; force
            # the pass here so a corrupt entry self-heals (below)
            # instead of failing mid-simulation. This is the *only*
            # full read — the data stays mmap'd, not copied.
            stream.verify()
        except TraceIntegrityError as exc:
            # A corrupt cache entry is recoverable: drop the pair and
            # fall through to re-tracing, which re-saves clean artifacts.
            removed = discard_trace(directory, name)
            logger.warning(
                "discarded corrupt cached trace for %s (%s; removed %d "
                "files), re-tracing", workload.name, exc, len(removed),
            )
            return None
        tracer = Tracer()
        tracer.regions.extend(regions)
        tracer.stream = stream
        return TraceResult(stream=stream, tracer=tracer, checks={"cached": True})

    def _store_cached_trace(self, workload: Workload, result: TraceResult) -> None:
        if not self.trace_cache_dir:
            return
        from repro.trace.io import save_trace

        save_trace(
            result.stream,
            result.tracer,
            self.trace_cache_dir,
            self._cache_name(workload),
        )

    def _inject_locals(
        self, upper_stats: list[LevelStats], references: int
    ) -> tuple[list[LevelStats], int]:
        """Add the analytic local-reference traffic to L1 and the
        reference count (applied identically to every design, so it
        dilutes — but never distorts — the normalized comparisons)."""
        extra = int(self.local_factor * references)
        if extra == 0:
            return upper_stats, references
        l1 = upper_stats[0]
        adjusted = LevelStats(
            name=l1.name,
            loads=l1.loads + extra,
            stores=l1.stores,
            load_bits=l1.load_bits + extra * _LOCAL_BITS,
            store_bits=l1.store_bits,
            load_hits=l1.load_hits + extra,
            load_misses=l1.load_misses,
            store_hits=l1.store_hits,
            store_misses=l1.store_misses,
            writebacks=l1.writebacks,
            fills=l1.fills,
        )
        return [adjusted] + upper_stats[1:], references + extra

    # ------------------------------------------------------------------
    # Tracing + shared upper-level simulation
    # ------------------------------------------------------------------

    def trace_only(self, workload: Workload) -> tuple[TraceResult, bool]:
        """Obtain a workload's trace without simulating anything.

        Returns ``(result, cached)`` where ``cached`` says whether the
        trace came from the arena or the on-disk cache instead of a
        fresh trace (which is stored to the cache on the way out).
        Used by the sweep executor to publish each workload's trace to
        the shared arena before forking workers; :meth:`prepare` runs
        the same path before the upper-level simulation.
        """
        telemetry = self._telemetry()
        trace_span = telemetry.span("runner.trace", workload=workload.name)
        with trace_span:
            result = self._load_cached_trace(workload)
            cached = result is not None
            if not cached:
                result = workload.trace(scale=self.scale, seed=self.seed)
                self._store_cached_trace(workload, result)
        if cached:
            logger.info("loaded cached trace for %s", workload.name)
        else:
            logger.info(
                "traced %s: %s events in %.1fs",
                workload.name, f"{len(result.stream):,}",
                trace_span.duration_s,
            )
        return result, cached

    def prepare(self, workload: Workload) -> WorkloadTrace:
        """Trace a workload and simulate the shared SRAM prefix (cached)."""
        key = workload.name
        if key in self._traces:
            return self._traces[key]
        telemetry = self._telemetry()
        prepare_span = telemetry.span("runner.prepare", workload=key)
        with prepare_span:
            result, cached = self.trace_only(workload)
            upper = self.reference.build_caches(self.scale, engine=self._sim_engine)
            capture = CapturingMemory()
            hierarchy = Hierarchy(upper, capture)
            factor, fidelity, segments = 1.0, 1.0, None
            if self.sample is None:
                collector = None
                if telemetry.enabled:
                    collector = telemetry.window_collector(
                        f"upper-{key}", lambda: hierarchy.stats().levels
                    )
                    hierarchy.observer = collector
                with telemetry.span("runner.upper_sim", workload=key):
                    # drain=True flushes L1-L3 at end of stream; the flush
                    # traffic lands in the captured post-L3 stream *in
                    # hierarchy drain order*, so suffix replays stay
                    # bit-exact against a full Hierarchy.run(drain=True).
                    hierarchy.run(result.stream, drain=self.drain)
                if collector is not None:
                    telemetry.finish_collector(collector)
                upper_raw = [cache.stats for cache in upper]
                references_raw = hierarchy.references
            else:
                with telemetry.span(
                    "runner.upper_sim", workload=key, sampled=True
                ):
                    upper_raw, references_raw, factor, fidelity, segments = (
                        self._run_upper_sampled(
                            hierarchy, upper, capture, result.stream
                        )
                    )
            telemetry.counter("repro_references_simulated_total").inc(
                hierarchy.references
            )
            upper_stats, references = self._inject_locals(
                upper_raw, references_raw
            )

            # The reference design's DRAM sees exactly the post-L3 stream.
            ref_design = ReferenceDesign(
                scale=self.scale, reference=self.reference, engine=self._sim_engine
            )
            dram = ref_design.memory()
            if segments is None:
                for chunk in capture.captured.chunks():
                    dram.process(chunk)
                dram_stats = [dram.stats]
            else:
                from repro.experiments.sampling import (
                    add_levels,
                    delta_levels,
                    iter_recorded_segments,
                    scale_levels,
                    snapshot_levels,
                )

                acc = None
                for batch, measured in iter_recorded_segments(
                    capture.captured, segments
                ):
                    if measured:
                        before = snapshot_levels([dram.stats])
                    dram.process(batch)
                    if measured:
                        acc = add_levels(
                            acc, delta_levels([dram.stats], before)
                        )
                dram_stats = scale_levels(
                    acc if acc is not None else snapshot_levels([dram.stats]),
                    factor,
                )
            ref_stats = HierarchyStats(
                levels=upper_stats + dram_stats, references=references
            )
            ref_raw = evaluate_stats(
                ref_design.name,
                ref_stats,
                ref_design.bindings(workload.info.footprint_bytes),
            )
            trace = WorkloadTrace(
                workload=workload,
                result=result,
                upper_stats=upper_stats,
                references=references,
                post_l3=capture.captured,
                ref_raw=ref_raw,
                traced_footprint_bytes=result.stream.stats().footprint_bytes,
                sample_factor=factor,
                sample_fidelity=fidelity,
                post_l3_segments=segments,
            )
            self._traces[key] = trace
            self._design_stats[("REF", key)] = ref_stats
            telemetry.gauge(
                "repro_captured_stream_requests", stage="post_l3", workload=key
            ).set(len(capture.captured))
            telemetry.gauge(
                "repro_captured_stream_nbytes", stage="post_l3", workload=key
            ).set(capture.captured.nbytes)
        logger.info(
            "prepared %s: %s post-L3 requests, AMAT_ref %.2f ns (%.1fs)",
            workload.name, f"{len(capture.captured):,}",
            ref_raw.amat_ns, prepare_span.duration_s,
        )
        telemetry.event(
            "workload_prepared",
            workload=key,
            events=len(result.stream),
            post_l3_requests=len(capture.captured),
            post_l3_nbytes=capture.captured.nbytes,
            references=references,
            trace_cached=cached,
            sample_fidelity=round(trace.sample_fidelity, 6),
            duration_s=round(prepare_span.duration_s, 6),
        )
        return trace

    def _run_upper_sampled(
        self,
        hierarchy: Hierarchy,
        upper: list,
        capture: CapturingMemory,
        stream: AddressStream,
    ) -> tuple[list[LevelStats], int, float, float, list[tuple[int, bool]]]:
        """Sampled upper-level simulation (see ``sample`` on the class).

        Simulates only warmup + measured-window segments, snapshots the
        upper levels' counters around each measured window, and scales
        the measured deltas to the whole stream. Records, per simulated
        segment, how many post-L3 requests it captured, so lower-level
        replays can re-align the same measurement windows on the
        captured stream.

        Returns ``(upper_stats, references, factor, fidelity,
        segments)`` where stats/references are extrapolated raw values
        (local-reference injection happens in the caller).
        """
        from repro.experiments.sampling import (
            add_levels,
            delta_levels,
            iter_sample_segments,
            scale_levels,
            snapshot_levels,
        )

        acc = None
        segments: list[tuple[int, bool]] = []
        measured_events = 0
        measured_refs = 0
        for batch, measured in iter_sample_segments(stream, self.sample):
            captured_before = len(capture.captured)
            if measured:
                refs_before = hierarchy.references
                before = snapshot_levels(cache.stats for cache in upper)
            hierarchy.process_batch(batch)
            if measured:
                acc = add_levels(
                    acc,
                    delta_levels(
                        (cache.stats for cache in upper), before
                    ),
                )
                measured_refs += hierarchy.references - refs_before
                measured_events += len(batch)
            segments.append(
                (len(capture.captured) - captured_before, measured)
            )
        total_events = len(stream)
        factor = (
            total_events / measured_events if measured_events else 1.0
        )
        fidelity = (
            measured_events / total_events if total_events else 1.0
        )
        if acc is None:
            acc = snapshot_levels(cache.stats for cache in upper)
        upper_stats = scale_levels(acc, factor)
        references = int(round(measured_refs * factor))
        logger.info(
            "sampled upper sim: %s of %s events measured "
            "(fidelity %.3f, factor %.1f)",
            f"{measured_events:,}", f"{total_events:,}", fidelity, factor,
        )
        return upper_stats, references, factor, fidelity, segments

    # ------------------------------------------------------------------
    # Analytic fast path
    # ------------------------------------------------------------------

    def _profile_path(self, workload: Workload, g: int, cg: int):
        if not self.trace_cache_dir:
            return None
        from pathlib import Path

        name = self._cache_name(workload)
        return Path(self.trace_cache_dir) / (
            f"{name}.profile-d{int(self.drain)}-g{g}-c{cg}.npz"
        )

    def _profile_for(self, workload: Workload, g: int, cg: int):
        """One reuse profile of the captured post-L3 stream (cached).

        Memoized in-process and persisted next to the trace cache when
        one is configured. The drain flag is part of the disk key
        because drained upper levels append their flush traffic to the
        captured stream — a different stream, a different profile.
        """
        mem_key = (workload.name, g, cg)
        if mem_key in self._profiles:
            return self._profiles[mem_key]
        from repro.errors import TraceIntegrityError
        from repro.profile import compute_profile, load_profile, save_profile

        telemetry = self._telemetry()
        path = self._profile_path(workload, g, cg)
        profile = None
        if path is not None and path.exists():
            try:
                profile = load_profile(path)
            except TraceIntegrityError as exc:
                from repro.trace.io import checksum_path

                path.unlink(missing_ok=True)
                checksum_path(path).unlink(missing_ok=True)
                logger.warning(
                    "discarded corrupt cached profile %s (%s), re-profiling",
                    path.name, exc,
                )
        cached = profile is not None
        if profile is None:
            trace = self.prepare(workload)
            with telemetry.span(
                "runner.profile", workload=workload.name,
                granularity=g, chain_granularity=cg,
            ):
                profile = compute_profile(trace.post_l3, g, cg)
            if path is not None:
                save_profile(profile, path)
        self._profiles[mem_key] = profile
        telemetry.event(
            "reuse_profile",
            workload=workload.name,
            granularity=g,
            chain_granularity=cg,
            references=profile.references,
            footprint_blocks=profile.footprint,
            stores=profile.n_stores,
            cached=cached,
        )
        return profile

    def _analytic_for(self, workload: Workload):
        """The analytic engine bound to one workload's captured stream."""
        key = workload.name
        if key in self._analytic_engines:
            return self._analytic_engines[key]
        from repro.profile import AnalyticEngine, StreamTotals

        trace = self.prepare(workload)
        totals = StreamTotals.from_chunks(trace.post_l3.chunks())
        engine = AnalyticEngine(
            profiles=lambda g, cg: self._profile_for(workload, g, cg),
            totals=totals,
            chunks=trace.post_l3.chunks,
        )
        self._analytic_engines[key] = engine
        return engine

    def _analytic_stats_for(
        self, design: MemoryDesign, workload: Workload
    ) -> HierarchyStats:
        key = (design.sim_key(), workload.name)
        trace = self.prepare(workload)
        if key in self._design_stats:
            return self._design_stats[key]
        engine = self._analytic_for(workload)
        telemetry = self._telemetry()
        with telemetry.span(
            "runner.analytic_eval", design=design.sim_key(),
            workload=workload.name,
        ):
            lower_stats = engine.lower_stats(design, drain=self.drain)
        stats = HierarchyStats(
            levels=trace.upper_stats + lower_stats,
            references=trace.references,
        )
        self._design_stats[key] = stats
        logger.debug(
            "analytically evaluated %s on %s", design.sim_key(), workload.name
        )
        return stats

    # ------------------------------------------------------------------
    # Design evaluation
    # ------------------------------------------------------------------

    def stats_for(self, design: MemoryDesign, workload: Workload) -> HierarchyStats:
        """Full hierarchy statistics for a design on a workload (cached).

        Runs only the design's lower levels on the cached post-L3
        stream; the shared upper-level stats are prepended. The replay
        routes every batch through
        :func:`~repro.cache.hierarchy.run_chain`, so the same
        ``check_request_sizes`` guard as ``Hierarchy.process_batch``
        applies — a design whose lower chain shrinks block sizes
        downward raises :class:`~repro.errors.SimulationError` here
        instead of silently corrupting statistics. When the runner was
        built with ``drain=True`` the lower levels are flushed at end
        of stream (matching the drained upper-level capture); the
        default leaves residual dirty lines unflushed — the steady-
        state accounting choice documented on :class:`Runner`.
        """
        if self.engine == "analytic":
            return self._analytic_stats_for(design, workload)
        if self.sample is not None:
            return self._sampled_stats_for(design, workload)
        key = (design.sim_key(), workload.name)
        if key in self._design_stats:
            return self._design_stats[key]
        trace = self.prepare(workload)
        telemetry = self._telemetry()
        lower = design.lower_caches()
        memory = design.memory()

        def lower_levels():
            if isinstance(memory, PartitionedMemory):
                return [cache.stats for cache in lower] + memory.stats_list
            return [cache.stats for cache in lower] + [memory.stats]

        collector = None
        if telemetry.enabled:
            collector = telemetry.window_collector(
                f"design-{design.sim_key()}-{workload.name}", lower_levels
            )
        with telemetry.span(
            "runner.design_sim", design=design.sim_key(),
            workload=workload.name,
        ):
            for chunk in trace.post_l3.chunks():
                run_chain(chunk, lower, memory)
                if collector is not None:
                    collector.on_refs(len(chunk))
            if self.drain:
                drain_chain(lower, memory)
        if collector is not None:
            telemetry.finish_collector(collector)
        lower_stats = [cache.stats for cache in lower]
        if isinstance(memory, PartitionedMemory):
            memory_stats = memory.stats_list
        else:
            memory_stats = [memory.stats]
        stats = HierarchyStats(
            levels=trace.upper_stats + lower_stats + memory_stats,
            references=trace.references,
        )
        self._design_stats[key] = stats
        logger.debug("simulated %s on %s", design.sim_key(), workload.name)
        return stats

    def _sampled_stats_for(
        self, design: MemoryDesign, workload: Workload
    ) -> HierarchyStats:
        """Sampled lower-level replay with extrapolated statistics.

        Replays the captured (warmup + window) post-L3 segments through
        the design's lower levels — warmup segments warm cache state,
        measured segments' counter deltas are scaled by the trace's
        extrapolation factor — and prepends the (already extrapolated)
        shared upper stats.
        """
        key = (design.sim_key(), workload.name)
        if key in self._design_stats:
            return self._design_stats[key]
        from repro.experiments.sampling import (
            add_levels,
            delta_levels,
            iter_recorded_segments,
            scale_levels,
            snapshot_levels,
        )

        trace = self.prepare(workload)
        telemetry = self._telemetry()
        lower = design.lower_caches()
        memory = design.memory()

        def live_levels() -> list[LevelStats]:
            if isinstance(memory, PartitionedMemory):
                return [cache.stats for cache in lower] + memory.stats_list
            return [cache.stats for cache in lower] + [memory.stats]

        acc = None
        with telemetry.span(
            "runner.design_sim", design=design.sim_key(),
            workload=workload.name, sampled=True,
        ):
            for batch, measured in iter_recorded_segments(
                trace.post_l3, trace.post_l3_segments
            ):
                if measured:
                    before = snapshot_levels(live_levels())
                run_chain(batch, lower, memory)
                if measured:
                    acc = add_levels(
                        acc, delta_levels(live_levels(), before)
                    )
        lower_stats = scale_levels(
            acc if acc is not None else snapshot_levels(live_levels()),
            trace.sample_factor,
        )
        stats = HierarchyStats(
            levels=trace.upper_stats + lower_stats,
            references=trace.references,
        )
        self._design_stats[key] = stats
        logger.debug(
            "sampled-simulated %s on %s (fidelity %.3f)",
            design.sim_key(), workload.name, trace.sample_fidelity,
        )
        return stats

    def simulate_designs(
        self, designs: list[MemoryDesign], workload: Workload
    ) -> None:
        """Batch-simulate designs on one workload with prefix sharing.

        Builds a :class:`~repro.experiments.simplan.SimPlan` over the
        designs that still need simulating and executes it on the
        cached post-L3 stream: lower-level chains that start with
        config-identical levels (every 4LC/4LC-NVM point shares the
        same L4) simulate that prefix once. Results land in the same
        per-``sim_key`` statistics cache that :meth:`stats_for` reads,
        so subsequent per-design calls are hits — the statistics are
        bit-identical to what :meth:`stats_for` would have produced
        (see :mod:`repro.experiments.simplan` for the exactness
        argument).
        """
        if self.engine == "analytic":
            # No streams to share — each design is already O(1) passes.
            for design in designs:
                self._analytic_stats_for(design, workload)
            return
        if self.sample is not None:
            # Snapshot/delta windows are per-chain state; replay each
            # design's (short, sampled) stream independently.
            for design in designs:
                self._sampled_stats_for(design, workload)
            return
        from repro.experiments.simplan import SimPlan

        todo = []
        seen: set[str] = set()
        for design in designs:
            sim_key = design.sim_key()
            if sim_key in seen or (sim_key, workload.name) in self._design_stats:
                continue
            seen.add(sim_key)
            todo.append(design)
        if not todo:
            return
        trace = self.prepare(workload)
        telemetry = self._telemetry()
        plan = SimPlan(todo)
        with telemetry.span(
            "runner.plan_sim", workload=workload.name,
            designs=len(todo), shared_levels=plan.shared_levels,
        ):
            results = plan.execute(
                trace.post_l3, drain=self.drain,
                telemetry=telemetry, workload=workload.name,
            )
        for sim_key, lower_stats in results.items():
            self._design_stats[(sim_key, workload.name)] = HierarchyStats(
                levels=trace.upper_stats + lower_stats,
                references=trace.references,
            )
        logger.info(
            "plan-simulated %d design(s) on %s (%d shared level(s))",
            len(todo), workload.name, plan.shared_levels,
        )

    def raw_for(self, design: MemoryDesign, workload: Workload) -> RawEvaluation:
        """Stage-1 model outputs for a design on a workload."""
        stats = self.stats_for(design, workload)
        return evaluate_stats(
            design.name, stats, design.bindings(workload.info.footprint_bytes)
        )

    def evaluate(self, design: MemoryDesign, workload: Workload) -> Evaluation:
        """Final normalized evaluation of a design on a workload."""
        trace = self.prepare(workload)
        raw = self.raw_for(design, workload)
        return finalize(raw, trace.ref_raw, workload.info.meta())

    # ------------------------------------------------------------------
    # NDM oracle
    # ------------------------------------------------------------------

    def ndm_oracle(
        self,
        workload: Workload,
        nvm_tech: MemoryTechnology,
        *,
        coverage: float = 0.95,
        max_ranges_per_placement: int = 1,
        objective: str = "edp",
    ) -> list[PlacementResult]:
        """Run the paper's NDM placement oracle for one workload.

        Profiles the traced run's hot address ranges, then enumerates
        single-range-to-NVM placements (plus the all-candidates
        placement), evaluating each with the full model.
        """
        trace = self.prepare(workload)
        candidates = profile_ranges(
            trace.result.stream, trace.result.tracer, coverage=coverage
        )

        def evaluate_placement(ranges: list[AddressRange]) -> Evaluation:
            design = NDMDesign(
                nvm_tech,
                ranges,
                scale=self.scale,
                reference=self.reference,
                name=f"NDM-{nvm_tech.name}-{workload.name}-"
                + "-".join(r.label or hex(r.start) for r in ranges),
            )
            return self.evaluate(design, workload)

        return enumerate_placements(
            candidates,
            evaluate_placement,
            footprint_bytes=trace.traced_footprint_bytes,
            dram_capacity_bytes=max(1, int(NDM_DRAM_CAPACITY * self.scale)),
            max_ranges_per_placement=max_ranges_per_placement,
            objective=objective,
        )

"""Simulator validation against closed-form known answers.

The paper's future work includes "improving the modeling validating the
results with an emulation platform". Without hardware, the next best
thing is analytical validation: for synthetic access patterns the exact
hit rates of an LRU cache are known in closed form, so the simulator
can be checked against ground truth rather than against itself.

Validated patterns:

- **sequential** (unit stride, cold cache): miss rate = access_size /
  line_size exactly (one miss per line, compulsory only);
- **strided** at >= line size: every access misses (compulsory, and the
  footprint exceeds capacity so no reuse);
- **uniform random over footprint F** with cache capacity C lines: in
  steady state each access hits iff its line is resident; for F >> C
  the hit rate approaches C / F_lines;
- **cyclic sweep over footprint > capacity** under LRU: 0% reuse hits
  (LRU's pathological case — every line is evicted just before reuse).

``validate_simulator()`` runs all of them and returns per-check
absolute errors; the test suite asserts tight tolerances, and users can
re-run it after modifying the engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.setassoc import SetAssociativeCache
from repro.trace.stream import AddressStream
from repro.trace.synthetic import random_stream, sequential_stream, strided_stream
from repro.units import KiB


@dataclass(frozen=True)
class ValidationCheck:
    """One analytical validation point.

    Attributes:
        name: pattern description.
        expected: closed-form hit rate.
        measured: simulated hit rate.
        tolerance: allowed |expected - measured|.
    """

    name: str
    expected: float
    measured: float
    tolerance: float

    @property
    def error(self) -> float:
        """Absolute error."""
        return abs(self.expected - self.measured)

    @property
    def passed(self) -> bool:
        """Whether the check is inside tolerance."""
        return self.error <= self.tolerance


def _run(cache: SetAssociativeCache, stream: AddressStream) -> float:
    for chunk in stream.chunks():
        cache.process(chunk)
    return cache.stats.hit_rate


def check_sequential(
    n_events: int = 100_000, line: int = 64, access: int = 8
) -> ValidationCheck:
    """Cold sequential sweep: hit rate = 1 - access/line exactly."""
    cache = SetAssociativeCache(CacheConfig("V", 32 * KiB, 8, line))
    measured = _run(cache, sequential_stream(n_events, access_size=access))
    return ValidationCheck(
        name=f"sequential {access}B/{line}B line",
        expected=1.0 - access / line,
        measured=measured,
        tolerance=1e-3,  # only the trailing partial line deviates
    )


def check_strided(n_events: int = 50_000, line: int = 64) -> ValidationCheck:
    """Stride == line size over a huge footprint: 0% hits."""
    cache = SetAssociativeCache(CacheConfig("V", 32 * KiB, 8, line))
    measured = _run(cache, strided_stream(n_events, stride=line))
    return ValidationCheck(
        name=f"stride {line}B cold",
        expected=0.0,
        measured=measured,
        tolerance=0.0,
    )


def check_cyclic_sweep(laps: int = 4) -> ValidationCheck:
    """LRU pathology: cyclic reuse over footprint slightly > capacity
    gives zero reuse hits (only the within-line spatial hits remain)."""
    capacity = 8 * KiB
    footprint = 2 * capacity
    line, access = 64, 8
    lap = np.arange(0, footprint, access, dtype=np.uint64)
    addrs = np.concatenate([lap] * laps)
    stream = AddressStream.from_arrays(addrs, access, 0)
    # Fully-associative-equivalent check needs conflict-free mapping:
    # cyclic addresses map uniformly, so any set sees the same pattern.
    cache = SetAssociativeCache(CacheConfig("V", capacity, 8, line))
    measured = _run(cache, stream)
    return ValidationCheck(
        name="cyclic sweep 2x capacity (LRU pathology)",
        expected=1.0 - access / line,  # spatial hits only, zero reuse
        measured=measured,
        tolerance=1e-3,
    )


def check_random_steady_state(
    n_events: int = 400_000, capacity: int = 8 * KiB
) -> ValidationCheck:
    """Uniform random accesses over footprint F >> C: steady-state hit
    rate -> resident lines / footprint lines."""
    line, access = 64, 8
    footprint = 16 * capacity
    cache = SetAssociativeCache(CacheConfig("V", capacity, 8, line))
    measured = _run(
        cache,
        random_stream(n_events, footprint_bytes=footprint, access_size=access,
                      seed=123),
    )
    resident_lines = capacity // line
    footprint_lines = footprint // line
    # Each access: P(hit same line resident). Accesses per line = 8
    # slots; the line is resident iff recently touched: ~C/F plus the
    # same-line-slot correlation (8 slots/line raises it slightly).
    expected = resident_lines / footprint_lines
    return ValidationCheck(
        name="uniform random steady state",
        expected=expected,
        measured=measured,
        tolerance=0.03,  # finite-sample + warmup + slot correlation
    )


def validate_simulator() -> list[ValidationCheck]:
    """Run every analytical validation point."""
    return [
        check_sequential(),
        check_strided(),
        check_cyclic_sweep(),
        check_random_steady_state(),
    ]

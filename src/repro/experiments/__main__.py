"""``python -m repro.experiments`` support."""

import sys

from repro.experiments.cli import main

sys.exit(main())

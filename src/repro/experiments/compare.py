"""Design-vs-design attribution: where do the differences come from?

The figures say *that* a design wins; this module says *why*: it
decomposes the runtime (Eq. 2 numerator) and dynamic energy (Eq. 3)
difference between two designs into per-level contributions, and
separates the static-energy delta. The quickstart-level question
"NMM is 14% slower — is that the DRAM-cache hit latency or the NVM
misses?" gets a quantitative answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.designs.base import MemoryDesign
from repro.experiments.runner import Runner
from repro.model.amat import level_time_breakdown_ns
from repro.model.energy import dynamic_energy_breakdown_pj
from repro.workloads.base import Workload


@dataclass(frozen=True)
class LevelDelta:
    """One level's contribution to the difference (B minus A).

    Attributes:
        level: level name (present in either design; absent levels
            contribute zero on their side).
        time_ns: traced access-time contribution delta.
        energy_pj: traced dynamic-energy contribution delta.
    """

    level: str
    time_ns: float
    energy_pj: float


@dataclass
class Comparison:
    """Attributed difference between two designs on one workload.

    All "delta" quantities are design B minus design A.

    Attributes:
        design_a / design_b / workload: labels.
        levels: per-level deltas, largest |time| first.
        time_delta_ns: total traced access-time delta (the AMAT
            numerator — divide by references for AMAT).
        dynamic_delta_pj: total traced dynamic-energy delta.
        static_delta_w: static-power delta.
        time_norm_a / time_norm_b: the two normalized runtimes.
        energy_norm_a / energy_norm_b: the two normalized energies.
    """

    design_a: str
    design_b: str
    workload: str
    levels: list[LevelDelta] = field(default_factory=list)
    time_delta_ns: float = 0.0
    dynamic_delta_pj: float = 0.0
    static_delta_w: float = 0.0
    time_norm_a: float = 0.0
    time_norm_b: float = 0.0
    energy_norm_a: float = 0.0
    energy_norm_b: float = 0.0

    def dominant_time_level(self) -> str:
        """The level contributing most to the runtime difference."""
        if not self.levels:
            return ""
        return max(self.levels, key=lambda d: abs(d.time_ns)).level


def explain_difference(
    runner: Runner,
    design_a: MemoryDesign,
    design_b: MemoryDesign,
    workload: Workload,
) -> Comparison:
    """Attribute the (B - A) difference to hierarchy levels."""
    stats_a = runner.stats_for(design_a, workload)
    stats_b = runner.stats_for(design_b, workload)
    bindings_a = design_a.bindings(workload.info.footprint_bytes)
    bindings_b = design_b.bindings(workload.info.footprint_bytes)
    time_a = level_time_breakdown_ns(stats_a, bindings_a)
    time_b = level_time_breakdown_ns(stats_b, bindings_b)
    energy_a = dynamic_energy_breakdown_pj(stats_a, bindings_a)
    energy_b = dynamic_energy_breakdown_pj(stats_b, bindings_b)

    ev_a = runner.evaluate(design_a, workload)
    ev_b = runner.evaluate(design_b, workload)

    comparison = Comparison(
        design_a=design_a.name,
        design_b=design_b.name,
        workload=workload.name,
        time_norm_a=ev_a.time_norm,
        time_norm_b=ev_b.time_norm,
        energy_norm_a=ev_a.energy_norm,
        energy_norm_b=ev_b.energy_norm,
        static_delta_w=(
            sum(binding.static_w for binding in bindings_b.values())
            - sum(binding.static_w for binding in bindings_a.values())
        ),
    )
    for level in sorted(set(time_a) | set(time_b)):
        delta = LevelDelta(
            level=level,
            time_ns=time_b.get(level, 0.0) - time_a.get(level, 0.0),
            energy_pj=energy_b.get(level, 0.0) - energy_a.get(level, 0.0),
        )
        comparison.levels.append(delta)
        comparison.time_delta_ns += delta.time_ns
        comparison.dynamic_delta_pj += delta.energy_pj
    comparison.levels.sort(key=lambda d: abs(d.time_ns), reverse=True)
    return comparison


def render_comparison(comparison: Comparison) -> str:
    """Human-readable attribution table."""
    lines = [
        f"{comparison.design_b} vs {comparison.design_a} on "
        f"{comparison.workload}:",
        f"  time   x{comparison.time_norm_a:.3f} -> "
        f"x{comparison.time_norm_b:.3f}",
        f"  energy x{comparison.energy_norm_a:.3f} -> "
        f"x{comparison.energy_norm_b:.3f} "
        f"(static power {comparison.static_delta_w:+.2f} W)",
        "  per-level deltas (traced):",
    ]
    for delta in comparison.levels:
        lines.append(
            f"    {delta.level:8s} time {delta.time_ns:+14.0f} ns   "
            f"dyn {delta.energy_pj:+16.0f} pJ"
        )
    return "\n".join(lines)

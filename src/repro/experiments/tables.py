"""Tables 1–4 as structured data.

Each ``tableN`` returns ``(headers, rows)`` ready for
:func:`repro.experiments.render.ascii_table`, sourced from the same
registries the simulator itself uses — so the printed tables are, by
construction, the parameters the experiments ran with.
"""

from __future__ import annotations

from repro.designs.configs import EH_CONFIGS, N_CONFIGS
from repro.tech.params import DRAM, EDRAM, FERAM, HMC, PCM, STTRAM
from repro.units import format_bytes
from repro.workloads.registry import SUITE, get_workload

#: Table 1 row order as published (DRAM is printed as "RAM").
_TABLE1_ORDER = [DRAM, PCM, STTRAM, FERAM, EDRAM, HMC]


def table1() -> tuple[list[str], list[list[str]]]:
    """Table 1: characteristics of different memory technologies."""
    headers = [
        "Memory Technology",
        "Read delay (ns)",
        "Write delay (ns)",
        "Read energy (pJ/bit)",
        "Write energy (pJ/bit)",
        "Static power (mW/MB)",
    ]
    rows = []
    for tech in _TABLE1_ORDER:
        name = "RAM" if tech is DRAM else tech.name
        rows.append(
            [
                name,
                f"{tech.read_delay_ns:g}",
                f"{tech.write_delay_ns:g}",
                f"{tech.read_energy_pj_per_bit:g}",
                f"{tech.write_energy_pj_per_bit:g}",
                f"{tech.static_mw_per_mb:g}",
            ]
        )
    return headers, rows


def table2() -> tuple[list[str], list[list[str]]]:
    """Table 2: eDRAM/HMC configurations (capacity per core)."""
    headers = ["Design name", "eDRAM capacity (MB)", "Page size (B)"]
    rows = [
        [cfg.name, str(cfg.capacity // (1024 * 1024)), str(cfg.page_size)]
        for cfg in EH_CONFIGS.values()
    ]
    return headers, rows


def table3() -> tuple[list[str], list[list[str]]]:
    """Table 3: NMM configurations (capacity per core)."""
    headers = ["Design Name", "DRAM capacity (MB)", "Page size"]
    rows = [
        [
            cfg.name,
            str(cfg.dram_capacity // (1024 * 1024)),
            format_bytes(cfg.page_size),
        ]
        for cfg in N_CONFIGS.values()
    ]
    return headers, rows


def table4() -> tuple[list[str], list[list[str]]]:
    """Table 4: characteristics of the benchmarks."""
    headers = ["Suite", "Benchmark", "Footprint/Core (GB)", "Time (s)", "Inputs"]
    rows = []
    for name in SUITE:
        info = get_workload(name).info
        rows.append(
            [
                info.suite,
                info.name,
                f"{info.footprint_gb:g}",
                f"{info.t_ref_s:g}",
                info.inputs,
            ]
        )
    return headers, rows

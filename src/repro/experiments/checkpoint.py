"""NVM-as-checkpoint-memory study.

The paper motivates NVM partly through related work on checkpointing
("the role of NVM as ... fast checkpoint memory", ref. [24]). This
module quantifies that role with the standard Young/Daly model:

- writing a checkpoint of the footprint F to a target with bandwidth B
  and write energy e costs ``delta = F/B`` seconds and ``F*8*e`` joules;
- with node MTBF M, the optimal checkpoint interval is
  ``tau_opt = sqrt(2 * delta * M)`` (Young's approximation);
- the expected runtime dilation from checkpointing plus failure rework
  is ``waste ≈ delta/tau + tau/(2M)``.

Comparing a node-local NVM target against a shared parallel filesystem
shows the orders-of-magnitude difference in achievable checkpoint
frequency — the quantitative version of the paper's motivation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelError
from repro.tech.params import MemoryTechnology
from repro.units import GiB


@dataclass(frozen=True)
class CheckpointTarget:
    """A device checkpoints can be written to.

    Attributes:
        name: label.
        bandwidth_gbs: sustained write bandwidth, GB/s.
        write_pj_per_bit: write energy density (0 for remote targets
            whose energy is not attributed to the node).
    """

    name: str
    bandwidth_gbs: float
    write_pj_per_bit: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise ModelError(f"{self.name}: bandwidth must be positive")
        if self.write_pj_per_bit < 0:
            raise ModelError(f"{self.name}: write energy must be non-negative")

    @classmethod
    def from_technology(
        cls, tech: MemoryTechnology, bandwidth_gbs: float
    ) -> "CheckpointTarget":
        """Target built from a Table 1 technology's write energy."""
        return cls(
            name=tech.name,
            bandwidth_gbs=bandwidth_gbs,
            write_pj_per_bit=tech.write_energy_pj_per_bit,
        )


#: A shared parallel filesystem as seen from one node of a big machine
#: (aggregate PFS bandwidth divided across nodes; 2014-era planning
#: number ~0.2 GB/s per node).
PFS_TARGET = CheckpointTarget(name="PFS", bandwidth_gbs=0.2)


@dataclass(frozen=True)
class CheckpointPlan:
    """Checkpointing economics for one (footprint, target, MTBF).

    Attributes:
        target: where checkpoints go.
        delta_s: seconds per checkpoint.
        energy_j: joules per checkpoint.
        tau_opt_s: optimal checkpoint interval (Young).
        waste_fraction: expected runtime dilation at tau_opt.
    """

    target: CheckpointTarget
    delta_s: float
    energy_j: float
    tau_opt_s: float
    waste_fraction: float


def checkpoint_cost(
    footprint_bytes: int, target: CheckpointTarget
) -> tuple[float, float]:
    """(seconds, joules) of writing one checkpoint."""
    if footprint_bytes <= 0:
        raise ModelError("footprint must be positive")
    seconds = footprint_bytes / (target.bandwidth_gbs * 1e9)
    joules = footprint_bytes * 8 * target.write_pj_per_bit * 1e-12
    return seconds, joules


def young_optimal_interval(delta_s: float, mtbf_s: float) -> float:
    """Young's optimal checkpoint interval sqrt(2 * delta * MTBF)."""
    if delta_s <= 0 or mtbf_s <= 0:
        raise ModelError("delta and MTBF must be positive")
    return math.sqrt(2.0 * delta_s * mtbf_s)


def expected_waste(delta_s: float, tau_s: float, mtbf_s: float) -> float:
    """First-order runtime dilation: checkpoint time + failure rework."""
    if tau_s <= 0 or mtbf_s <= 0:
        raise ModelError("tau and MTBF must be positive")
    return delta_s / tau_s + tau_s / (2.0 * mtbf_s)


def plan_checkpointing(
    footprint_bytes: int,
    target: CheckpointTarget,
    mtbf_s: float = 24 * 3600.0,
) -> CheckpointPlan:
    """The full Young/Daly plan for one footprint and target."""
    delta_s, energy_j = checkpoint_cost(footprint_bytes, target)
    tau = young_optimal_interval(delta_s, mtbf_s)
    return CheckpointPlan(
        target=target,
        delta_s=delta_s,
        energy_j=energy_j,
        tau_opt_s=tau,
        waste_fraction=expected_waste(delta_s, tau, mtbf_s),
    )


def compare_targets(
    footprint_bytes: int,
    targets: list[CheckpointTarget],
    mtbf_s: float = 24 * 3600.0,
) -> list[CheckpointPlan]:
    """Plans for several targets, lowest waste first."""
    plans = [plan_checkpointing(footprint_bytes, t, mtbf_s) for t in targets]
    plans.sort(key=lambda p: p.waste_fraction)
    return plans

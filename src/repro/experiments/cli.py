"""Command-line entry point: ``python -m repro.experiments``.

Subcommands:

- ``tables`` — print Tables 1–4.
- ``figure N`` — regenerate one figure (1–10).
- ``reproduce-all`` — every table and figure in sequence.
- ``report [--out FILE]`` — full Markdown reproduction report with the
  claim scorecard.
- ``oracle WORKLOAD [--tech PCM]`` — run the NDM placement oracle.

- ``sweep`` — fault-tolerant design-space sweep with an on-disk
  result journal (``--journal``), exact resume (``--resume``), bounded
  retries (``--max-retries``), per-cell deadlines (``--cell-timeout``),
  keep-going semantics (``--keep-going``), and process-parallel
  execution (``--workers N``; shared lower-level prefixes simulate
  once per workload unless ``--no-share-prefixes``). With
  ``--screen-analytic K`` the full grid is first triaged by the
  analytic reuse-profile engine and only each workload's top-K
  designs re-simulate exactly. Parallel runs use
  the supervised worker pool by default — dead workers respawn up to
  ``--max-worker-restarts``, cells that kill ``--poison-threshold``
  successive workers are quarantined as ``poisoned``, and SIGINT or
  SIGTERM drains gracefully to an exact-resume journal
  (``--no-supervise`` restores the legacy shard pool).

- ``telemetry report DIR`` — summarize a telemetry directory written
  by a previous ``--telemetry DIR`` run (span digests, window files,
  event counts); a multi-worker run root is aggregated first.
- ``telemetry merge DIR [--out DIR]`` — merge a run root plus its
  ``worker-N/`` directories into one ordered run log, one summed
  ``metrics.prom``, and a provenance-stamped windows CSV.
- ``telemetry trace DIR [--out FILE]`` — export a Chrome trace_event
  JSON timeline (Perfetto / chrome://tracing).
- ``telemetry diff BASELINE CANDIDATE`` — run-to-run regression diff
  with configurable thresholds (including the sampled-hotspot shift
  gate); exits 1 on regressions.
- ``telemetry flame DIR [--out FILE]`` — merge a profiled run's
  ``profile.jsonl`` files (root + workers) into one collapsed-stack
  ``flame.folded`` flamegraph file.
- ``telemetry serve DIR [--host H] [--port P]`` — HTTP/SSE service
  over a telemetry directory (finished or still running): /metrics,
  /events (resumable SSE tail), /runs, /runs/<id>/progress, /healthz,
  /readyz. ``sweep --serve [PORT]`` starts the same server in-process
  with a live registry and pool-heartbeat readiness.
- ``telemetry watch URL|DIR [--interval S] [--once]`` — live ANSI
  dashboard over a serve URL or a directory: progress bars, rolling
  hit-rate gauges, worker liveness, recent supervision events.

Common options: ``--scale`` (capacity/footprint scale), ``--seed``,
``--workloads`` (comma-separated subset of the suite), ``--drain``
(flush dirty blocks at end of stream instead of the default
steady-state accounting), ``--telemetry DIR`` (record spans, metrics,
and windowed time-series for the whole invocation), ``--profile [HZ]``
(with ``--telemetry``: continuous profiling — sampled wall-clock
stacks attributed to spans/cells; sweep workers inherit the
profiler), ``--profile-memory`` (additionally record tracemalloc
memory watermarks; expensive, opt-in).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.designs.configs import DEFAULT_SCALE
from repro.errors import ConfigError
from repro.experiments import figures as figures_mod
from repro.experiments import heatmap as heatmap_mod
from repro.experiments import tables as tables_mod
from repro.experiments.render import ascii_table, render_figure, render_heatmap
from repro.experiments.runner import Runner
from repro.telemetry.core import (
    RunContext,
    Telemetry,
    get_active,
    new_run_id,
    set_active,
)
from repro.telemetry.profiling import DEFAULT_HZ as PROFILE_DEFAULT_HZ
from repro.workloads.registry import SUITE, get_workload


def _parse_workloads(spec: str | None):
    if not spec:
        return None
    workloads = []
    for name in spec.split(","):
        name = name.strip()
        if not name:
            continue
        try:
            workloads.append(get_workload(name))
        except KeyError:
            raise SystemExit(
                f"error: unknown workload {name!r}; choose from {list(SUITE)}"
            ) from None
    if not workloads:
        raise SystemExit("error: --workloads selected nothing")
    return workloads


#: Default design grid for the ``sweep`` subcommand.
DEFAULT_SWEEP_DESIGNS = "REF,NMM:PCM:N6,NMM:STTRAM:N6,4LC:EDRAM:EH4"


def _parse_designs(spec: str, scale: float, reference, engine: str = "auto"):
    """Build designs from a comma-separated spec.

    Grammar per item: ``REF`` | ``NMM:<TECH>:<N#>`` |
    ``4LC:<TECH>:<EH#>`` | ``4LCNVM:<CACHE>:<NVM>:<EH#>``.
    """
    if engine == "analytic":
        # 'analytic' is a runner-level evaluation mode; the design
        # objects themselves only carry exact simulation engines.
        engine = "auto"
    from repro.designs.configs import EH_CONFIGS, N_CONFIGS
    from repro.designs.fourlc import FourLCDesign
    from repro.designs.fourlcnvm import FourLCNVMDesign
    from repro.designs.nmm import NMMDesign
    from repro.designs.reference import ReferenceDesign
    from repro.tech.params import get_technology

    def tech(name: str):
        try:
            return get_technology(name)
        except KeyError as exc:
            raise SystemExit(f"error: {exc.args[0]}") from None

    def config(table: dict, name: str, family: str):
        if name not in table:
            raise SystemExit(
                f"error: unknown {family} config {name!r}; "
                f"choose from {list(table)}"
            )
        return table[name]

    designs = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        parts = item.split(":")
        kind = parts[0].upper()
        try:
            if kind == "REF" and len(parts) == 1:
                designs.append(ReferenceDesign(
                    scale=scale, reference=reference, engine=engine,
                ))
            elif kind == "NMM" and len(parts) == 3:
                designs.append(NMMDesign(
                    tech(parts[1]), config(N_CONFIGS, parts[2].upper(), "N"),
                    scale=scale, reference=reference, engine=engine,
                ))
            elif kind == "4LC" and len(parts) == 3:
                designs.append(FourLCDesign(
                    tech(parts[1]), config(EH_CONFIGS, parts[2].upper(), "EH"),
                    scale=scale, reference=reference, engine=engine,
                ))
            elif kind == "4LCNVM" and len(parts) == 4:
                designs.append(FourLCNVMDesign(
                    tech(parts[1]), tech(parts[2]),
                    config(EH_CONFIGS, parts[3].upper(), "EH"),
                    scale=scale, reference=reference, engine=engine,
                ))
            else:
                raise SystemExit(
                    f"error: bad design spec {item!r}; expected REF, "
                    f"NMM:TECH:N#, 4LC:TECH:EH#, or 4LCNVM:CACHE:NVM:EH#"
                )
        except ConfigError as exc:
            raise SystemExit(f"error: design spec {item!r}: {exc}") from None
    if not designs:
        raise SystemExit("error: --designs selected nothing")
    return designs


def _screen_designs(args, runner: Runner, designs, workloads, top_k: int):
    """Phase 1 of ``sweep --screen-analytic K``: analytic triage.

    Runs the *full* campaign grid under the analytic engine (cheap:
    one profile pass per workload, O(1) per design), ranks each
    workload's designs by normalized EDP, and returns the union of the
    per-workload top-K — the only designs phase 2 re-simulates
    exactly. Screening results live in a separate ``.analytic``
    journal (analytic cells can never satisfy the exact campaign's
    resume — the engine class is part of every cell key).
    """
    from repro.resilience import Journal, RetryPolicy, SweepExecutor
    from repro.telemetry.progress import ProgressReporter

    screen_runner = Runner(
        scale=runner.scale, seed=runner.seed,
        reference=runner.reference,
        trace_cache_dir=runner.trace_cache_dir,
        drain=runner.drain, engine="analytic",
    )
    journal = Journal(f"{args.journal}.analytic") if args.journal else None
    executor = SweepExecutor(
        screen_runner,
        retry=RetryPolicy(max_retries=args.max_retries, seed=args.seed),
        keep_going=True,
        journal=journal,
        resume=args.resume,
        progress=ProgressReporter(len(designs) * len(workloads)),
        workers=args.workers,
        supervise=args.supervise,
    )
    print(f"analytic screen: {len(designs)} design(s) x "
          f"{len(workloads)} workload(s), keeping top {top_k} per workload")
    result = executor.run(designs, workloads)
    by_workload: dict[str, list] = {}
    for outcome in result.evaluations:
        by_workload.setdefault(outcome.workload, []).append(outcome)
    if not by_workload:
        raise SystemExit(
            "error: analytic screening produced no usable cells:\n"
            + result.report()
        )
    keep: set[str] = set()
    for outcomes in by_workload.values():
        outcomes.sort(key=lambda o: o.evaluation.edp_norm)
        keep.update(o.design for o in outcomes[:top_k])
    screened = [design for design in designs if design.name in keep]
    dropped = len(designs) - len(screened)
    print(f"analytic screen kept {len(screened)} design(s) "
          f"({dropped} screened out): "
          + ", ".join(design.name for design in screened))
    return screened


def _run_resilient_sweep(args, runner: Runner, workloads) -> int:
    """Handler for the ``sweep`` subcommand."""
    from repro.experiments.sweep import summarize
    from repro.resilience import Journal, RetryPolicy, SweepExecutor
    from repro.experiments.sweep import SweepRecord
    from repro.workloads.registry import SUITE as suite_names

    if args.resume and not args.journal:
        raise SystemExit("error: --resume requires --journal")
    journal = None
    if args.journal:
        journal = Journal(args.journal)
        if journal.exists() and not args.resume:
            raise SystemExit(
                f"error: journal {args.journal} already exists; pass "
                f"--resume to continue that campaign or delete the file"
            )
    designs = _parse_designs(
        args.designs, args.scale, runner.reference, engine=args.engine
    )
    if workloads is None:
        workloads = [get_workload(name) for name in suite_names]
    from repro.telemetry.progress import ProgressReporter

    screen_k = getattr(args, "screen_analytic", None)
    if screen_k is not None:
        if screen_k < 1:
            raise SystemExit("error: --screen-analytic needs K >= 1")
        if args.engine == "analytic":
            raise SystemExit(
                "error: --screen-analytic confirms the screened top-K "
                "with exact simulation; pick an exact --engine "
                "(auto/scalar/setpar)"
            )
        designs = _screen_designs(args, runner, designs, workloads, screen_k)

    executor = SweepExecutor(
        runner,
        retry=RetryPolicy(max_retries=args.max_retries, seed=args.seed),
        cell_timeout_s=args.cell_timeout,
        keep_going=args.keep_going,
        journal=journal,
        resume=args.resume,
        progress=ProgressReporter(len(designs) * len(workloads)),
        workers=args.workers,
        supervise=args.supervise,
        max_worker_restarts=args.max_worker_restarts,
        poison_threshold=args.poison_threshold,
        share_prefixes=not args.no_share_prefixes,
        profile_hz=args.profile,
        profile_memory=args.profile_memory,
    )
    server = None
    if getattr(args, "serve", None) is not None:
        if not args.telemetry:
            raise SystemExit(
                "error: --serve needs --telemetry DIR (the server tails "
                "the telemetry directory)"
            )
        from repro.telemetry.live import TelemetryServer

        active = get_active()
        live_registry = active.registry if isinstance(active, Telemetry) else None
        labels = (
            active.run_context.labels()
            if isinstance(active, Telemetry) and active.run_context is not None
            else None
        )
        server = TelemetryServer(
            args.telemetry,
            port=args.serve,
            registry=live_registry,
            extra_labels=labels,
            readiness=executor.pool_snapshot,
            journal=args.journal or None,
        ).start()
        print(f"live telemetry: {server.url}", file=sys.stderr)
    try:
        result = executor.run(designs, workloads)
    finally:
        if server is not None:
            server.stop()
    for outcome in result.outcomes:
        source = " (journal)" if outcome.from_journal else ""
        ev = outcome.evaluation
        detail = (
            f"time x{ev.time_norm:.3f} energy x{ev.energy_norm:.3f} "
            f"EDP x{ev.edp_norm:.3f}" if ev is not None else outcome.error
        )
        print(f"  [{outcome.status:9s}] {outcome.design}/{outcome.workload}"
              f"{source}: {detail}")
    records = [
        SweepRecord(design=o.design, workload=o.workload, evaluation=o.evaluation)
        for o in result.evaluations
    ]
    if records:
        print("\nper-design suite averages:")
        headers = ["design", "time", "energy", "EDP"]
        rows = [
            [s.design, f"{s.time_norm:.3f}", f"{s.energy_norm:.3f}",
             f"{s.edp_norm:.3f}"]
            for s in summarize(records)
        ]
        print(ascii_table(headers, rows))
    print()
    print(result.report())
    if args.journal:
        print(f"\njournal: {args.journal}")
    return 1 if result.failures else 0


def _print_tables() -> None:
    for number, fn in enumerate(
        (tables_mod.table1, tables_mod.table2, tables_mod.table3, tables_mod.table4),
        start=1,
    ):
        headers, rows = fn()
        print(f"\nTable {number}")
        print(ascii_table(headers, rows))


def _print_figure(
    number: int,
    runner: Runner,
    workloads,
    per_workload: bool = False,
    svg: str | None = None,
) -> None:
    if number in (9, 10):
        fn = heatmap_mod.figure9 if number == 9 else heatmap_mod.figure10
        hm = fn(runner, workloads)
        print()
        print(render_heatmap(hm))
        if svg:
            from repro.experiments.plot import heatmap_to_svg

            print(f"wrote {heatmap_to_svg(hm, svg)}")
        return
    fn = {
        1: figures_mod.figure1,
        2: figures_mod.figure2,
        3: figures_mod.figure3,
        4: figures_mod.figure4,
        5: figures_mod.figure5,
        6: figures_mod.figure6,
        7: figures_mod.figure7,
        8: figures_mod.figure8,
    }[number]
    fig = fn(runner, workloads)
    print()
    print(render_figure(fig))
    if svg:
        from repro.experiments.plot import figure_to_svg

        print(f"wrote {figure_to_svg(fig, svg)}")
    if per_workload:
        for label, by_category in fig.per_workload.items():
            print(f"\n  per-workload detail [{label}]:")
            for category, values in by_category.items():
                rendered = ", ".join(
                    f"{k}={v:.3f}" if isinstance(v, float) else f"{k}={v}"
                    for k, v in values.items()
                )
                print(f"    {category}: {rendered}")


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the CLUSTER 2014 "
        "emerging-memory evaluation.",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_SCALE,
        help=f"capacity/footprint scale (default {DEFAULT_SCALE:g})",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    parser.add_argument(
        "--drain", action="store_true",
        help="flush dirty blocks at end of stream at every level "
        "(steady-state accounting leaves them unflushed by default)",
    )
    parser.add_argument(
        "--trace-cache",
        type=str,
        default=None,
        help="directory for persistent trace caching (repeat runs skip "
        "workload re-execution)",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "scalar", "setpar", "analytic"),
        default="auto",
        help="cache simulation engine: 'setpar' is the set-parallel "
        "vectorized LRU fast path, 'scalar' the per-request loop, "
        "'auto' (default) picks setpar where supported — those three "
        "are bit-identical; 'analytic' replaces each design's "
        "lower-level simulation with the one-pass reuse-profile model "
        "(exact for fully-associative LRU levels, approximate for "
        "set-associative ones — see docs/performance.md)",
    )
    parser.add_argument(
        "--sample", type=str, default=None, metavar="WARMUP:WINDOW:STRIDE",
        help="sampled simulation: per stride of the trace, simulate "
        "WARMUP events to re-warm cache state, measure the next WINDOW "
        "events, skip the rest, and extrapolate whole-stream stats "
        "(approximate — recorded fidelity; incompatible with --drain "
        "and --engine analytic; see docs/performance.md)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="log tracing/simulation progress",
    )
    parser.add_argument(
        "--telemetry", type=str, default=None, metavar="DIR",
        help="record telemetry (events.jsonl, metrics.prom, "
        "windows_*.csv) into DIR for this invocation",
    )
    parser.add_argument(
        "--profile", type=float, nargs="?", const=PROFILE_DEFAULT_HZ,
        default=None, metavar="HZ",
        help="with --telemetry: continuously profile this invocation — "
        "sample wall-clock stacks at HZ samples/s (default "
        f"{PROFILE_DEFAULT_HZ:g}) attributed to spans/cells "
        "(profile.jsonl + flame.folded); sweep workers profile too",
    )
    parser.add_argument(
        "--profile-memory", action="store_true",
        help="with --profile: also record tracemalloc memory "
        "watermarks (memory_watermarks.csv); tracemalloc hooks every "
        "allocation and slows simulation ~10x, so this is opt-in",
    )
    parser.add_argument(
        "--workloads",
        type=str,
        default=None,
        help=f"comma-separated subset of {list(SUITE)}",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("tables", help="print Tables 1-4")
    fig = sub.add_parser("figure", help="regenerate one figure")
    fig.add_argument("number", type=int, choices=range(1, 11))
    fig.add_argument("--per-workload", action="store_true",
                     help="also print each workload's values")
    fig.add_argument("--svg", type=str, default=None,
                     help="also write the figure as an SVG chart")
    sub.add_parser("reproduce-all", help="all tables and figures")
    report = sub.add_parser("report", help="Markdown reproduction report")
    report.add_argument("--out", type=str, default=None,
                        help="write to a file instead of stdout")
    report.add_argument("--svg-dir", type=str, default=None,
                        help="also write every figure as SVG into this directory")
    oracle = sub.add_parser("oracle", help="NDM placement oracle for a workload")
    oracle.add_argument("workload", type=str, choices=list(SUITE))
    oracle.add_argument("--tech", type=str, default="PCM",
                        help="NVM technology (PCM/STTRAM/FeRAM)")
    heat = sub.add_parser("heatmap", help="figures 9/10 with custom factors")
    heat.add_argument("metric", choices=["time", "energy"])
    heat.add_argument("--factors", type=str, default="1,2,5,10,20",
                      help="comma-separated multipliers")
    heat.add_argument("--svg", type=str, default=None)
    sub.add_parser(
        "validate",
        help="check the cache engine against closed-form known answers",
    )
    sub.add_parser(
        "characterize",
        help="print the workload characterization table (reuse CDF, "
        "memory intensity, page locality)",
    )
    sweep = sub.add_parser(
        "sweep",
        help="fault-tolerant design-space sweep with journalling, "
        "resume, retries, and per-cell deadlines",
    )
    sweep.add_argument(
        "--designs", type=str, default=DEFAULT_SWEEP_DESIGNS,
        help="comma-separated design specs: REF, NMM:TECH:N#, "
        f"4LC:TECH:EH#, 4LCNVM:CACHE:NVM:EH# (default {DEFAULT_SWEEP_DESIGNS})",
    )
    sweep.add_argument(
        "--journal", type=str, default=None,
        help="JSON-lines result journal; finished cells are appended "
        "durably so a killed campaign can resume",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="reuse completed cells from an existing --journal instead "
        "of re-evaluating them",
    )
    sweep.add_argument(
        "--max-retries", type=int, default=0,
        help="extra attempts per failing cell (exponential backoff with "
        "seeded jitter; default 0)",
    )
    sweep.add_argument(
        "--cell-timeout", type=float, default=None,
        help="per-cell wall-clock deadline in seconds (default: none)",
    )
    sweep.add_argument(
        "--keep-going", action="store_true",
        help="finish the whole grid even after failures (default: the "
        "first failure skips the remaining cells)",
    )
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes evaluating cells (default 1: in-process; "
        "pair with --trace-cache so workers share traced streams)",
    )
    sweep.add_argument(
        "--supervise", action=argparse.BooleanOptionalAction,
        default=True,
        help="with --workers N, run the supervised worker pool (crash "
        "recovery, work stealing, graceful drain; default). "
        "--no-supervise falls back to the legacy shard pool",
    )
    sweep.add_argument(
        "--max-worker-restarts", type=int, default=3,
        help="total respawn budget for dead pool workers before the "
        "campaign degrades (default 3)",
    )
    sweep.add_argument(
        "--poison-threshold", type=int, default=2,
        help="successive worker deaths one cell may cause before it is "
        "quarantined as poisoned (default 2)",
    )
    sweep.add_argument(
        "--screen-analytic", type=int, default=None, metavar="K",
        help="two-phase sweep: first screen the full grid with the "
        "analytic engine (one reuse-profile pass per workload), then "
        "re-simulate exactly only the union of each workload's top-K "
        "designs by EDP. Screening cells journal to "
        "<journal>.analytic; requires an exact --engine",
    )
    sweep.add_argument(
        "--no-share-prefixes", action="store_true",
        help="disable shared lower-level prefix simulation (designs "
        "with config-identical L4 chains then simulate independently)",
    )
    sweep.add_argument(
        "--serve", type=int, nargs="?", const=0, default=None,
        metavar="PORT",
        help="serve live telemetry over HTTP while the sweep runs "
        "(requires --telemetry): /metrics, /events (SSE), /runs, "
        "/runs/<id>/progress, /healthz, /readyz on 127.0.0.1:PORT "
        "(bare --serve picks an ephemeral port; URL printed to stderr)",
    )
    telem = sub.add_parser(
        "telemetry",
        help="inspect, merge, export, or diff telemetry from "
        "--telemetry runs",
    )
    telem_sub = telem.add_subparsers(dest="action", required=True)
    telem_report = telem_sub.add_parser(
        "report",
        help="summarize a telemetry directory (run-aware: a sweep root "
        "with worker-N/ subdirectories is aggregated first)",
    )
    telem_report.add_argument("dir", type=str,
                              help="telemetry directory to summarize")
    telem_report.add_argument(
        "--json", action="store_true",
        help="emit the full report (spans, engines, supervision, "
        "hotspots) as JSON instead of the text rendering",
    )
    telem_serve = telem_sub.add_parser(
        "serve",
        help="serve a telemetry directory over HTTP: /metrics "
        "(metrics.prom), /events (SSE tail with Last-Event-ID "
        "resume), /runs, /runs/<id>/progress, /healthz, /readyz; "
        "works on finished or still-running directories",
    )
    telem_serve.add_argument("dir", type=str,
                             help="telemetry directory to serve")
    telem_serve.add_argument(
        "--host", type=str, default=None,
        help="bind address (default 127.0.0.1; widening this exposes "
        "an unauthenticated read-only API)",
    )
    telem_serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: ephemeral, printed to stderr)",
    )
    telem_watch = telem_sub.add_parser(
        "watch",
        help="live in-terminal dashboard over a telemetry serve URL "
        "or a telemetry directory: per-workload progress bars, "
        "rolling hit-rate gauges, worker liveness, supervision events",
    )
    telem_watch.add_argument(
        "target", type=str,
        help="a telemetry serve URL (http://...) or a telemetry "
        "directory to read directly",
    )
    telem_watch.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="redraw period in seconds (default 1.0)",
    )
    telem_watch.add_argument(
        "--once", action="store_true",
        help="render a single frame without ANSI control codes and "
        "exit (scripting / CI)",
    )
    telem_merge = telem_sub.add_parser(
        "merge",
        help="merge a run root plus its worker-N/ telemetry into one "
        "ordered events.jsonl, summed metrics.prom, and a combined "
        "windows CSV with provenance columns",
    )
    telem_merge.add_argument("dir", type=str, help="run root to merge")
    telem_merge.add_argument(
        "--out", type=str, default=None,
        help="output directory (default DIR/merged)",
    )
    telem_trace = telem_sub.add_parser(
        "trace",
        help="export a Chrome trace_event JSON timeline (one track per "
        "worker, async slices per sweep cell); open in Perfetto or "
        "chrome://tracing",
    )
    telem_trace.add_argument("dir", type=str,
                             help="run root or merged directory")
    telem_trace.add_argument(
        "--out", type=str, default=None,
        help="output file (default DIR/trace.json)",
    )
    telem_diff = telem_sub.add_parser(
        "diff",
        help="compare two runs (span durations, hit rates, engine "
        "vector fractions, cell failures); exits 1 on regressions",
    )
    telem_diff.add_argument("baseline", type=str,
                            help="baseline run root or merged directory")
    telem_diff.add_argument("candidate", type=str,
                            help="candidate run root or merged directory")
    telem_diff.add_argument(
        "--span-pct", type=float, default=None, metavar="PCT",
        help="span regression: grew by more than PCT percent "
        "(default 25)",
    )
    telem_diff.add_argument(
        "--span-min-s", type=float, default=None, metavar="S",
        help="span regression: and grew by more than S seconds "
        "(default 0.05)",
    )
    telem_diff.add_argument(
        "--hit-rate-abs", type=float, default=None, metavar="D",
        help="hit-rate regression: absolute change above D "
        "(default 0.005)",
    )
    telem_diff.add_argument(
        "--vector-frac-abs", type=float, default=None, metavar="D",
        help="engine regression: vectorized fraction dropped by more "
        "than D (default 0.05)",
    )
    telem_diff.add_argument(
        "--hotspot-abs", type=float, default=None, metavar="D",
        help="hotspot regression: a profiled function's inclusive "
        "sample share moved by more than D either way "
        "(default 0.10 = 10 points)",
    )
    telem_diff.add_argument(
        "--hotspot-min-samples", type=int, default=None, metavar="N",
        help="arm the hotspot gate only when both runs hold at least "
        "N samples (default 50)",
    )
    telem_flame = telem_sub.add_parser(
        "flame",
        help="merge a profiled run's profile.jsonl files (root + "
        "worker-N/) into one collapsed-stack flame.folded file "
        "(flamegraph.pl / speedscope input)",
    )
    telem_flame.add_argument("dir", type=str,
                             help="run root or merged directory")
    telem_flame.add_argument(
        "--out", type=str, default=None,
        help="output file (default DIR/flame.folded)",
    )

    args = parser.parse_args(argv)
    if args.verbose:
        import logging

        logging.basicConfig(level=logging.INFO, format="%(message)s")
        logging.getLogger("repro").setLevel(logging.INFO)
    workloads = _parse_workloads(args.workloads)

    if args.profile is not None and not args.telemetry:
        parser.error("--profile requires --telemetry DIR (profiles are "
                     "written into the telemetry directory)")
    if args.profile is not None and args.profile <= 0:
        parser.error(f"--profile rate must be positive, got {args.profile:g}")
    if args.profile_memory and args.profile is None:
        parser.error("--profile-memory requires --profile")

    telemetry = None
    if args.telemetry:
        telemetry = Telemetry(
            args.telemetry, run_context=RunContext(new_run_id())
        )
        if args.profile is not None:
            telemetry.enable_profiling(
                args.profile, memory=args.profile_memory
            )
        set_active(telemetry)
    try:
        return _dispatch(args, workloads)
    finally:
        if telemetry is not None:
            set_active(None)
            telemetry.close()
            print(f"telemetry: {args.telemetry}", file=sys.stderr)


def _telemetry_command(args) -> int:
    """Handler for the ``telemetry`` subcommand family."""
    from pathlib import Path

    from repro.errors import TelemetryError
    from repro.telemetry import observatory
    from repro.telemetry.report import (
        render_summary,
        summarize_directory,
        summary_to_dict,
    )

    try:
        if args.action == "report":
            import json as json_mod

            root = Path(args.dir)
            if any(
                observatory.worker_index(child) is not None
                for child in root.iterdir() if child.is_dir()
            ):
                aggregate = observatory.aggregate_run(root)
                summary = observatory.summary_from_aggregate(aggregate)
                if args.json:
                    print(json_mod.dumps(
                        summary_to_dict(summary), indent=2))
                else:
                    print(observatory.render_run_overview(aggregate))
                    print()
                    print(render_summary(summary))
            else:
                summary = summarize_directory(root)
                if args.json:
                    print(json_mod.dumps(
                        summary_to_dict(summary), indent=2))
                else:
                    print(render_summary(summary))
            return 0

        if args.action == "serve":
            import signal

            from repro.telemetry.live import DEFAULT_HOST, TelemetryServer

            root = Path(args.dir)
            if not root.is_dir():
                raise TelemetryError(f"no telemetry directory at {root}")
            journal = root / "campaign.jsonl"
            server = TelemetryServer(
                root,
                host=args.host or DEFAULT_HOST,
                port=args.port,
                journal=journal if journal.is_file() else None,
            ).start()
            print(f"serving telemetry from {root} at {server.url} "
                  f"(Ctrl-C to stop)", file=sys.stderr)
            try:
                signal.pause()
            except (KeyboardInterrupt, AttributeError):
                # AttributeError: no signal.pause() on Windows — fall
                # back to a sleep loop.
                if not hasattr(signal, "pause"):
                    import time as time_mod
                    try:
                        while True:
                            time_mod.sleep(3600)
                    except KeyboardInterrupt:
                        pass
            finally:
                server.stop()
            return 0

        if args.action == "watch":
            from repro.telemetry.live import watch

            return watch(
                args.target, interval_s=args.interval, once=args.once
            )

        if args.action == "merge":
            root = Path(args.dir)
            out_dir = Path(args.out) if args.out else root / "merged"
            aggregate = observatory.aggregate_run(root)
            written = observatory.write_merged(aggregate, out_dir)
            print(observatory.render_run_overview(aggregate))
            for path in written.values():
                print(f"wrote {path}")
            return 0

        if args.action == "trace":
            root = Path(args.dir)
            out = Path(args.out) if args.out else root / observatory.TRACE_FILE
            aggregate = observatory.aggregate_run(root)
            path = observatory.write_chrome_trace(aggregate, out)
            print(f"wrote {path} "
                  f"(open in https://ui.perfetto.dev or chrome://tracing)")
            return 0

        if args.action == "flame":
            from repro.telemetry import profiling

            root = Path(args.dir)
            aggregate = observatory.aggregate_run(root)
            if not aggregate.profiles:
                raise TelemetryError(
                    f"no profile samples under {root} — run the sweep "
                    "with --profile to record them"
                )
            out = Path(args.out) if args.out else root / profiling.FLAME_FILE
            path = profiling.write_flame(aggregate.profiles, out)
            samples = profiling.total_samples(aggregate.profiles)
            print(f"wrote {path} ({samples} samples; feed to "
                  f"flamegraph.pl or https://www.speedscope.app)")
            return 0

        # diff
        thresholds = observatory.DiffThresholds()
        if args.span_pct is not None:
            thresholds = dataclasses.replace(
                thresholds, span_pct=args.span_pct)
        if args.span_min_s is not None:
            thresholds = dataclasses.replace(
                thresholds, span_min_s=args.span_min_s)
        if args.hit_rate_abs is not None:
            thresholds = dataclasses.replace(
                thresholds, hit_rate_abs=args.hit_rate_abs)
        if args.vector_frac_abs is not None:
            thresholds = dataclasses.replace(
                thresholds, vector_fraction_abs=args.vector_frac_abs)
        if args.hotspot_abs is not None:
            thresholds = dataclasses.replace(
                thresholds, hotspot_share_abs=args.hotspot_abs)
        if args.hotspot_min_samples is not None:
            thresholds = dataclasses.replace(
                thresholds, hotspot_min_samples=args.hotspot_min_samples)
        baseline = observatory.aggregate_run(args.baseline)
        candidate = observatory.aggregate_run(args.candidate)
        diff = observatory.diff_runs(baseline, candidate, thresholds)
        print(observatory.render_diff(diff))
        return 0 if diff.ok else 1
    except TelemetryError as exc:
        raise SystemExit(f"error: {exc}") from None


def _dispatch(args, workloads) -> int:
    """Run the selected subcommand (telemetry already activated)."""
    if args.command == "telemetry":
        return _telemetry_command(args)

    if args.command == "tables":
        _print_tables()
        return 0

    if args.command == "validate":
        from repro.experiments.validate import validate_simulator

        checks = validate_simulator()
        width = max(len(c.name) for c in checks)
        failed = 0
        for check in checks:
            status = "ok  " if check.passed else "FAIL"
            failed += 0 if check.passed else 1
            print(f"  [{status}] {check.name:{width}s} "
                  f"expected {check.expected:.4f} measured {check.measured:.4f} "
                  f"(tol {check.tolerance:g})")
        print(f"{len(checks) - failed}/{len(checks)} analytical checks passed")
        return 1 if failed else 0

    try:
        runner = Runner(
            scale=args.scale, seed=args.seed,
            trace_cache_dir=args.trace_cache,
            drain=args.drain, engine=args.engine, sample=args.sample,
        )
    except ConfigError as exc:
        raise SystemExit(f"error: {exc}") from None
    if args.command == "figure":
        _print_figure(args.number, runner, workloads,
                      per_workload=args.per_workload, svg=args.svg)
        return 0

    if args.command == "sweep":
        return _run_resilient_sweep(args, runner, workloads)

    if args.command == "report":
        from repro.experiments.report import generate_report, render_markdown

        report_data = generate_report(runner, workloads)
        text = render_markdown(report_data, args.scale)
        if args.out:
            from pathlib import Path

            Path(args.out).write_text(text)
            print(f"wrote {args.out} ({len(text.splitlines())} lines)")
        else:
            print(text)
        if args.svg_dir:
            from pathlib import Path

            from repro.experiments.plot import figure_to_svg, heatmap_to_svg

            directory = Path(args.svg_dir)
            directory.mkdir(parents=True, exist_ok=True)
            for fig in report_data.figures.values():
                name = fig.figure.lower().replace(" ", "")
                print(f"wrote {figure_to_svg(fig, directory / (name + '.svg'))}")
            for hm in report_data.heatmaps.values():
                name = hm.figure.lower().replace(" ", "")
                print(f"wrote {heatmap_to_svg(hm, directory / (name + '.svg'))}")
        return 0

    if args.command == "characterize":
        from repro.experiments.characterize import characterize, render_profiles

        suite = workloads or [get_workload(name) for name in SUITE]
        profiles = [characterize(runner, workload) for workload in suite]
        print()
        print(render_profiles(profiles))
        return 0

    if args.command == "heatmap":
        try:
            factors = tuple(
                float(f) for f in args.factors.split(",") if f.strip()
            )
        except ValueError:
            raise SystemExit(
                f"error: bad --factors {args.factors!r}; expected e.g. 1,2,5"
            ) from None
        if not factors or any(f <= 0 for f in factors):
            raise SystemExit("error: factors must be positive numbers")
        fn = heatmap_mod.figure9 if args.metric == "time" else heatmap_mod.figure10
        hm = fn(runner, workloads, factors=factors)
        print()
        print(render_heatmap(hm))
        if args.svg:
            from repro.experiments.plot import heatmap_to_svg

            print(f"wrote {heatmap_to_svg(hm, args.svg)}")
        return 0

    if args.command == "oracle":
        from repro.tech.params import get_technology

        try:
            tech = get_technology(args.tech)
        except KeyError:
            raise SystemExit(
                f"error: unknown technology {args.tech!r}"
            ) from None
        workload = get_workload(args.workload)
        placements = runner.ndm_oracle(workload, tech)
        print(f"NDM oracle: {workload.name}, NVM = {tech.name}")
        for result in placements:
            ev = result.evaluation
            flag = "ok" if result.feasible else "infeasible"
            print(f"  [{flag:10s}] {result.label}: "
                  f"time x{ev.time_norm:.3f} energy x{ev.energy_norm:.3f} "
                  f"EDP x{ev.edp_norm:.3f}")
        return 0

    # reproduce-all
    with get_active().span("cli.reproduce_all", scale=args.scale) as span:
        _print_tables()
        for number in range(1, 11):
            _print_figure(number, runner, workloads)
    print(f"\nreproduced all tables and figures in "
          f"{span.duration_s:.1f}s (scale={args.scale:g})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

"""ASCII rendering of tables, figure series, and heat maps."""

from __future__ import annotations

from repro.experiments.figures import FigureSeries
from repro.experiments.heatmap import HeatMap


def ascii_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render a left-aligned monospace table with a header rule."""
    columns = [headers] + rows
    widths = [max(len(str(row[i])) for row in columns) for i in range(len(headers))]

    def fmt(row) -> str:
        return "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))

    rule = "  ".join("-" * width for width in widths)
    return "\n".join([fmt(headers), rule] + [fmt(row) for row in rows])


def render_figure(series: FigureSeries, precision: int = 3) -> str:
    """Render a figure's series as a table: one row per series label."""
    headers = [series.metric] + series.categories
    rows = []
    for label, points in series.series.items():
        rows.append(
            [label]
            + [
                f"{points[c]:.{precision}f}" if c in points else "-"
                for c in series.categories
            ]
        )
    title = f"{series.figure}: {series.title}"
    return title + "\n" + ascii_table(headers, rows)


def render_heatmap(heatmap: HeatMap, precision: int = 3) -> str:
    """Render a heat map as a grid: rows = write factors, cols = read."""
    headers = ["write\\read"] + [f"{f:g}x" for f in heatmap.read_factors]
    rows = []
    for write_x, row in zip(heatmap.write_factors, heatmap.values):
        rows.append([f"{write_x:g}x"] + [f"{v:.{precision}f}" for v in row])
    title = f"{heatmap.figure}: {heatmap.title}"
    return title + "\n" + ascii_table(headers, rows)

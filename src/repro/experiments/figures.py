"""Figures 1–8: normalized runtime/energy series.

Each ``figureN`` function returns a :class:`FigureSeries` holding the
same series the paper plots (averages of normalized runtime or total
energy over the benchmark suite), plus the per-workload detail the
averages were computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.designs.configs import EH_CONFIGS, N_CONFIGS
from repro.designs.fourlc import FourLCDesign
from repro.designs.fourlcnvm import FourLCNVMDesign
from repro.designs.nmm import NMMDesign
from repro.experiments.runner import Runner
from repro.tech.params import (
    MemoryTechnology,
    nvm_technologies,
    volatile_cache_technologies,
)
from repro.workloads.base import Workload
from repro.workloads.registry import SUITE, get_workload


@dataclass
class FigureSeries:
    """Data behind one paper figure.

    Attributes:
        figure: figure label ("Figure 1", ...).
        title: what the figure shows.
        metric: "time_norm" or "energy_norm".
        categories: x-axis configuration names.
        series: series label -> {category: average value}.
        per_workload: series label -> {category: {workload: value}}.
    """

    figure: str
    title: str
    metric: str
    categories: list[str]
    series: dict[str, dict[str, float]] = field(default_factory=dict)
    per_workload: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)

    def best(self) -> tuple[str, str, float]:
        """(series, category, value) with the lowest average value."""
        best = None
        for label, points in self.series.items():
            for category, value in points.items():
                if best is None or value < best[2]:
                    best = (label, category, value)
        if best is None:
            raise ValueError("empty figure")
        return best


def _suite(workloads: list[Workload] | None) -> list[Workload]:
    return workloads if workloads is not None else [get_workload(n) for n in SUITE]


def _sweep(
    figure: str,
    title: str,
    metric: str,
    categories: list[str],
    make_design,
    series_labels: list,
    runner: Runner,
    workloads: list[Workload] | None,
) -> FigureSeries:
    """Shared sweep driver: series × categories × workloads."""
    suite = _suite(workloads)
    out = FigureSeries(
        figure=figure, title=title, metric=metric, categories=categories
    )
    for label_obj in series_labels:
        label = (
            str(label_obj)
            if isinstance(label_obj, _Pair)
            else getattr(label_obj, "name", str(label_obj))
        )
        out.series[label] = {}
        out.per_workload[label] = {}
        for category in categories:
            values: dict[str, float] = {}
            for workload in suite:
                design = make_design(label_obj, category)
                evaluation = runner.evaluate(design, workload)
                values[workload.name] = getattr(evaluation, metric)
            out.per_workload[label][category] = values
            out.series[label][category] = sum(values.values()) / len(values)
    return out


# ---------------------------------------------------------------------------
# NMM — Figures 1 & 2
# ---------------------------------------------------------------------------


def figure1(
    runner: Runner,
    workloads: list[Workload] | None = None,
    nvm_techs: list[MemoryTechnology] | None = None,
) -> FigureSeries:
    """Figure 1: average normalized run time, NMM design, N1–N9."""
    techs = nvm_techs or nvm_technologies()
    return _sweep(
        "Figure 1",
        "Average of normalized run time of all benchmarks for NMM",
        "time_norm",
        list(N_CONFIGS),
        lambda tech, cfg: NMMDesign(
            tech, N_CONFIGS[cfg], scale=runner.scale, reference=runner.reference
        ),
        techs,
        runner,
        workloads,
    )


def figure2(
    runner: Runner,
    workloads: list[Workload] | None = None,
    nvm_techs: list[MemoryTechnology] | None = None,
) -> FigureSeries:
    """Figure 2: average normalized total energy, NMM design, N1–N9."""
    techs = nvm_techs or nvm_technologies()
    return _sweep(
        "Figure 2",
        "Average of normalized energy of different benchmarks for NMM",
        "energy_norm",
        list(N_CONFIGS),
        lambda tech, cfg: NMMDesign(
            tech, N_CONFIGS[cfg], scale=runner.scale, reference=runner.reference
        ),
        techs,
        runner,
        workloads,
    )


# ---------------------------------------------------------------------------
# 4LC — Figures 3 & 4
# ---------------------------------------------------------------------------


def figure3(
    runner: Runner,
    workloads: list[Workload] | None = None,
    cache_techs: list[MemoryTechnology] | None = None,
) -> FigureSeries:
    """Figure 3: average normalized run time, 4LC design, EH1–EH8."""
    techs = cache_techs or volatile_cache_technologies()
    return _sweep(
        "Figure 3",
        "Average of normalized run time of different benchmarks for 4LC",
        "time_norm",
        list(EH_CONFIGS),
        lambda tech, cfg: FourLCDesign(
            tech, EH_CONFIGS[cfg], scale=runner.scale, reference=runner.reference
        ),
        techs,
        runner,
        workloads,
    )


def figure4(
    runner: Runner,
    workloads: list[Workload] | None = None,
    cache_techs: list[MemoryTechnology] | None = None,
) -> FigureSeries:
    """Figure 4: average normalized total energy, 4LC design, EH1–EH8."""
    techs = cache_techs or volatile_cache_technologies()
    return _sweep(
        "Figure 4",
        "Average of normalized total energy of different benchmarks for 4LC",
        "energy_norm",
        list(EH_CONFIGS),
        lambda tech, cfg: FourLCDesign(
            tech, EH_CONFIGS[cfg], scale=runner.scale, reference=runner.reference
        ),
        techs,
        runner,
        workloads,
    )


# ---------------------------------------------------------------------------
# 4LCNVM — Figures 5 & 6
# ---------------------------------------------------------------------------


def _fourlcnvm_pairs(
    cache_techs: list[MemoryTechnology] | None,
    nvm_techs: list[MemoryTechnology] | None,
) -> list[tuple[MemoryTechnology, MemoryTechnology]]:
    caches = cache_techs or volatile_cache_technologies()
    nvms = nvm_techs or nvm_technologies()
    return [(c, n) for c in caches for n in nvms]


class _Pair(tuple):
    """Technology pair with a readable label for the series key."""

    def __str__(self) -> str:
        return f"{self[0].name}/{self[1].name}"


def figure5(
    runner: Runner,
    workloads: list[Workload] | None = None,
    cache_techs: list[MemoryTechnology] | None = None,
    nvm_techs: list[MemoryTechnology] | None = None,
) -> FigureSeries:
    """Figure 5: average normalized run time, 4LCNVM design, EH1–EH8."""
    pairs = [_Pair(p) for p in _fourlcnvm_pairs(cache_techs, nvm_techs)]
    return _sweep(
        "Figure 5",
        "Average of normalized run time of all benchmarks for 4LCNVM",
        "time_norm",
        list(EH_CONFIGS),
        lambda pair, cfg: FourLCNVMDesign(
            pair[0],
            pair[1],
            EH_CONFIGS[cfg],
            scale=runner.scale,
            reference=runner.reference,
        ),
        pairs,
        runner,
        workloads,
    )


def figure6(
    runner: Runner,
    workloads: list[Workload] | None = None,
    cache_techs: list[MemoryTechnology] | None = None,
    nvm_techs: list[MemoryTechnology] | None = None,
) -> FigureSeries:
    """Figure 6: average normalized total energy, 4LCNVM design, EH1–EH8."""
    pairs = [_Pair(p) for p in _fourlcnvm_pairs(cache_techs, nvm_techs)]
    return _sweep(
        "Figure 6",
        "Average of normalized total energy of all benchmarks for 4LCNVM",
        "energy_norm",
        list(EH_CONFIGS),
        lambda pair, cfg: FourLCNVMDesign(
            pair[0],
            pair[1],
            EH_CONFIGS[cfg],
            scale=runner.scale,
            reference=runner.reference,
        ),
        pairs,
        runner,
        workloads,
    )


# ---------------------------------------------------------------------------
# NDM — Figures 7 & 8
# ---------------------------------------------------------------------------


#: Minimum share of the traced footprint a placement must put in NVM to
#: count for Figures 7/8. The paper excludes the trivial permutations
#: whose "memory accesses were concentrated in DRAM and hence the
#: performance ... is similar to that of base case"; placements below
#: this share are exactly those.
NDM_MIN_NVM_SHARE: float = 0.3


def _ndm_figure(
    figure: str,
    title: str,
    metric: str,
    runner: Runner,
    workloads: list[Workload] | None,
    nvm_techs: list[MemoryTechnology] | None,
    min_nvm_share: float = NDM_MIN_NVM_SHARE,
) -> FigureSeries:
    """NDM figures: per-workload values of the oracle's best
    *capacity-meaningful* placement (see :data:`NDM_MIN_NVM_SHARE`)."""
    suite = _suite(workloads)
    techs = nvm_techs or nvm_technologies()
    out = FigureSeries(
        figure=figure,
        title=title,
        metric=metric,
        categories=[w.name for w in suite],
    )
    for tech in techs:
        label = tech.name
        out.series[label] = {}
        out.per_workload[label] = {}
        for workload in suite:
            placements = runner.ndm_oracle(workload, tech)
            footprint = runner.prepare(workload).traced_footprint_bytes
            meaningful = [
                p
                for p in placements
                if sum(r.size for r in p.nvm_ranges) >= min_nvm_share * footprint
            ]
            best = (meaningful or placements)[0]  # best-first ordering
            value = getattr(best.evaluation, metric)
            out.series[label][workload.name] = value
            out.per_workload[label][workload.name] = {
                "value": value,
                "placement": best.label,
                "feasible": float(best.feasible),
            }
    return out


def figure7(
    runner: Runner,
    workloads: list[Workload] | None = None,
    nvm_techs: list[MemoryTechnology] | None = None,
) -> FigureSeries:
    """Figure 7: normalized run time per workload, NDM oracle placement."""
    return _ndm_figure(
        "Figure 7",
        "Average of normalized run time of all benchmarks for NDM design",
        "time_norm",
        runner,
        workloads,
        nvm_techs,
    )


def figure8(
    runner: Runner,
    workloads: list[Workload] | None = None,
    nvm_techs: list[MemoryTechnology] | None = None,
) -> FigureSeries:
    """Figure 8: normalized total energy per workload, NDM oracle placement."""
    return _ndm_figure(
        "Figure 8",
        "Average of normalized total energy of all benchmarks for NDM design",
        "energy_norm",
        runner,
        workloads,
        nvm_techs,
    )

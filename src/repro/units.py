"""Unit helpers and conversions used throughout the package.

The simulator mixes several unit systems (bytes/KiB/MiB for capacities,
nanoseconds for device delays, picojoules-per-bit for access energies,
milliwatts for static power, seconds/joules for whole-application
results). Centralizing the constants keeps the model code legible and
prevents silent unit mistakes.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Capacities (binary prefixes, as used by the paper's tables)
# ---------------------------------------------------------------------------

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

NS_PER_S: float = 1e9
S_PER_NS: float = 1e-9

# ---------------------------------------------------------------------------
# Energy
# ---------------------------------------------------------------------------

PJ_PER_J: float = 1e12
J_PER_PJ: float = 1e-12

# ---------------------------------------------------------------------------
# Power
# ---------------------------------------------------------------------------

MW_PER_W: float = 1e3
W_PER_MW: float = 1e-3

BITS_PER_BYTE: int = 8


def is_power_of_two(value: int) -> bool:
    """Return True iff ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Exact integer log2 of a power of two.

    Raises:
        ValueError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value!r} is not a positive power of two")
    return value.bit_length() - 1


def format_bytes(n: int | float) -> str:
    """Human-readable capacity string (binary prefixes): 64 -> '64B',
    16 * MiB -> '16MB' (the paper uses MB to mean MiB)."""
    n = int(n)
    if n >= GiB and n % GiB == 0:
        return f"{n // GiB}GB"
    if n >= MiB and n % MiB == 0:
        return f"{n // MiB}MB"
    if n >= KiB and n % KiB == 0:
        return f"{n // KiB}KB"
    return f"{n}B"


def parse_bytes(text: str) -> int:
    """Parse a capacity string like '64B', '512KB', '16MB', '4GB'.

    Binary prefixes are assumed (matching the paper's usage).

    Raises:
        ValueError: if the string is not a recognized capacity.
    """
    s = text.strip().upper()
    multipliers = {"GB": GiB, "MB": MiB, "KB": KiB, "B": 1}
    for suffix, mult in multipliers.items():
        if s.endswith(suffix):
            number = s[: -len(suffix)].strip()
            if not number:
                break
            try:
                value = float(number)
            except ValueError:
                break
            result = value * mult
            if result != int(result) or result <= 0:
                raise ValueError(f"capacity must be a positive whole number of bytes: {text!r}")
            return int(result)
    raise ValueError(f"unrecognized capacity string: {text!r}")

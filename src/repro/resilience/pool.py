"""Supervised persistent worker pool with work stealing.

The shard-based pool in :mod:`repro.resilience.executor` has one blind
spot: a worker *process* dying (OOM killer, scheduler SIGKILL) used to
surface as ``BrokenProcessPool`` and abort the whole campaign — the
one failure mode per-cell fault isolation cannot catch from inside the
process. This module supervises the processes themselves:

- **work stealing** — workers pull *individual cells* from the
  parent's dispatch queue over per-worker pipes, so a fast worker
  drains the tail instead of idling behind a static shard split;
- **heartbeats** — each worker emits a heartbeat from a dedicated
  thread; silence past a timeout marks the process wedged even when
  the OS still reports it alive;
- **crash recovery** — a dead worker's in-flight cell is requeued and
  the worker respawned (up to ``max_worker_restarts``); a cell that
  kills ``poison_threshold`` successive workers is quarantined as
  ``poisoned`` and the campaign continues;
- **hung-worker watchdog** — a cell past its deadline escalates
  soft-cancel (cooperative event) → SIGTERM → SIGKILL, de-escalating
  if the cell finishes inside a grace window;
- **graceful drain** — SIGINT/SIGTERM on the parent stops dispatch,
  waits for in-flight cells, flushes journal and telemetry, and leaves
  an exact-resume journal (a second signal force-kills).

One duplex pipe per worker — never a shared queue — so a SIGKILLed
worker cannot die holding a shared lock and deadlock its peers; pipe
EOF doubles as a death signal. Every supervision event flows through
the parent's RunContext-stamped telemetry (``worker_spawned`` /
``worker_died`` / ``worker_respawned`` / ``cell_requeued`` /
``cell_poisoned`` / ``worker_hung`` / ``pool_drain`` /
``pool_exhausted``) so ``telemetry report``/``merge``/``diff`` see the
supervision story alongside the simulation one.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import signal
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.errors import ConfigError
from repro.resilience.executor import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_POISONED,
    STATUS_TIMED_OUT,
    SweepExecutor,
)
from repro.telemetry.core import (
    NULL_TELEMETRY,
    NullTelemetry,
    RunContext,
    Telemetry,
    set_active,
)

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.resilience.faults import FaultInjector
    from repro.resilience.retry import RetryPolicy

#: Watchdog escalation stages, in order.
STAGE_SOFT_CANCEL = "soft_cancel"
STAGE_SIGTERM = "sigterm"
STAGE_SIGKILL = "sigkill"

_STAGE_NAMES = {1: STAGE_SOFT_CANCEL, 2: STAGE_SIGTERM, 3: STAGE_SIGKILL}


@dataclass(frozen=True)
class PoolTuning:
    """Supervision timing knobs (tests shrink these aggressively).

    Attributes:
        heartbeat_interval_s: worker heartbeat period.
        heartbeat_timeout_s: beat silence after which an apparently
            alive worker is treated as wedged and escalated.
        soft_grace_s: grace after the cooperative cancel before
            SIGTERM.
        term_grace_s: grace after SIGTERM before SIGKILL.
        tick_s: supervisor loop period (message wait timeout).
        cancel_poll_s: worker-side poll period for the cancel event
            while a cell runs.
        shutdown_grace_s: join timeout per worker at pool shutdown
            before force-killing stragglers.
    """

    heartbeat_interval_s: float = 0.25
    heartbeat_timeout_s: float = 10.0
    soft_grace_s: float = 0.5
    term_grace_s: float = 2.0
    tick_s: float = 0.05
    cancel_poll_s: float = 0.02
    shutdown_grace_s: float = 5.0


DEFAULT_TUNING = PoolTuning()


@dataclass
class PoolStats:
    """What the supervisor did during one campaign.

    Attributes:
        spawned: worker processes started (initial + respawns).
        deaths: worker deaths observed (escalated or not).
        respawns: replacement workers started.
        requeues: in-flight cells returned to the queue after a death.
        poisoned: cells quarantined for killing too many workers.
        escalations: hung-worker escalations begun.
        drained: a drain signal interrupted the campaign.
        exhausted: the restart budget ran out with cells outstanding.
    """

    spawned: int = 0
    deaths: int = 0
    respawns: int = 0
    requeues: int = 0
    poisoned: int = 0
    escalations: int = 0
    drained: bool = False
    exhausted: bool = False


@contextmanager
def _drain_signals(
    drain: threading.Event, force: threading.Event
) -> Iterator[bool]:
    """Route SIGINT/SIGTERM into drain/force events for the pool loop.

    The handler only sets events: :meth:`Telemetry.event` takes a
    non-reentrant lock, so the supervisor loop — never the signal
    handler — emits the ``pool_drain`` event. A second signal sets
    ``force`` (immediate stop). Off the main thread (or where signals
    are unavailable) this is a no-op and yields False.
    """
    if threading.current_thread() is not threading.main_thread():
        yield False
        return

    def handler(signum, frame) -> None:
        if drain.is_set():
            force.set()
        drain.set()

    previous: dict[int, object] = {}
    installed: list[int] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, handler)
            installed.append(signum)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            pass
    try:
        yield True
    finally:
        for signum in installed:
            signal.signal(signum, previous[signum])


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _pool_worker(conn, cancel_event, payload: dict) -> None:
    """One pool worker: pull cells, evaluate, ack, repeat.

    Protocol (worker -> parent, all tuples): ``("heartbeat", ts)``,
    ``("cell_started", key, ts)``, ``("cell_finished", record)``,
    ``("cell_abandoned", key)``, ``("drained",)``. Parent -> worker:
    a ``(design, workload, key)`` cell, or ``None`` to drain.
    """
    # Forked workers inherit the parent's drain handlers; reset them so
    # Ctrl-C to the process group cannot kill workers mid-drain and the
    # watchdog's SIGTERM actually terminates the process.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)

    from repro.experiments.runner import Runner

    index = payload["worker_index"]
    context = (
        RunContext(payload["run_id"]).child(f"worker-{index}")
        if payload.get("run_id")
        else None
    )
    telemetry: Telemetry | NullTelemetry = (
        Telemetry(payload["telemetry_dir"], run_context=context)
        if payload.get("telemetry_dir")
        else NULL_TELEMETRY
    )
    # The parent's active telemetry must not be shared across processes
    # (torn event lines, clobbered snapshots).
    set_active(telemetry)
    if payload.get("profile_hz") and payload.get("telemetry_dir"):
        telemetry.enable_profiling(
            payload["profile_hz"],
            memory=bool(payload.get("profile_memory")),
        )

    send_lock = threading.Lock()

    def send(message: tuple) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):
                pass

    stop_beats = threading.Event()

    def beat() -> None:
        while not stop_beats.wait(payload["heartbeat_interval_s"]):
            send(("heartbeat", time.monotonic()))

    threading.Thread(
        target=beat, name=f"pool-beat-{index}", daemon=True
    ).start()

    fatal = False
    try:
        runner = Runner(telemetry=telemetry, **payload["runner_args"])
        faults: FaultInjector | None = payload.get("worker_faults")
        evaluate = faults.wrap(runner.evaluate) if faults is not None else None
        # The per-cell deadline is enforced by the parent's watchdog,
        # not in here: a worker that abandons a cell to a runaway
        # daemon thread would keep burning CPU; exiting (below) and
        # being respawned actually reclaims the resources.
        executor = SweepExecutor(
            runner,
            retry=payload["retry"],
            keep_going=True,
            journal=None,
            resume=False,
            evaluate=evaluate,
            telemetry=telemetry,
            share_prefixes=False,
        )
        while True:
            try:
                task = conn.recv()
            except (EOFError, OSError):
                break
            if task is None:
                send(("drained",))
                break
            design, workload, key = task
            send(("cell_started", key, time.monotonic()))
            box: dict[str, object] = {}

            def work() -> None:
                try:
                    with telemetry.cell_scope(key), telemetry.span(
                        "sweep.cell",
                        design=design.name,
                        workload=workload.name,
                    ):
                        box["outcome"] = executor._run_cell(
                            design, workload, key
                        )
                except BaseException as exc:  # CampaignKill & friends
                    box["error"] = exc

            thread = threading.Thread(
                target=work, name=f"pool-cell-{index}", daemon=True
            )
            thread.start()
            abandoned = False
            while thread.is_alive():
                thread.join(payload["cancel_poll_s"])
                if thread.is_alive() and cancel_event.is_set():
                    # The parent's watchdog gave up on this cell. Exit
                    # (taking the daemon cell thread down with the
                    # process) so the respawn starts clean.
                    send(("cell_abandoned", key))
                    abandoned = True
                    break
            if abandoned:
                break
            if "error" in box:
                # A BaseException escaped fault isolation — the moral
                # equivalent of the process dying mid-cell. Die for
                # real; the parent requeues or quarantines the cell.
                fatal = True
                break
            outcome = box["outcome"]
            record = {
                "key": outcome.key,
                "design": outcome.design,
                "workload": outcome.workload,
                "status": outcome.status,
                "attempts": outcome.attempts,
                "duration_s": outcome.duration_s,
                "error": outcome.error,
                "evaluation": (
                    None
                    if outcome.evaluation is None
                    else dataclasses.asdict(outcome.evaluation)
                ),
            }
            send(("cell_finished", record))
            # Flush after every ack: a later SIGKILL must not cost this
            # cell's metrics (merge conservation across restarts).
            telemetry.flush()
    except BaseException:
        fatal = True
    finally:
        stop_beats.set()
        set_active(None)
        try:
            telemetry.close()
        except Exception:
            pass
    if fatal:
        raise SystemExit(1)


# ----------------------------------------------------------------------
# Parent-side supervision
# ----------------------------------------------------------------------


class _WorkerHandle:
    """Parent-side state for one worker process."""

    __slots__ = (
        "index", "proc", "conn", "cancel", "inflight", "anchor",
        "last_beat", "stage", "stage_deadline", "abandoned",
        "sentinel_sent", "drained", "eof", "closed",
    )

    def __init__(self, index: int, proc, conn, cancel) -> None:
        self.index = index
        self.proc = proc
        self.conn = conn
        self.cancel = cancel
        self.inflight: tuple | None = None
        self.anchor = 0.0
        self.last_beat = time.monotonic()
        self.stage = 0
        self.stage_deadline = 0.0
        self.abandoned = False
        self.sentinel_sent = False
        self.drained = False
        self.eof = False
        self.closed = False

    @property
    def label(self) -> str:
        return f"worker-{self.index}"


class SupervisedPool:
    """A supervised, work-stealing pool of persistent cell workers.

    Args:
        workers: worker processes to keep running.
        runner_args: keyword arguments rebuilding the
            :class:`~repro.experiments.runner.Runner` in each worker.
        retry: per-cell retry policy (applied inside workers).
        cell_timeout_s: per-cell wall-clock deadline, enforced by the
            parent's watchdog (None disables deadline escalation;
            heartbeat silence still escalates).
        max_worker_restarts: total replacement workers the campaign may
            spawn; past the budget dead workers stay dead, and if no
            workers remain the pool reports exhaustion instead of
            raising.
        poison_threshold: successive worker deaths one cell may cause
            before it is quarantined as ``poisoned``.
        telemetry: the parent's telemetry (supervision events/metrics).
        telemetry_root: directory whose ``worker-K/`` subdirectories
            receive worker telemetry (None disables worker telemetry).
        run_id: campaign correlation id stamped into worker contexts.
        worker_faults: a picklable
            :class:`~repro.resilience.faults.FaultInjector` each worker
            wraps around its evaluate (chaos testing).
        tuning: supervision timing knobs.
    """

    def __init__(
        self,
        *,
        workers: int,
        runner_args: dict,
        retry: "RetryPolicy",
        cell_timeout_s: float | None = None,
        max_worker_restarts: int = 3,
        poison_threshold: int = 2,
        telemetry: Telemetry | NullTelemetry | None = None,
        telemetry_root: Path | None = None,
        run_id: str | None = None,
        worker_faults: "FaultInjector | None" = None,
        tuning: PoolTuning | None = None,
        profile_hz: float | None = None,
        profile_memory: bool = False,
    ) -> None:
        if workers < 1:
            raise ConfigError("workers must be >= 1")
        if profile_hz is not None and profile_hz <= 0:
            raise ConfigError("profile_hz must be positive")
        if max_worker_restarts < 0:
            raise ConfigError("max_worker_restarts must be >= 0")
        if poison_threshold < 1:
            raise ConfigError("poison_threshold must be >= 1")
        self.workers = workers
        self.runner_args = runner_args
        self.retry = retry
        self.cell_timeout_s = cell_timeout_s
        self.max_worker_restarts = max_worker_restarts
        self.poison_threshold = poison_threshold
        self.tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self.telemetry_root = telemetry_root
        self.run_id = run_id
        self.worker_faults = worker_faults
        self.tuning = tuning if tuning is not None else DEFAULT_TUNING
        self.profile_hz = profile_hz
        self.profile_memory = profile_memory
        self._ctx = multiprocessing.get_context()
        self._handles: list[_WorkerHandle] = []
        self._pending: deque = deque()
        self._kills: dict[str, int] = {}
        self._stats = PoolStats()
        self._keep_going = True
        self._failed_fast = False
        self._next_index = 0
        self._on_result: Callable[[dict], None] = lambda record: None

    # -- public API -----------------------------------------------------

    def run(
        self,
        cells: Sequence[tuple],
        *,
        keep_going: bool = True,
        on_result: Callable[[dict], None] | None = None,
    ) -> tuple[PoolStats, list[tuple]]:
        """Run ``(design, workload, key)`` cells to completion.

        ``on_result`` is invoked in the parent, once per finished cell
        (worker results, parent-fabricated ``timed_out`` / ``poisoned``
        / exhaustion ``failed`` records alike), *before* the next cell
        is dispatched to that worker — journal-before-ack ordering.

        Returns ``(stats, leftover)``: ``leftover`` holds the cells
        never finished (drain, fail-fast, or exhaustion with
        ``keep_going=False``), in dispatch order, for the caller to
        mark skipped. Never raises for worker failures.
        """
        stats = self._stats = PoolStats()
        self._pending = deque(cells)
        self._kills = {}
        self._handles = []
        self._keep_going = keep_going
        self._failed_fast = False
        self._next_index = 0
        if on_result is not None:
            self._on_result = on_result
        if not self._pending:
            return stats, []
        drain = threading.Event()
        force = threading.Event()
        with _drain_signals(drain, force):
            for _ in range(min(self.workers, len(self._pending))):
                self._spawn()
            try:
                self._loop(drain, force)
            finally:
                self._shutdown(force.is_set())
        return stats, list(self._pending)

    def heartbeat_snapshot(self) -> dict:
        """Point-in-time worker liveness for the readiness probe.

        Safe to call from another thread while :meth:`run` is looping
        (list copies + GIL-atomic field reads; no locks shared with
        the supervisor). The live observability plane's ``/readyz``
        endpoint folds this through
        :func:`repro.telemetry.live.pool_readiness`: an exhausted pool,
        no live workers, or a live worker silent past the heartbeat
        timeout (or already under watchdog escalation) flips readiness.

        Returns a dict with ``workers`` (one entry per ever-spawned
        worker: label, alive, seconds since the last heartbeat, the
        in-flight cell key, and the watchdog escalation stage),
        ``exhausted`` / ``drained`` flags, and the pool's heartbeat
        timeout so the policy needs no back-channel to the tuning.
        """
        now = time.monotonic()
        workers = []
        for handle in list(self._handles):
            try:
                alive = not handle.closed and handle.proc.is_alive()
            except ValueError:  # pragma: no cover - closed process obj
                alive = False
            workers.append({
                "worker": handle.label,
                "alive": alive,
                "beat_age_s": round(max(0.0, now - handle.last_beat), 3),
                "inflight": (
                    handle.inflight[2]
                    if handle.inflight is not None else None
                ),
                "stage": _STAGE_NAMES.get(handle.stage),
            })
        return {
            "workers": workers,
            "exhausted": self._stats.exhausted,
            "drained": self._stats.drained,
            "heartbeat_timeout_s": self.tuning.heartbeat_timeout_s,
        }

    # -- lifecycle ------------------------------------------------------

    def _spawn(self, replaces: int | None = None) -> _WorkerHandle:
        index = self._next_index
        self._next_index += 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        cancel = self._ctx.Event()
        payload = {
            "worker_index": index,
            "run_id": self.run_id,
            "telemetry_dir": (
                str(self.telemetry_root / f"worker-{index}")
                if self.telemetry_root is not None
                else None
            ),
            "runner_args": self.runner_args,
            "retry": self.retry,
            "worker_faults": self.worker_faults,
            "heartbeat_interval_s": self.tuning.heartbeat_interval_s,
            "cancel_poll_s": self.tuning.cancel_poll_s,
            "profile_hz": self.profile_hz,
            "profile_memory": self.profile_memory,
        }
        proc = self._ctx.Process(
            target=_pool_worker,
            args=(child_conn, cancel, payload),
            name=f"repro-pool-{index}",
            daemon=True,
        )
        proc.start()
        # Close the parent's copy of the child end so a SIGKILLed
        # worker's pipe reads EOF instead of blocking forever.
        child_conn.close()
        handle = _WorkerHandle(index, proc, parent_conn, cancel)
        self._handles.append(handle)
        self._stats.spawned += 1
        self.tel.gauge("repro_pool_workers_alive").inc()
        # NB: "pool_worker", not "worker" — the latter is the
        # RunContext provenance field on every event and must not be
        # clobbered (the observatory dedups on it).
        if replaces is None:
            self.tel.event("worker_spawned", pool_worker=handle.label)
        else:
            self._stats.respawns += 1
            self.tel.counter("repro_pool_restarts_total").inc()
            self.tel.event(
                "worker_respawned",
                pool_worker=handle.label,
                replaces=f"worker-{replaces}",
            )
        return handle

    def _live(self) -> list[_WorkerHandle]:
        return [h for h in self._handles if not h.closed]

    def _inflight_count(self) -> int:
        return sum(1 for h in self._live() if h.inflight is not None)

    # -- main loop ------------------------------------------------------

    def _loop(self, drain: threading.Event, force: threading.Event) -> None:
        while True:
            now = time.monotonic()
            if force.is_set():
                # Second signal: stop now. In-flight cells go back to
                # pending so the resume journal is exact.
                self._stats.drained = True
                for handle in self._live():
                    if handle.inflight is not None:
                        self._pending.appendleft(handle.inflight)
                        handle.inflight = None
                return
            if drain.is_set() and not self._stats.drained:
                self._stats.drained = True
                self.tel.event(
                    "pool_drain",
                    pending=len(self._pending),
                    inflight=self._inflight_count(),
                )
            stopping = self._stats.drained or self._failed_fast
            if not stopping:
                self._dispatch(now)
            if self._inflight_count() == 0 and (
                stopping or not self._pending
            ):
                return
            live = self._live()
            conns = {
                h.conn: h for h in live if not h.eof
            }
            if conns:
                for conn in _connection_wait(
                    list(conns), timeout=self.tuning.tick_s
                ):
                    self._pump(conns[conn])
            else:
                time.sleep(self.tuning.tick_s)
            now = time.monotonic()
            for handle in list(self._handles):
                if handle.closed:
                    continue
                if not handle.proc.is_alive():
                    self._handle_death(handle, now)
                else:
                    self._watchdog(handle, now)
            stopping = self._stats.drained or self._failed_fast
            if (
                not stopping
                and self._pending
                and not self._live()
            ):
                self._exhaust()
                return

    def _dispatch(self, now: float) -> None:
        for handle in self._handles:
            if not self._pending:
                return
            if (
                handle.closed
                or handle.eof
                or handle.sentinel_sent
                or handle.inflight is not None
                or not handle.proc.is_alive()
            ):
                continue
            cell = self._pending.popleft()
            try:
                handle.conn.send(cell)
            except (BrokenPipeError, OSError):
                self._pending.appendleft(cell)
                handle.eof = True
                continue
            handle.inflight = cell
            handle.anchor = now
            handle.stage = 0

    def _pump(self, handle: _WorkerHandle) -> None:
        while True:
            try:
                if not handle.conn.poll():
                    return
                message = handle.conn.recv()
            except (EOFError, OSError):
                handle.eof = True
                return
            handle.last_beat = time.monotonic()
            kind = message[0]
            if kind == "heartbeat":
                continue
            if kind == "cell_started":
                handle.anchor = time.monotonic()
            elif kind == "cell_finished":
                handle.inflight = None
                if handle.stage:
                    # The cell finished inside an escalation grace
                    # window: de-escalate and keep the worker.
                    handle.stage = 0
                    handle.cancel.clear()
                self._finish(message[1])
            elif kind == "cell_abandoned":
                cell = handle.inflight
                handle.inflight = None
                handle.abandoned = True
                if cell is not None:
                    self._finish(
                        self._timeout_record(
                            cell, handle, "worker honoured the soft "
                            "cancel and exited for respawn",
                        )
                    )
            elif kind == "drained":
                handle.drained = True

    def _finish(self, record: dict) -> None:
        self._on_result(record)
        if record.get("status") != STATUS_OK and not self._keep_going:
            self._failed_fast = True

    def _timeout_record(
        self, cell: tuple, handle: _WorkerHandle, how: str
    ) -> dict:
        design, workload, key = cell
        deadline = (
            f"its {self.cell_timeout_s:g}s deadline"
            if self.cell_timeout_s is not None
            else f"the {self.tuning.heartbeat_timeout_s:g}s heartbeat "
            "timeout"
        )
        return {
            "key": key,
            "design": design.name,
            "workload": workload.name,
            "status": STATUS_TIMED_OUT,
            "attempts": 1,
            "duration_s": time.monotonic() - handle.anchor,
            "error": f"cell exceeded {deadline} on {handle.label}; {how}",
            "evaluation": None,
        }

    # -- death handling -------------------------------------------------

    def _handle_death(self, handle: _WorkerHandle, now: float) -> None:
        # Drain any result the worker sent just before dying.
        self._pump(handle)
        handle.proc.join(timeout=self.tuning.shutdown_grace_s)
        handle.closed = True
        self.tel.gauge("repro_pool_workers_alive").dec()
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.drained:
            return  # clean sentinel exit, not a death
        cell = handle.inflight
        handle.inflight = None
        escalated = handle.stage > 0 or handle.abandoned
        self._stats.deaths += 1
        self.tel.counter("repro_pool_worker_deaths_total").inc()
        self.tel.event(
            "worker_died",
            pool_worker=handle.label,
            exitcode=handle.proc.exitcode,
            escalated=escalated,
            cell=cell[2] if cell is not None else None,
        )
        if cell is not None:
            if escalated:
                stage = _STAGE_NAMES.get(handle.stage, STAGE_SOFT_CANCEL)
                self._finish(
                    self._timeout_record(
                        cell, handle,
                        f"worker terminated at escalation stage {stage}",
                    )
                )
            else:
                self._crash_cell(cell, handle, now)
        stopping = self._stats.drained or self._failed_fast
        if (
            not stopping
            and self._pending
            and self._stats.respawns < self.max_worker_restarts
        ):
            self._spawn(replaces=handle.index)

    def _crash_cell(
        self, cell: tuple, handle: _WorkerHandle, now: float
    ) -> None:
        """Requeue or quarantine the cell a crashed worker was running."""
        design, workload, key = cell
        kills = self._kills.get(key, 0) + 1
        self._kills[key] = kills
        if kills >= self.poison_threshold:
            self._stats.poisoned += 1
            self.tel.counter("repro_pool_poisoned_cells_total").inc()
            self.tel.event(
                "cell_poisoned",
                cell=key,
                design=design.name,
                workload=workload.name,
                worker_kills=kills,
            )
            self._finish({
                "key": key,
                "design": design.name,
                "workload": workload.name,
                "status": STATUS_POISONED,
                "attempts": kills,
                "duration_s": now - handle.anchor,
                "error": (
                    f"poisoned: cell killed {kills} successive worker(s) "
                    f"(poison_threshold={self.poison_threshold}); "
                    f"quarantined so the campaign can continue"
                ),
                "evaluation": None,
            })
        else:
            self._stats.requeues += 1
            self.tel.counter("repro_pool_requeues_total").inc()
            self.tel.event(
                "cell_requeued",
                cell=key,
                design=design.name,
                workload=workload.name,
                worker_kills=kills,
            )
            self._pending.appendleft(cell)

    # -- watchdog -------------------------------------------------------

    def _watchdog(self, handle: _WorkerHandle, now: float) -> None:
        if handle.inflight is None or handle.abandoned:
            return
        overdue = (
            self.cell_timeout_s is not None
            and now - handle.anchor > self.cell_timeout_s
        )
        silent = now - handle.last_beat > self.tuning.heartbeat_timeout_s
        if not overdue and not silent:
            return
        reason = "deadline" if overdue else "heartbeat"
        key = handle.inflight[2]
        if handle.stage == 0:
            handle.stage = 1
            handle.stage_deadline = now + self.tuning.soft_grace_s
            handle.cancel.set()
            self._stats.escalations += 1
            self.tel.counter("repro_pool_escalations_total").inc()
            self.tel.event(
                "worker_hung", pool_worker=handle.label,
                stage=STAGE_SOFT_CANCEL, reason=reason, cell=key,
            )
        elif handle.stage == 1 and now >= handle.stage_deadline:
            handle.stage = 2
            handle.stage_deadline = now + self.tuning.term_grace_s
            handle.proc.terminate()
            self.tel.event(
                "worker_hung", pool_worker=handle.label,
                stage=STAGE_SIGTERM, reason=reason, cell=key,
            )
        elif handle.stage == 2 and now >= handle.stage_deadline:
            handle.stage = 3
            handle.proc.kill()
            self.tel.event(
                "worker_hung", pool_worker=handle.label,
                stage=STAGE_SIGKILL, reason=reason, cell=key,
            )

    # -- exhaustion and shutdown ----------------------------------------

    def _exhaust(self) -> None:
        """No workers left, no restart budget, cells outstanding."""
        self._stats.exhausted = True
        self.tel.event(
            "pool_exhausted",
            pending=len(self._pending),
            respawns=self._stats.respawns,
        )
        if not self._keep_going:
            return  # leftover cells become skipped at the call site
        while self._pending:
            design, workload, key = self._pending.popleft()
            self._finish({
                "key": key,
                "design": design.name,
                "workload": workload.name,
                "status": STATUS_FAILED,
                "attempts": 0,
                "duration_s": 0.0,
                "error": (
                    f"worker pool exhausted: every worker died and the "
                    f"restart budget is spent "
                    f"(max_worker_restarts={self.max_worker_restarts})"
                ),
                "evaluation": None,
            })

    def _shutdown(self, force: bool) -> None:
        for handle in self._handles:
            if handle.closed:
                continue
            if force:
                handle.proc.kill()
                continue
            if not handle.sentinel_sent:
                try:
                    handle.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
                handle.sentinel_sent = True
        deadline = time.monotonic() + self.tuning.shutdown_grace_s
        for handle in self._handles:
            if handle.closed:
                continue
            handle.proc.join(
                timeout=max(0.0, deadline - time.monotonic())
            )
            if handle.proc.is_alive():
                handle.proc.kill()
                handle.proc.join(timeout=1.0)
            handle.closed = True
            self.tel.gauge("repro_pool_workers_alive").dec()
            try:
                handle.conn.close()
            except OSError:
                pass

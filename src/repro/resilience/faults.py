"""Deterministic fault injection for testing the resilience paths.

Retry, resume, deadline, and integrity handling are only trustworthy
if they are themselves exercised; this module makes the failure modes
reproducible on demand:

- **cell faults** — wrap the executor's evaluate callable so the Nth
  evaluation raises, a given (design, workload) cell always (or k
  times) fails, a cell stalls long enough to trip its deadline, or the
  whole campaign "dies" mid-run (a :class:`CampaignKill`, which the
  executor deliberately does not catch — simulating SIGKILL for
  resume tests);
- **artifact corruption** — :func:`truncate_file` and
  :func:`bitflip_file` damage saved trace artifacts deterministically
  so integrity checking can be asserted.

Everything is counted and seeded: the same injector configuration
produces the same failures in the same places, every run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import ConfigError, ReproError

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.designs.base import MemoryDesign
    from repro.model.evaluate import Evaluation
    from repro.workloads.base import Workload


class InjectedFault(ReproError):
    """The default exception raised by an injected cell fault."""


class CampaignKill(BaseException):
    """Simulates the process dying mid-campaign.

    Derives from :class:`BaseException` on purpose: the executor's
    fault isolation catches only :class:`Exception`, so a kill tears
    the campaign down exactly like SIGKILL would — leaving the journal
    with only the cells that finished.
    """


@dataclass
class _CellRule:
    """One injection rule matched against evaluation calls."""

    matcher: Callable[[int, "MemoryDesign", "Workload"], bool]
    action: Callable[[int, "MemoryDesign", "Workload"], None]
    remaining: float  # may be math.inf for "always"

    def applies(self, call: int, design, workload) -> bool:
        return self.remaining > 0 and self.matcher(call, design, workload)


@dataclass
class FaultInjector:
    """Wraps an evaluate callable with scripted, deterministic faults.

    Use :meth:`wrap` to decorate ``runner.evaluate`` and hand the
    result to :class:`~repro.resilience.executor.SweepExecutor` via its
    ``evaluate`` argument. Calls are numbered from 1 in execution
    order, which is deterministic (design-major, workload-minor).
    """

    calls: int = 0
    _rules: list[_CellRule] = field(default_factory=list)

    # -- scripting ------------------------------------------------------

    def _add(self, matcher, action, times: float) -> "FaultInjector":
        if times <= 0:
            raise ConfigError("times must be positive")
        self._rules.append(_CellRule(matcher, action, times))
        return self

    def fail_at_call(
        self,
        n: int,
        exc_factory: Callable[[], Exception] | None = None,
    ) -> "FaultInjector":
        """Raise on the Nth evaluation overall (1-based)."""
        factory = exc_factory or (
            lambda: InjectedFault(f"injected failure at call {n}")
        )

        def action(call, design, workload):
            raise factory()

        return self._add(lambda call, d, w: call == n, action, times=1)

    def fail_cell(
        self,
        design_name: str,
        workload_name: str,
        *,
        times: float = float("inf"),
        exc_factory: Callable[[], Exception] | None = None,
    ) -> "FaultInjector":
        """Fail a specific cell ``times`` times (default: always)."""
        factory = exc_factory or (
            lambda: InjectedFault(
                f"injected failure in cell {design_name}/{workload_name}"
            )
        )

        def action(call, design, workload):
            raise factory()

        return self._add(
            lambda call, d, w: d.name == design_name
            and w.name == workload_name,
            action,
            times=times,
        )

    def delay_cell(
        self,
        design_name: str,
        workload_name: str,
        seconds: float,
        *,
        times: float = float("inf"),
        sleep: Callable[[float], None] = time.sleep,
    ) -> "FaultInjector":
        """Stall a cell long enough to trip a wall-clock deadline."""

        def action(call, design, workload):
            sleep(seconds)

        return self._add(
            lambda call, d, w: d.name == design_name
            and w.name == workload_name,
            action,
            times=times,
        )

    def kill_at_call(self, n: int) -> "FaultInjector":
        """Raise :class:`CampaignKill` on the Nth evaluation overall."""

        def action(call, design, workload):
            raise CampaignKill(f"injected campaign kill at call {n}")

        return self._add(lambda call, d, w: call == n, action, times=1)

    # -- application ----------------------------------------------------

    def wrap(
        self,
        evaluate: Callable[["MemoryDesign", "Workload"], "Evaluation"],
    ) -> Callable[["MemoryDesign", "Workload"], "Evaluation"]:
        """The instrumented evaluate callable."""

        def instrumented(design, workload):
            self.calls += 1
            for rule in self._rules:
                if rule.applies(self.calls, design, workload):
                    rule.remaining -= 1
                    rule.action(self.calls, design, workload)
            return evaluate(design, workload)

        return instrumented


# ----------------------------------------------------------------------
# Artifact corruption
# ----------------------------------------------------------------------


def truncate_file(path: str | Path, *, keep_fraction: float = 0.5) -> None:
    """Truncate a file to a fraction of its size (simulated torn write)."""
    if not 0.0 <= keep_fraction < 1.0:
        raise ConfigError("keep_fraction must be in [0, 1)")
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: int(len(data) * keep_fraction)])


def bitflip_file(path: str | Path, *, seed: int = 0) -> int:
    """Flip one deterministically-chosen bit in a file.

    Returns the byte offset flipped (for failure messages). The offset
    is drawn from a seeded RNG so the same (file size, seed) pair
    always damages the same position.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ConfigError(f"cannot bit-flip empty file {path}")
    rng = np.random.default_rng(seed)
    offset = int(rng.integers(0, len(data)))
    bit = int(rng.integers(0, 8))
    data[offset] ^= 1 << bit
    path.write_bytes(bytes(data))
    return offset

"""Deterministic fault injection for testing the resilience paths.

Retry, resume, deadline, and supervision handling are only trustworthy
if they are themselves exercised; this module makes the failure modes
reproducible on demand:

- **cell faults** — wrap the executor's evaluate callable so the Nth
  evaluation raises, a given (design, workload) cell always (or k
  times) fails, a cell stalls long enough to trip its deadline, or the
  whole campaign "dies" mid-run (a :class:`CampaignKill`, which the
  executor deliberately does not catch — simulating SIGKILL for
  resume tests);
- **process faults** — :meth:`FaultInjector.worker_kill` /
  :meth:`FaultInjector.worker_kill_cell` SIGKILL the evaluating
  process from inside a cell, and :meth:`FaultInjector.worker_hang`
  sleeps far past any deadline, so chaos tests can drive the
  supervised worker pool (dead-worker respawn, poison quarantine, the
  hung-worker watchdog) deterministically;
- **artifact corruption** — :func:`truncate_file` and
  :func:`bitflip_file` damage saved trace artifacts deterministically
  so integrity checking can be asserted.

Everything is counted and seeded: the same injector configuration
produces the same failures in the same places, every run. Rules are
built from plain picklable objects (not closures), so an injector can
cross a process boundary into pool workers via
``SweepExecutor(worker_faults=...)``; each worker then counts its own
calls. For faults that must fire **once across the whole pool** —
e.g. kill exactly one worker even though the requeued cell re-runs in
a fresh process — pass a ``latch`` path: the first process to create
the latch file fires the fault, every later one skips it.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import ConfigError, ReproError

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.designs.base import MemoryDesign
    from repro.model.evaluate import Evaluation
    from repro.workloads.base import Workload


class InjectedFault(ReproError):
    """The default exception raised by an injected cell fault."""


class CampaignKill(BaseException):
    """Simulates the process dying mid-campaign.

    Derives from :class:`BaseException` on purpose: the executor's
    fault isolation catches only :class:`Exception`, so a kill tears
    the campaign down exactly like SIGKILL would — leaving the journal
    with only the cells that finished.
    """


def acquire_latch(path: str | Path | None) -> bool:
    """Atomically claim a cross-process once-only latch.

    Returns True exactly once per path across all processes (O_EXCL
    creation); every other caller — including the same process again —
    gets False. ``None`` always returns True, so unlatched rules keep
    their per-rule ``times`` budget as the only limiter.
    """
    if path is None:
        return True
    try:
        fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


# ----------------------------------------------------------------------
# Picklable matchers and actions
# ----------------------------------------------------------------------
#
# Rules must survive pickling into pool worker processes, so matchers
# and actions are small dataclasses with __call__, never closures.


@dataclass(frozen=True)
class _MatchCall:
    """Matches the Nth evaluation overall (1-based, per process)."""

    n: int

    def __call__(self, call: int, design, workload) -> bool:
        return call == self.n


@dataclass(frozen=True)
class _MatchCell:
    """Matches one (design, workload) cell by name."""

    design: str
    workload: str

    def __call__(self, call: int, design, workload) -> bool:
        return design.name == self.design and workload.name == self.workload


@dataclass(frozen=True)
class _RaiseInjected:
    """Raises :class:`InjectedFault` with a fixed message."""

    message: str

    def __call__(self, call: int, design, workload) -> None:
        raise InjectedFault(self.message)


@dataclass(frozen=True)
class _RaiseFactory:
    """Raises whatever a caller-supplied factory builds.

    Only picklable when the factory itself is; custom factories are an
    in-process testing affordance.
    """

    factory: Callable[[], Exception]

    def __call__(self, call: int, design, workload) -> None:
        raise self.factory()


@dataclass(frozen=True)
class _CampaignKillAction:
    """Raises :class:`CampaignKill` (simulated in-process SIGKILL)."""

    message: str

    def __call__(self, call: int, design, workload) -> None:
        raise CampaignKill(self.message)


@dataclass(frozen=True)
class _SleepAction:
    """Stalls the evaluation (``sleep`` injectable for tests)."""

    seconds: float
    sleep: Callable[[float], None] = time.sleep

    def __call__(self, call: int, design, workload) -> None:
        self.sleep(self.seconds)


@dataclass(frozen=True)
class _SigKillSelf:
    """SIGKILLs the evaluating process — no cleanup, no goodbye.

    With a ``latch``, only the first process to claim it dies; the
    requeued cell then completes in the respawned worker.
    """

    latch: str | None = None

    def __call__(self, call: int, design, workload) -> None:
        if acquire_latch(self.latch):
            os.kill(os.getpid(), signal.SIGKILL)


@dataclass(frozen=True)
class _HangAction:
    """Sleeps far past any deadline (the hung-worker scenario)."""

    seconds: float
    latch: str | None = None
    sleep: Callable[[float], None] = time.sleep

    def __call__(self, call: int, design, workload) -> None:
        if acquire_latch(self.latch):
            self.sleep(self.seconds)


@dataclass
class _CellRule:
    """One injection rule matched against evaluation calls."""

    matcher: Callable[[int, "MemoryDesign", "Workload"], bool]
    action: Callable[[int, "MemoryDesign", "Workload"], None]
    remaining: float  # may be math.inf for "always"

    def applies(self, call: int, design, workload) -> bool:
        return self.remaining > 0 and self.matcher(call, design, workload)


@dataclass
class FaultInjector:
    """Wraps an evaluate callable with scripted, deterministic faults.

    Use :meth:`wrap` to decorate ``runner.evaluate`` and hand the
    result to :class:`~repro.resilience.executor.SweepExecutor` via its
    ``evaluate`` argument (in-process), or pass the injector itself as
    ``worker_faults=`` so every pool/shard worker wraps its own
    evaluate with a private copy. Calls are numbered from 1 in
    execution order per process, which is deterministic (design-major,
    workload-minor in a serial sweep; dispatch order per worker in a
    pool).
    """

    calls: int = 0
    _rules: list[_CellRule] = field(default_factory=list)

    # -- scripting ------------------------------------------------------

    def _add(self, matcher, action, times: float) -> "FaultInjector":
        if times <= 0:
            raise ConfigError("times must be positive")
        self._rules.append(_CellRule(matcher, action, times))
        return self

    def fail_at_call(
        self,
        n: int,
        exc_factory: Callable[[], Exception] | None = None,
    ) -> "FaultInjector":
        """Raise on the Nth evaluation overall (1-based)."""
        action = (
            _RaiseFactory(exc_factory) if exc_factory is not None
            else _RaiseInjected(f"injected failure at call {n}")
        )
        return self._add(_MatchCall(n), action, times=1)

    def fail_cell(
        self,
        design_name: str,
        workload_name: str,
        *,
        times: float = float("inf"),
        exc_factory: Callable[[], Exception] | None = None,
    ) -> "FaultInjector":
        """Fail a specific cell ``times`` times (default: always)."""
        action = (
            _RaiseFactory(exc_factory) if exc_factory is not None
            else _RaiseInjected(
                f"injected failure in cell {design_name}/{workload_name}"
            )
        )
        return self._add(
            _MatchCell(design_name, workload_name), action, times=times
        )

    def delay_cell(
        self,
        design_name: str,
        workload_name: str,
        seconds: float,
        *,
        times: float = float("inf"),
        sleep: Callable[[float], None] = time.sleep,
    ) -> "FaultInjector":
        """Stall a cell long enough to trip a wall-clock deadline."""
        return self._add(
            _MatchCell(design_name, workload_name),
            _SleepAction(seconds, sleep),
            times=times,
        )

    def kill_at_call(self, n: int) -> "FaultInjector":
        """Raise :class:`CampaignKill` on the Nth evaluation overall."""
        return self._add(
            _MatchCall(n),
            _CampaignKillAction(f"injected campaign kill at call {n}"),
            times=1,
        )

    def worker_kill(
        self, n: int, *, latch: str | Path | None = None
    ) -> "FaultInjector":
        """SIGKILL the evaluating process from inside its Nth cell.

        Each pool worker counts its own calls, so without a ``latch``
        every (re)spawned worker dies on its Nth evaluation — the
        restart-budget / pool-exhaustion scenario. With a ``latch``,
        exactly one process across the campaign dies.
        """
        return self._add(
            _MatchCall(n),
            _SigKillSelf(str(latch) if latch is not None else None),
            times=1,
        )

    def worker_kill_cell(
        self,
        design_name: str,
        workload_name: str,
        *,
        times: float = float("inf"),
        latch: str | Path | None = None,
    ) -> "FaultInjector":
        """SIGKILL the evaluating process whenever it runs one cell.

        Without a ``latch`` the cell kills every worker it is requeued
        onto — the poison-cell scenario. With a ``latch`` it kills one
        worker and then completes normally on the respawn — the
        requeue-and-recover scenario.
        """
        return self._add(
            _MatchCell(design_name, workload_name),
            _SigKillSelf(str(latch) if latch is not None else None),
            times=times,
        )

    def worker_hang(
        self,
        design_name: str,
        workload_name: str,
        seconds: float = 3600.0,
        *,
        times: float = float("inf"),
        latch: str | Path | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "FaultInjector":
        """Sleep past any deadline inside one cell (hung worker).

        The supervised pool's watchdog escalates soft-cancel → SIGTERM
        → SIGKILL on the worker; with a ``latch`` the hang fires once,
        so a resumed campaign completes the cell.
        """
        return self._add(
            _MatchCell(design_name, workload_name),
            _HangAction(
                seconds, str(latch) if latch is not None else None, sleep
            ),
            times=times,
        )

    # -- application ----------------------------------------------------

    def wrap(
        self,
        evaluate: Callable[["MemoryDesign", "Workload"], "Evaluation"],
    ) -> Callable[["MemoryDesign", "Workload"], "Evaluation"]:
        """The instrumented evaluate callable."""

        def instrumented(design, workload):
            self.calls += 1
            for rule in self._rules:
                if rule.applies(self.calls, design, workload):
                    rule.remaining -= 1
                    rule.action(self.calls, design, workload)
            return evaluate(design, workload)

        return instrumented


# ----------------------------------------------------------------------
# Artifact corruption
# ----------------------------------------------------------------------


def truncate_file(path: str | Path, *, keep_fraction: float = 0.5) -> None:
    """Truncate a file to a fraction of its size (simulated torn write)."""
    if not 0.0 <= keep_fraction < 1.0:
        raise ConfigError("keep_fraction must be in [0, 1)")
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: int(len(data) * keep_fraction)])


def bitflip_file(path: str | Path, *, seed: int = 0) -> int:
    """Flip one deterministically-chosen bit in a file.

    Returns the byte offset flipped (for failure messages). The offset
    is drawn from a seeded RNG so the same (file size, seed) pair
    always damages the same position.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ConfigError(f"cannot bit-flip empty file {path}")
    rng = np.random.default_rng(seed)
    offset = int(rng.integers(0, len(data)))
    bit = int(rng.integers(0, 8))
    data[offset] ^= 1 << bit
    path.write_bytes(bytes(data))
    return offset

"""Fault-tolerant, resumable experiment execution.

Long sweep campaigns (the paper's 9 workloads × dozens of design
points) need to survive bad cells, crashes, and corrupt cached
artifacts. This package provides the resilience layer:

- :mod:`repro.resilience.retry` — bounded retries with deterministic
  seeded backoff jitter (:class:`RetryPolicy`).
- :mod:`repro.resilience.journal` — on-disk JSON-lines result journal
  keyed by a content hash of (design, workload, scale, seed), written
  atomically, enabling exact resume (:class:`Journal`).
- :mod:`repro.resilience.executor` — the fault-isolated sweep executor
  with per-cell deadlines and a degradation report
  (:class:`SweepExecutor`, :class:`CampaignResult`).
- :mod:`repro.resilience.pool` — the supervised persistent worker pool
  behind ``workers > 1``: per-cell dispatch (work stealing),
  heartbeats, dead-worker respawn, poison-cell quarantine, a
  hung-worker watchdog, and graceful SIGINT/SIGTERM drain
  (:class:`SupervisedPool`).
- :mod:`repro.resilience.faults` — a deterministic fault-injection
  harness (cell failures, slow cells, mid-campaign kills, worker
  kills/hangs, artifact corruption) so the resilience paths are
  themselves tested (:class:`FaultInjector`).
"""

from repro.resilience.executor import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_POISONED,
    STATUS_SKIPPED,
    STATUS_TIMED_OUT,
    CampaignResult,
    CellOutcome,
    SweepExecutor,
    format_exception_chain,
)
from repro.resilience.faults import (
    CampaignKill,
    FaultInjector,
    InjectedFault,
    acquire_latch,
    bitflip_file,
    truncate_file,
)
from repro.resilience.journal import (
    SCHEMA_VERSION,
    Journal,
    JournalEntry,
    cell_key,
    cell_key_for,
)
from repro.resilience.pool import PoolStats, PoolTuning, SupervisedPool
from repro.resilience.retry import NO_RETRY, RetryPolicy, call_with_retries

__all__ = [
    "SweepExecutor",
    "CampaignResult",
    "CellOutcome",
    "STATUS_OK",
    "STATUS_FAILED",
    "STATUS_SKIPPED",
    "STATUS_TIMED_OUT",
    "STATUS_POISONED",
    "format_exception_chain",
    "Journal",
    "JournalEntry",
    "SCHEMA_VERSION",
    "cell_key",
    "cell_key_for",
    "SupervisedPool",
    "PoolStats",
    "PoolTuning",
    "RetryPolicy",
    "NO_RETRY",
    "call_with_retries",
    "FaultInjector",
    "InjectedFault",
    "CampaignKill",
    "acquire_latch",
    "truncate_file",
    "bitflip_file",
]

"""Bounded retries with deterministic, seeded backoff jitter.

A failed sweep cell is usually worth one or two more tries (transient
resource pressure, an injected fault under test), but a campaign must
stay reproducible: given the same seed and cell key, the retry
schedule — including its jitter — is identical on every run. Jitter is
therefore derived from a SHA-256 of ``(seed, cell key, attempt)``
rather than from a global RNG or the wall clock.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import ConfigError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently a failing cell is retried.

    Attributes:
        max_retries: additional attempts after the first failure
            (0 disables retrying; a cell runs ``max_retries + 1``
            times at most).
        backoff_base_s: delay before the first retry, seconds.
        backoff_factor: multiplier applied per subsequent retry
            (exponential backoff).
        jitter_fraction: the delay is perturbed by up to ±this
            fraction, deterministically per (seed, key, attempt).
        seed: jitter seed; recorded with campaign results so every
            failure is reproducible.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative")
        if self.backoff_base_s < 0:
            raise ConfigError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigError("jitter_fraction must be in [0, 1)")

    @property
    def max_attempts(self) -> int:
        """Total attempts a cell may consume."""
        return self.max_retries + 1

    def jitter_unit(self, key: str, attempt: int) -> float:
        """Deterministic uniform value in [0, 1) for one retry slot."""
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def delay_s(self, key: str, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of cell ``key``."""
        if attempt < 1:
            raise ConfigError("attempt numbering starts at 1")
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        spread = 2.0 * self.jitter_unit(key, attempt) - 1.0
        return max(0.0, base * (1.0 + self.jitter_fraction * spread))


#: Retrying disabled: one attempt, no backoff.
NO_RETRY = RetryPolicy(max_retries=0, backoff_base_s=0.0, jitter_fraction=0.0)


def call_with_retries(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy,
    key: str = "",
    sleep: Callable[[float], None] = time.sleep,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
) -> tuple[T, int]:
    """Call ``fn`` under a retry policy.

    Returns ``(result, attempts_used)``. After the final attempt the
    last exception propagates unchanged, with earlier failures present
    on its ``__context__`` chain.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn(), attempt
        except retry_on:
            if attempt >= policy.max_attempts:
                raise
            sleep(policy.delay_s(key, attempt))

"""Fault-isolated sweep execution with journalling and deadlines.

The paper's evaluation is a large (design × workload) grid, and each
cell is expensive because tracing actually runs the workload. The
executor runs that grid so one bad cell can't sink the campaign:

- every cell runs in **fault isolation**: an exception is captured
  (with its full chain) and recorded, not propagated;
- a configurable :class:`~repro.resilience.retry.RetryPolicy` re-tries
  transient failures with deterministic, seeded backoff;
- an optional per-cell **wall-clock deadline** abandons runaway cells
  (the attempt keeps running on a daemon thread, but the campaign
  moves on and records ``timed_out``);
- finished cells are appended to an on-disk
  :class:`~repro.resilience.journal.Journal`, so an interrupted
  campaign **resumes** exactly where it stopped and never re-evaluates
  an unchanged, completed cell;
- the campaign ends with a **degradation report**: which cells
  succeeded, which needed retries, which were abandoned, and the
  (seed, cell key) pair that reproduces each failure.

With ``workers=N`` the grid runs on the **supervised worker pool**
(:mod:`repro.resilience.pool`, the default): workers pull individual
cells from the parent (work stealing), every result is journalled on
arrival, and the supervisor survives worker *process* deaths —
respawning killed workers up to a budget, requeueing their in-flight
cells, quarantining "poison" cells that kill ``poison_threshold``
successive workers (recorded as ``poisoned``), escalating hung workers
soft-cancel → SIGTERM → SIGKILL past the cell deadline, and draining
gracefully on SIGINT/SIGTERM with an exact-resume journal.
``supervise=False`` falls back to the legacy workload-affine shard
pool (one :class:`~concurrent.futures.ProcessPoolExecutor` future per
shard); there, workers journal each cell to a per-worker sidecar so a
mid-shard crash no longer discards the shard's finished cells. In both
modes results flow back through the same journal and telemetry paths —
resume, fault isolation, and the degradation report are unchanged;
only live exception objects cannot cross the process boundary (the
formatted error chains still do).
"""

from __future__ import annotations

import dataclasses
import logging
import random
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.errors import ConfigError, SweepError
from repro.model.evaluate import Evaluation
from repro.resilience.journal import Journal, JournalEntry, cell_key_for
from repro.resilience.retry import NO_RETRY, RetryPolicy
from repro.telemetry.core import (
    NULL_TELEMETRY,
    NullTelemetry,
    RunContext,
    Telemetry,
    get_active,
    new_run_id,
    set_active,
)
from repro.telemetry.progress import ProgressReporter

logger = logging.getLogger("repro.resilience")

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle with experiments
    from repro.designs.base import MemoryDesign
    from repro.experiments.runner import Runner
    from repro.workloads.base import Workload

#: Cell outcome states.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_SKIPPED = "skipped"
STATUS_TIMED_OUT = "timed_out"
STATUS_POISONED = "poisoned"


def format_exception_chain(exc: BaseException) -> str:
    """Compact one-line-per-link rendering of an exception chain.

    Walks ``__cause__``/``__context__`` (newest first) so a journal or
    report shows the whole causal story, e.g.
    ``SweepError: ... <- caused by TraceIntegrityError: ...``.
    """
    links: list[str] = []
    seen: set[int] = set()
    current: BaseException | None = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        links.append(f"{type(current).__name__}: {current}")
        nxt = current.__cause__ or current.__context__
        current = nxt
    return " <- caused by ".join(links)


@dataclass(frozen=True)
class CellOutcome:
    """The recorded fate of one (design, workload) cell.

    Attributes:
        key: journal content hash of the cell.
        design / workload: labels.
        status: one of ``ok`` / ``failed`` / ``skipped`` / ``timed_out``.
        attempts: evaluation attempts consumed (0 for skipped or
            journal-reused cells).
        duration_s: wall-clock spent on this campaign's attempts.
        error: formatted exception chain for failed cells.
        evaluation: model output for ok cells.
        from_journal: True when the result was reused from a resume
            journal rather than evaluated this run.
        exception: the live exception object of the *last* attempt
            (never serialized; lets wrappers re-raise faithfully).
    """

    key: str
    design: str
    workload: str
    status: str
    attempts: int
    duration_s: float
    error: str | None = None
    evaluation: Evaluation | None = None
    from_journal: bool = False
    exception: BaseException | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def ok(self) -> bool:
        """Whether the cell produced a usable evaluation."""
        return self.status == STATUS_OK


@dataclass
class CampaignResult:
    """Everything a finished (possibly degraded) campaign produced.

    Attributes:
        outcomes: one entry per grid cell, in sweep order.
        seed: the retry policy's jitter seed (reproduction handle).
        restarts: replacement workers the supervised pool spawned.
        requeues: in-flight cells recovered from dead workers.
        drained: a SIGINT/SIGTERM drain interrupted the campaign
            (the skipped cells resume exactly from the journal).
    """

    outcomes: list[CellOutcome]
    seed: int = 0
    restarts: int = 0
    requeues: int = 0
    drained: bool = False

    @property
    def evaluations(self) -> list[CellOutcome]:
        """Only the cells that produced results."""
        return [o for o in self.outcomes if o.ok]

    @property
    def failures(self) -> list[CellOutcome]:
        """Cells abandoned as failed, timed out, or poisoned."""
        return [
            o for o in self.outcomes
            if o.status in (STATUS_FAILED, STATUS_TIMED_OUT,
                            STATUS_POISONED)
        ]

    @property
    def retried(self) -> list[CellOutcome]:
        """Cells that needed more than one attempt (any final status)."""
        return [o for o in self.outcomes if o.attempts > 1]

    def counts(self) -> dict[str, int]:
        """Outcome tally by status."""
        tally: dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return tally

    def report(self) -> str:
        """Human-readable degradation report for the campaign."""
        lines = ["campaign degradation report"]
        tally = self.counts()
        total = len(self.outcomes)
        summary = ", ".join(
            f"{tally.get(status, 0)} {status}"
            for status in (STATUS_OK, STATUS_FAILED, STATUS_TIMED_OUT,
                           STATUS_POISONED, STATUS_SKIPPED)
            if tally.get(status, 0)
        )
        lines.append(f"  {total} cells: {summary or 'none'}")
        reused = sum(1 for o in self.outcomes if o.from_journal)
        if reused:
            lines.append(f"  {reused} reused from journal (not re-evaluated)")
        if self.restarts or self.requeues or tally.get(STATUS_POISONED):
            lines.append(
                f"  supervision: {self.restarts} worker restart(s), "
                f"{self.requeues} requeue(s), "
                f"{tally.get(STATUS_POISONED, 0)} poisoned"
            )
        if self.drained:
            lines.append(
                "  campaign drained by signal; skipped cells resume "
                "exactly from the journal"
            )
        if self.retried:
            lines.append("  retried cells:")
            for o in self.retried:
                lines.append(
                    f"    {o.design}/{o.workload}: {o.attempts} attempts "
                    f"-> {o.status}"
                )
        if self.failures:
            lines.append("  abandoned cells (reproduce with seed + key):")
            for o in self.failures:
                lines.append(
                    f"    {o.design}/{o.workload} [{o.status}] "
                    f"seed={self.seed} key={o.key}"
                )
                if o.error:
                    lines.append(f"      {o.error}")
        if not self.failures:
            lines.append("  no cells abandoned")
        return "\n".join(lines)


class SweepExecutor:
    """Runs a (design × workload) grid with fault isolation.

    Args:
        runner: the experiment runner evaluating each cell.
        retry: retry policy for failing cells (default: no retries).
        cell_timeout_s: per-cell wall-clock deadline spanning all of a
            cell's attempts; None disables deadlines (cells then run
            inline, keeping native tracebacks).
        keep_going: when False, the first non-ok cell marks every
            remaining cell ``skipped`` (classic fail-fast); when True
            (default) the campaign always finishes the grid.
        journal: a :class:`Journal`, a path for one, or None to keep
            results in memory only.
        resume: when True (default) completed ``ok`` entries already in
            the journal are reused instead of re-evaluated.
        evaluate: override for the per-cell evaluation callable
            ``(design, workload) -> Evaluation`` — the hook the
            fault-injection harness wraps. Incompatible with
            ``workers > 1`` (the callable cannot cross the process
            boundary).
        sleep: override for backoff sleeping (tests pass a stub).
        telemetry: explicit telemetry instance; None resolves the
            process-wide active instance at :meth:`run` time.
        progress: optional
            :class:`~repro.telemetry.progress.ProgressReporter` for
            live per-cell lines, ETA, and the resume summary.
        workers: processes evaluating cells. 1 (default) runs the grid
            serially in-process; N > 1 runs it on the supervised
            worker pool (give the runner a ``trace_cache_dir`` so
            workers share traced streams).
        supervise: with ``workers > 1``, True (default) uses the
            supervised persistent pool (crash recovery, work stealing,
            graceful drain — see :mod:`repro.resilience.pool`); False
            falls back to the legacy workload-affine shard pool.
        max_worker_restarts: supervised mode's total respawn budget for
            dead workers; past it the pool degrades (remaining cells
            fail with a pool-exhausted error) instead of raising.
        poison_threshold: successive worker deaths one cell may cause
            before the supervisor quarantines it as ``poisoned``.
        worker_faults: a picklable
            :class:`~repro.resilience.faults.FaultInjector` that every
            worker process wraps around its evaluate callable (chaos
            testing for the supervisor itself). Requires
            ``workers > 1``; in-process injection uses ``evaluate=``.
        pool_tuning: supervision timing knobs
            (:class:`~repro.resilience.pool.PoolTuning`); None uses
            production defaults.
        share_prefixes: batch-simulate each workload's designs through
            :meth:`Runner.simulate_designs` before evaluating cells,
            so config-identical lower-level prefixes run once. Applied
            whenever the default evaluation path is in use and no
            per-cell deadline is set (a batched simulation cannot be
            attributed to one cell's deadline); failures fall back to
            per-cell simulation with full fault isolation.
    """

    def __init__(
        self,
        runner: Runner,
        *,
        retry: RetryPolicy | None = None,
        cell_timeout_s: float | None = None,
        keep_going: bool = True,
        journal: Journal | str | Path | None = None,
        resume: bool = True,
        evaluate: Callable[[MemoryDesign, Workload], Evaluation] | None = None,
        sleep: Callable[[float], None] = time.sleep,
        telemetry: Telemetry | NullTelemetry | None = None,
        progress: ProgressReporter | None = None,
        workers: int = 1,
        supervise: bool = True,
        max_worker_restarts: int = 3,
        poison_threshold: int = 2,
        worker_faults=None,
        pool_tuning=None,
        share_prefixes: bool = True,
        share_traces: bool = True,
        profile_hz: float | None = None,
        profile_memory: bool = False,
    ) -> None:
        if cell_timeout_s is not None and cell_timeout_s <= 0:
            raise ConfigError("cell_timeout_s must be positive")
        if profile_hz is not None and profile_hz <= 0:
            raise ConfigError("profile_hz must be positive")
        if workers < 1:
            raise ConfigError("workers must be >= 1")
        if workers > 1 and evaluate is not None:
            raise ConfigError(
                "a custom evaluate callable cannot cross the process "
                "boundary; use workers=1 with evaluation overrides"
            )
        if max_worker_restarts < 0:
            raise ConfigError("max_worker_restarts must be >= 0")
        if poison_threshold < 1:
            raise ConfigError("poison_threshold must be >= 1")
        if worker_faults is not None and workers == 1:
            raise ConfigError(
                "worker_faults targets worker processes; with workers=1 "
                "inject in-process via evaluate=injector.wrap(...)"
            )
        self.runner = runner
        self.retry = retry if retry is not None else NO_RETRY
        self.cell_timeout_s = cell_timeout_s
        self.keep_going = keep_going
        if journal is not None and not isinstance(journal, Journal):
            journal = Journal(journal)
        self.journal = journal
        self.resume = resume
        self._evaluate = evaluate or runner.evaluate
        self._default_evaluate = evaluate is None
        self._sleep = sleep
        self.telemetry = telemetry
        self.progress = progress
        self.workers = workers
        self.supervise = supervise
        self.max_worker_restarts = max_worker_restarts
        self.poison_threshold = poison_threshold
        self.worker_faults = worker_faults
        self.pool_tuning = pool_tuning
        self.share_prefixes = share_prefixes
        self.share_traces = share_traces
        self.profile_hz = profile_hz
        self.profile_memory = profile_memory
        # Populated (and torn down) per run() by _publish_traces: the
        # picklable handles workers use to attach the one shared copy
        # of each workload's trace.
        self._arena_handles: dict | None = None
        # The SupervisedPool currently driving this campaign, exposed
        # for the live observability plane's readiness probe (set for
        # the duration of _run_supervised, None otherwise).
        self._active_pool = None

    def _telemetry(self) -> Telemetry | NullTelemetry:
        """The explicit instance if one was given, else the active one."""
        return self.telemetry if self.telemetry is not None else get_active()

    def pool_snapshot(self) -> dict | None:
        """The running pool's heartbeat snapshot, or None.

        The live observability plane polls this from its server thread
        to answer ``/readyz``: None (serial campaign, pool not running
        yet, or already finished) reads as idle-and-ready; a snapshot
        is judged by :func:`repro.telemetry.live.pool_readiness`.
        """
        pool = self._active_pool
        if pool is None:
            return None
        return pool.heartbeat_snapshot()

    @property
    def engine_class(self) -> str:
        """The result class of every cell in this campaign.

        ``"exact"`` (bit-identical scalar/setpar/auto engines),
        ``"analytic"`` (reuse-profile model), or
        ``"sampled:<warmup>:<window>:<stride>"`` (periodic measured
        windows). Enters each cell's journal key: approximate results
        must never satisfy an exact campaign's resume (or vice versa),
        and sampled results with different specs are likewise mutually
        unsatisfiable.
        """
        return _engine_class_for(
            getattr(self.runner, "engine", "auto"),
            getattr(self.runner, "sample", None),
        )

    # -- single-attempt plumbing ----------------------------------------

    def _attempt(
        self,
        design: MemoryDesign,
        workload: Workload,
        deadline: float | None,
    ) -> tuple[Evaluation | None, BaseException | None, bool]:
        """One evaluation attempt.

        Returns ``(evaluation, exception, timed_out)``. With no
        deadline the call runs inline; with one it runs on a daemon
        thread that is abandoned if the deadline passes.
        """
        if deadline is None:
            try:
                return self._evaluate(design, workload), None, False
            except Exception as exc:
                return None, exc, False

        box: dict[str, object] = {}

        def work() -> None:
            try:
                box["value"] = self._evaluate(design, workload)
            except BaseException as exc:  # delivered to the caller below
                box["error"] = exc

        thread = threading.Thread(
            target=work,
            name=f"sweep-cell-{design.name}-{workload.name}",
            daemon=True,
        )
        thread.start()
        thread.join(max(0.0, deadline - time.monotonic()))
        if thread.is_alive():
            return None, None, True
        error = box.get("error")
        if error is not None:
            if not isinstance(error, Exception):
                raise error  # KeyboardInterrupt & friends propagate
            return None, error, False
        return box["value"], None, False  # type: ignore[return-value]

    def _run_cell(
        self, design: MemoryDesign, workload: Workload, key: str
    ) -> CellOutcome:
        """Evaluate one cell under the retry policy and deadline."""
        started = time.monotonic()
        deadline = (
            started + self.cell_timeout_s
            if self.cell_timeout_s is not None
            else None
        )
        attempts = 0
        last_error: BaseException | None = None
        while attempts < self.retry.max_attempts:
            attempts += 1
            evaluation, error, timed_out = self._attempt(
                design, workload, deadline
            )
            duration = time.monotonic() - started
            if timed_out:
                message = (
                    f"cell exceeded its {self.cell_timeout_s:g}s deadline "
                    f"after {attempts} attempt(s)"
                )
                if last_error is not None:
                    message += (
                        f"; last failure: {format_exception_chain(last_error)}"
                    )
                return CellOutcome(
                    key=key, design=design.name, workload=workload.name,
                    status=STATUS_TIMED_OUT, attempts=attempts,
                    duration_s=duration, error=message,
                    exception=last_error,
                )
            if error is None:
                return CellOutcome(
                    key=key, design=design.name, workload=workload.name,
                    status=STATUS_OK, attempts=attempts, duration_s=duration,
                    evaluation=evaluation,
                )
            if last_error is not None and error.__context__ is None:
                # Thread-run attempts lose implicit chaining; restore it
                # so the recorded chain spans all attempts.
                error.__context__ = last_error
            last_error = error
            if attempts < self.retry.max_attempts:
                delay = self.retry.delay_s(key, attempts)
                if deadline is not None and (
                    time.monotonic() + delay >= deadline
                ):
                    # No room left for another attempt; report the
                    # failure rather than sleeping through the deadline.
                    break
                self._sleep(delay)
        assert last_error is not None
        return CellOutcome(
            key=key, design=design.name, workload=workload.name,
            status=STATUS_FAILED, attempts=attempts,
            duration_s=time.monotonic() - started,
            error=format_exception_chain(last_error),
            exception=last_error,
        )

    # -- campaign -------------------------------------------------------

    def run(
        self,
        designs: Iterable[MemoryDesign],
        workloads: Sequence[Workload],
    ) -> CampaignResult:
        """Run the full grid; never raises for per-cell failures."""
        designs = list(designs)
        if not workloads:
            raise ConfigError("a sweep needs at least one workload")
        if not designs:
            raise ConfigError("a sweep needs at least one design")

        journalled: dict[str, JournalEntry] = {}
        if self.journal is not None and self.resume:
            self._absorb_sidecars()
            journalled = self.journal.load()

        tel = self._telemetry()
        # Every campaign gets a run-scoped correlation id: recording
        # telemetry without one would leave the worker directories and
        # journal entries unjoinable afterwards. A caller-provided
        # context (e.g. the CLI's) wins; resumes therefore reuse the
        # caller's id or mint a fresh one per resumed execution.
        if isinstance(tel, Telemetry) and tel.run_context is None:
            tel.run_context = RunContext(new_run_id())
        # Programmatic profile_hz without a pre-enabled session: turn
        # the parent profiler on here so the serial path is covered too
        # (the CLI enables it earlier; enable_profiling is idempotent).
        if self.profile_hz is not None and isinstance(tel, Telemetry):
            tel.enable_profiling(self.profile_hz, memory=self.profile_memory)
        run_context = getattr(tel, "run_context", None)
        run_id = run_context.run_id if run_context is not None else None
        progress = self.progress
        drain = getattr(self.runner, "drain", False)
        grid = [
            (design, workload,
             cell_key_for(design, workload, self.runner.scale,
                          self.runner.seed, drain, self.engine_class))
            for design in designs
            for workload in workloads
        ]
        total = len(grid)
        reused = sum(
            1 for _, _, key in grid
            if key in journalled and journalled[key].status == STATUS_OK
        )
        abandoned = sum(
            1 for _, _, key in grid
            if key in journalled and journalled[key].status != STATUS_OK
        )
        if journalled:
            if progress is not None:
                progress.resume_summary(
                    reused=reused, to_run=total - reused,
                    abandoned=abandoned,
                )
            tel.event(
                "sweep_resume", cells=total, reused=reused,
                to_run=total - reused, abandoned=abandoned,
            )
        tel.event(
            "sweep_started", designs=len(designs),
            workloads=len(workloads), cells=total,
        )
        pending = tel.gauge("repro_sweep_cells_pending")
        pending.set(total)

        if self.workers > 1:
            arena = self._publish_traces(grid, journalled, tel)
            try:
                if self.supervise:
                    result = self._run_supervised(
                        grid, journalled, tel, progress, pending, run_id
                    )
                else:
                    result = self._run_parallel(
                        grid, journalled, tel, progress, pending, run_id
                    )
            finally:
                self._arena_handles = None
                if arena is not None:
                    arena.close()
            tel.event("sweep_finished", cells=total, **result.counts())
            tel.flush()
            return result

        self._presim_workloads(grid, journalled, tel)

        outcomes: list[CellOutcome] = []
        abort = False
        for design, workload, key in grid:
            if abort:
                outcome = CellOutcome(
                    key=key, design=design.name, workload=workload.name,
                    status=STATUS_SKIPPED, attempts=0, duration_s=0.0,
                    error="skipped: an earlier cell failed and "
                          "keep_going is off",
                )
                outcomes.append(outcome)
                self._record_outcome(tel, progress, pending, outcome)
                continue
            prior = journalled.get(key)
            if prior is not None and prior.status == STATUS_OK:
                outcome = CellOutcome(
                    key=key, design=design.name,
                    workload=workload.name, status=STATUS_OK,
                    attempts=0, duration_s=0.0,
                    evaluation=prior.load_evaluation(),
                    from_journal=True,
                )
                outcomes.append(outcome)
                self._record_outcome(tel, progress, pending, outcome)
                continue
            if progress is not None:
                progress.cell_started(design.name, workload.name)
            with tel.cell_scope(key), tel.span(
                "sweep.cell", design=design.name, workload=workload.name
            ):
                outcome = self._run_cell(design, workload, key)
            outcomes.append(outcome)
            self._record_outcome(tel, progress, pending, outcome)
            if self.journal is not None:
                self.journal.append(
                    JournalEntry(
                        key=key, design=design.name,
                        workload=workload.name,
                        scale=self.runner.scale, seed=self.runner.seed,
                        status=outcome.status, attempts=outcome.attempts,
                        duration_s=outcome.duration_s,
                        error=outcome.error,
                        evaluation=(
                            None if outcome.evaluation is None
                            else dataclasses.asdict(outcome.evaluation)
                        ),
                        run_id=run_id,
                        engine_class=self.engine_class,
                    )
                )
            if not outcome.ok and not self.keep_going:
                abort = True
        result = CampaignResult(outcomes=outcomes, seed=self.retry.seed)
        tel.event("sweep_finished", cells=total, **result.counts())
        tel.flush()
        return result

    def _record_outcome(
        self,
        tel: Telemetry | NullTelemetry,
        progress: ProgressReporter | None,
        pending,
        outcome: CellOutcome,
    ) -> None:
        """Emit the per-cell telemetry + progress line for one outcome."""
        pending.dec()
        tel.counter(
            "repro_sweep_cells_total", status=outcome.status
        ).inc()
        if outcome.from_journal:
            tel.counter("repro_sweep_cells_reused_total").inc()
        if outcome.attempts > 1:
            tel.counter("repro_sweep_retries_total").inc(
                outcome.attempts - 1
            )
        tel.event(
            "cell_finished", cell=outcome.key, design=outcome.design,
            workload=outcome.workload, status=outcome.status,
            attempts=outcome.attempts, duration_s=outcome.duration_s,
            from_journal=outcome.from_journal,
        )
        if progress is not None:
            progress.cell_finished(
                outcome.design, outcome.workload, outcome.status,
                outcome.duration_s, from_journal=outcome.from_journal,
            )

    def _journal_entry(
        self, outcome: CellOutcome, evaluation: dict | None,
        run_id: str | None,
    ) -> JournalEntry:
        """The journal line for one finished cell."""
        return JournalEntry(
            key=outcome.key, design=outcome.design,
            workload=outcome.workload,
            scale=self.runner.scale, seed=self.runner.seed,
            status=outcome.status, attempts=outcome.attempts,
            duration_s=outcome.duration_s, error=outcome.error,
            evaluation=evaluation, run_id=run_id,
            engine_class=self.engine_class,
        )

    def _absorb_sidecars(self) -> None:
        """Fold stale worker sidecar journals into the main journal.

        Legacy shard workers journal per cell to
        ``<journal>.worker-K`` sidecars. Normally the parent merges
        them in-line and deletes them; sidecars still on disk mean the
        *parent* died mid-campaign, and the cells they hold must not
        re-run on resume.
        """
        if self.journal is None:
            return
        pattern = f"{self.journal.path.name}.worker-*"
        for path in sorted(self.journal.path.parent.glob(pattern)):
            try:
                entries = Journal(path).entries()
            except SweepError:
                logger.warning(
                    "ignoring unreadable sidecar journal %s", path
                )
                entries = []
            for entry in entries:
                self.journal.append(entry)
            path.unlink(missing_ok=True)

    # -- supervised campaign --------------------------------------------

    def _run_supervised(
        self, grid, journalled, tel, progress, pending, run_id=None
    ) -> CampaignResult:
        """Run the grid on the supervised persistent worker pool.

        Cells are dispatched individually (work stealing); every result
        is journalled in the parent as it arrives — before the next
        cell is dispatched to that worker — so a crash at any point
        leaves an exact-resume journal. Worker deaths degrade the
        campaign (requeue / poison / pool-exhausted failures) but never
        abort it.
        """
        from repro.resilience.pool import SupervisedPool

        results: dict[str, CellOutcome] = {}
        run_cells = []
        for design, workload, key in grid:
            prior = journalled.get(key)
            if prior is not None and prior.status == STATUS_OK:
                outcome = CellOutcome(
                    key=key, design=design.name, workload=workload.name,
                    status=STATUS_OK, attempts=0, duration_s=0.0,
                    evaluation=prior.load_evaluation(), from_journal=True,
                )
                results[key] = outcome
                self._record_outcome(tel, progress, pending, outcome)
            else:
                run_cells.append((design, workload, key))

        tel.event(
            "sweep_supervised", workers=self.workers,
            cells=len(run_cells),
            max_worker_restarts=self.max_worker_restarts,
            poison_threshold=self.poison_threshold,
        )

        def deliver(record: dict) -> None:
            outcome = _outcome_from_record(record)
            results[outcome.key] = outcome
            self._record_outcome(tel, progress, pending, outcome)
            if self.journal is not None:
                self.journal.append(
                    self._journal_entry(
                        outcome, record.get("evaluation"), run_id
                    )
                )

        pool = SupervisedPool(
            workers=self.workers,
            runner_args=self._runner_args(),
            retry=self.retry,
            cell_timeout_s=self.cell_timeout_s,
            max_worker_restarts=self.max_worker_restarts,
            poison_threshold=self.poison_threshold,
            telemetry=tel,
            telemetry_root=(
                tel.directory if isinstance(tel, Telemetry) else None
            ),
            run_id=run_id,
            worker_faults=self.worker_faults,
            tuning=self.pool_tuning,
            profile_hz=self.profile_hz,
            profile_memory=self.profile_memory,
        )
        self._active_pool = pool
        try:
            stats, leftover = pool.run(
                run_cells, keep_going=self.keep_going, on_result=deliver
            )
        finally:
            self._active_pool = None

        outcomes: list[CellOutcome] = []
        for design, workload, key in grid:
            outcome = results.get(key)
            if outcome is None:
                if stats.drained:
                    error = (
                        "skipped: campaign drained by signal before "
                        "this cell ran (resume with the journal)"
                    )
                elif stats.exhausted:
                    error = (
                        f"skipped: worker pool exhausted after "
                        f"{stats.respawns} respawn(s)"
                    )
                else:
                    error = ("skipped: an earlier cell failed and "
                             "keep_going is off")
                outcome = CellOutcome(
                    key=key, design=design.name, workload=workload.name,
                    status=STATUS_SKIPPED, attempts=0, duration_s=0.0,
                    error=error,
                )
                self._record_outcome(tel, progress, pending, outcome)
            outcomes.append(outcome)
        return CampaignResult(
            outcomes=outcomes, seed=self.retry.seed,
            restarts=stats.respawns, requeues=stats.requeues,
            drained=stats.drained,
        )

    def _runner_args(self) -> dict:
        """The picklable kwargs rebuilding the runner in a worker.

        Includes the published trace-arena handles when a parallel run
        has them: workers attach each workload's single shared trace
        copy instead of re-tracing or re-loading privately.
        """
        return {
            "scale": self.runner.scale,
            "seed": self.runner.seed,
            "reference": getattr(self.runner, "reference", None),
            "local_factor": getattr(self.runner, "local_factor", 0.0),
            "trace_cache_dir": getattr(
                self.runner, "trace_cache_dir", None
            ),
            "drain": getattr(self.runner, "drain", False),
            "engine": getattr(self.runner, "engine", "auto"),
            "sample": getattr(self.runner, "sample", None),
            "trace_arena": self._arena_handles,
        }

    # -- shared trace arena ---------------------------------------------

    def _publish_traces(self, grid, journalled, tel):
        """Trace each to-run workload once and publish it for workers.

        Returns the owning :class:`~repro.trace.arena.TraceArena` (the
        caller must close it after the campaign drains) or ``None``
        when sharing is off or nothing was published. Best effort: a
        failure to trace or publish any workload abandons the arena and
        the campaign falls back to per-worker tracing — the arena is an
        optimization, never a correctness dependency.
        """
        self._arena_handles = None
        if not (self.share_traces and hasattr(self.runner, "trace_only")):
            return None
        todo: dict[str, Workload] = {}
        for design, workload, key in grid:
            prior = journalled.get(key)
            if prior is not None and prior.status == STATUS_OK:
                continue
            todo.setdefault(workload.name, workload)
        if not todo:
            return None
        from repro.trace.arena import TraceArena

        arena = TraceArena()
        try:
            for workload in todo.values():
                with tel.span(
                    "sweep.publish_trace", workload=workload.name
                ):
                    result, cached = self.runner.trace_only(workload)
                    handle = arena.publish(
                        workload.name, result.stream, result.regions
                    )
                tel.event(
                    "trace_published", workload=workload.name,
                    kind=handle.kind, events=handle.events,
                    cached=cached,
                )
        except Exception as exc:
            tel.event(
                "trace_publish_failed",
                error=format_exception_chain(exc),
            )
            logger.warning(
                "trace arena publishing failed (%s); workers fall back "
                "to private trace loading",
                format_exception_chain(exc),
            )
            arena.close()
            return None
        self._arena_handles = arena.handles
        return arena

    # -- shared-prefix batch simulation ---------------------------------

    def _presim_workloads(self, grid, journalled, tel) -> None:
        """Batch-simulate each workload's to-run designs (best effort).

        A failure here is swallowed: the affected cells simply simulate
        individually inside their own fault-isolated evaluation, where
        errors are retried, journalled, and reported as usual.
        """
        if not (
            self.share_prefixes
            and self._default_evaluate
            and self.cell_timeout_s is None
            and hasattr(self.runner, "simulate_designs")
        ):
            return
        by_workload: dict[str, tuple] = {}
        for design, workload, key in grid:
            prior = journalled.get(key)
            if prior is not None and prior.status == STATUS_OK:
                continue
            entry = by_workload.setdefault(workload.name, (workload, []))
            entry[1].append(design)
        for workload, batch in by_workload.values():
            if len(batch) < 2:
                continue
            try:
                with tel.span(
                    "sweep.plan_sim", workload=workload.name,
                    designs=len(batch),
                ):
                    self.runner.simulate_designs(batch, workload)
            except Exception as exc:
                tel.event(
                    "plan_sim_failed", workload=workload.name,
                    error=format_exception_chain(exc),
                )
                logger.warning(
                    "shared-prefix simulation failed for %s (%s); cells "
                    "fall back to per-cell simulation",
                    workload.name, format_exception_chain(exc),
                )

    # -- parallel campaign ----------------------------------------------

    def _shards(self, cells: list) -> list[tuple]:
        """Workload-affine shards in deterministic seeded order.

        Cells group by workload so each worker traces and prepares a
        workload at most once (and shared-prefix batching stays intact
        within the shard). When there are fewer workloads than workers,
        the largest shards split — duplicated workload preparation in
        exchange for occupancy, a good trade once the trace cache is
        shared on disk.
        """
        if not cells:
            return []
        by_workload: dict[str, list] = {}
        order: list[str] = []
        for cell in cells:
            name = cell[1].name
            if name not in by_workload:
                by_workload[name] = []
                order.append(name)
            by_workload[name].append(cell)
        shards = [by_workload[name] for name in order]
        while len(shards) < self.workers:
            largest = max(shards, key=len)
            if len(largest) < 2:
                break
            shards.remove(largest)
            half = len(largest) // 2
            shards.extend([largest[:half], largest[half:]])
        rng = random.Random(self.retry.seed)
        rng.shuffle(shards)
        return shards

    def _recover_shard_records(
        self, payload: dict, exc: BaseException
    ) -> list[dict]:
        """Salvage a crashed shard from its per-cell sidecar journal.

        The worker journals each finished cell to its sidecar before
        moving on, so a mid-shard crash (e.g. SIGKILL raising
        ``BrokenProcessPool``) loses only the in-flight cell; every
        completed cell's record is rebuilt from the sidecar and only
        the rest are marked failed.
        """
        recovered: dict[str, JournalEntry] = {}
        sidecar = payload.get("journal_sidecar")
        if sidecar and Path(sidecar).exists():
            try:
                recovered = Journal(sidecar).load()
            except SweepError:
                logger.warning(
                    "ignoring unreadable sidecar journal %s", sidecar
                )
        records = []
        for design, key in payload["cells"]:
            entry = recovered.get(key)
            if entry is not None:
                records.append({
                    "key": entry.key, "design": entry.design,
                    "workload": entry.workload, "status": entry.status,
                    "attempts": entry.attempts,
                    "duration_s": entry.duration_s,
                    "error": entry.error,
                    "evaluation": entry.evaluation,
                })
            else:
                records.append({
                    "key": key, "design": design.name,
                    "workload": payload["workload"].name,
                    "status": STATUS_FAILED, "attempts": 1,
                    "duration_s": 0.0,
                    "error": "worker process failed: "
                    + format_exception_chain(exc),
                    "evaluation": None,
                })
        return records

    def _run_parallel(
        self, grid, journalled, tel, progress, pending, run_id=None
    ) -> CampaignResult:
        """Fan the grid out over a process pool, shard by shard."""
        results: dict[str, CellOutcome] = {}
        run_cells = []
        for design, workload, key in grid:
            prior = journalled.get(key)
            if prior is not None and prior.status == STATUS_OK:
                outcome = CellOutcome(
                    key=key, design=design.name, workload=workload.name,
                    status=STATUS_OK, attempts=0, duration_s=0.0,
                    evaluation=prior.load_evaluation(), from_journal=True,
                )
                results[key] = outcome
                self._record_outcome(tel, progress, pending, outcome)
            else:
                run_cells.append((design, workload, key))

        shards = self._shards(run_cells)
        telemetry_root = (
            tel.directory if isinstance(tel, Telemetry) else None
        )
        payloads = []
        for index, shard in enumerate(shards):
            workload = shard[0][1]
            worker_dir = (
                str(telemetry_root / f"worker-{index}")
                if telemetry_root is not None
                else None
            )
            payloads.append({
                "worker_index": index,
                "run_id": run_id,
                "runner_args": self._runner_args(),
                "retry": self.retry,
                "cell_timeout_s": self.cell_timeout_s,
                "share_prefixes": self.share_prefixes,
                "telemetry_dir": worker_dir,
                "workload": workload,
                "cells": [(design, key) for design, _, key in shard],
                "journal_sidecar": (
                    f"{self.journal.path}.worker-{index}"
                    if self.journal is not None
                    else None
                ),
                "worker_faults": self.worker_faults,
                "profile_hz": self.profile_hz,
                "profile_memory": self.profile_memory,
            })
        tel.event(
            "sweep_parallel", workers=self.workers, shards=len(payloads),
            cells=len(run_cells),
        )

        abort = False
        if not payloads:
            return CampaignResult(
                outcomes=[results[key] for _, _, key in grid],
                seed=self.retry.seed,
            )
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {
                pool.submit(_run_shard, payload): payload
                for payload in payloads
            }
            for future in as_completed(futures):
                payload = futures[future]
                if future.cancelled():
                    continue
                error: BaseException | None = None
                try:
                    records = future.result()
                except Exception as exc:
                    error = exc
                    records = self._recover_shard_records(payload, exc)
                shard_failed = False
                for record in records:
                    outcome = _outcome_from_record(record)
                    results[outcome.key] = outcome
                    self._record_outcome(tel, progress, pending, outcome)
                    if self.journal is not None:
                        self.journal.append(
                            JournalEntry(
                                key=outcome.key, design=outcome.design,
                                workload=outcome.workload,
                                scale=self.runner.scale,
                                seed=self.runner.seed,
                                status=outcome.status,
                                attempts=outcome.attempts,
                                duration_s=outcome.duration_s,
                                error=outcome.error,
                                evaluation=record["evaluation"],
                                run_id=run_id,
                                engine_class=self.engine_class,
                            )
                        )
                    if not outcome.ok:
                        shard_failed = True
                tel.event(
                    "worker_finished",
                    worker=payload["worker_index"],
                    workload=payload["workload"].name,
                    cells=len(records), crashed=error is not None,
                )
                if shard_failed and not self.keep_going and not abort:
                    abort = True
                    for other in futures:
                        other.cancel()

        # Every shard's results are now merged into the main journal;
        # the worker sidecars are redundant (stale ones left by a dead
        # *parent* are absorbed at the next run's start instead).
        for payload in payloads:
            sidecar = payload.get("journal_sidecar")
            if sidecar:
                Path(sidecar).unlink(missing_ok=True)

        outcomes: list[CellOutcome] = []
        for design, workload, key in grid:
            outcome = results.get(key)
            if outcome is None:
                outcome = CellOutcome(
                    key=key, design=design.name, workload=workload.name,
                    status=STATUS_SKIPPED, attempts=0, duration_s=0.0,
                    error="skipped: an earlier cell failed and "
                          "keep_going is off",
                )
                self._record_outcome(tel, progress, pending, outcome)
            outcomes.append(outcome)
        return CampaignResult(outcomes=outcomes, seed=self.retry.seed)


def _engine_class_for(engine: str, sample) -> str:
    """The journal engine class for an engine/sample combination."""
    if engine == "analytic":
        return "analytic"
    if sample is not None:
        return f"sampled:{sample.key}"
    return "exact"


def _outcome_from_record(record: dict) -> CellOutcome:
    """Rebuild a :class:`CellOutcome` from a worker's serialized record."""
    evaluation = record.get("evaluation")
    if evaluation is not None:
        evaluation = Evaluation(**evaluation)
    return CellOutcome(
        key=record["key"], design=record["design"],
        workload=record["workload"], status=record["status"],
        attempts=record["attempts"], duration_s=record["duration_s"],
        error=record.get("error"), evaluation=evaluation,
    )


def _run_shard(payload: dict) -> list[dict]:
    """Evaluate one workload-affine shard in a worker process.

    Builds a fresh :class:`~repro.experiments.runner.Runner` from the
    parent's parameters (workers share the on-disk trace cache, not
    in-memory state), batch-simulates the shard's designs with shared
    prefixes, then runs each cell under the parent's retry policy and
    deadline with full fault isolation. Returns JSON-serializable
    records; live exception objects stay in the worker.
    """
    from repro.experiments.runner import Runner

    worker_context = (
        RunContext(payload["run_id"], f"worker-{payload['worker_index']}")
        if payload.get("run_id")
        else None
    )
    telemetry: Telemetry | NullTelemetry = (
        Telemetry(payload["telemetry_dir"], run_context=worker_context)
        if payload["telemetry_dir"]
        else NULL_TELEMETRY
    )
    # The fork start method inherits the parent's active telemetry,
    # which must not be shared across processes (torn event lines,
    # clobbered snapshots); each worker writes its own directory or
    # nothing.
    set_active(telemetry)
    if payload.get("profile_hz") and payload["telemetry_dir"]:
        telemetry.enable_profiling(
            payload["profile_hz"],
            memory=bool(payload.get("profile_memory")),
        )
    try:
        runner = Runner(telemetry=telemetry, **payload["runner_args"])
        evaluate = None
        faults = payload.get("worker_faults")
        if faults is not None:
            evaluate = faults.wrap(runner.evaluate)
        child = SweepExecutor(
            runner,
            retry=payload["retry"],
            cell_timeout_s=payload["cell_timeout_s"],
            keep_going=True,
            journal=None,
            resume=False,
            evaluate=evaluate,
            telemetry=telemetry,
            share_prefixes=payload["share_prefixes"],
        )
        sidecar = (
            Journal(payload["journal_sidecar"])
            if payload.get("journal_sidecar")
            else None
        )
        engine_class = _engine_class_for(
            payload["runner_args"].get("engine", "auto"),
            payload["runner_args"].get("sample"),
        )
        workload = payload["workload"]
        cells = payload["cells"]
        if payload["share_prefixes"] and payload["cell_timeout_s"] is None:
            try:
                runner.simulate_designs(
                    [design for design, _ in cells], workload
                )
            except Exception:
                # Cells fall back to per-cell simulation below, where
                # failures are retried and recorded properly.
                pass
        records = []
        for design, key in cells:
            with telemetry.cell_scope(key), telemetry.span(
                "sweep.cell", design=design.name, workload=workload.name
            ):
                outcome = child._run_cell(design, workload, key)
            evaluation = (
                None if outcome.evaluation is None
                else dataclasses.asdict(outcome.evaluation)
            )
            if sidecar is not None:
                # Journalled before the next cell starts: a mid-shard
                # crash then loses only the in-flight cell, and the
                # parent (or a resumed campaign) recovers the rest.
                sidecar.append(
                    JournalEntry(
                        key=outcome.key, design=outcome.design,
                        workload=outcome.workload,
                        scale=payload["runner_args"]["scale"],
                        seed=payload["runner_args"]["seed"],
                        status=outcome.status,
                        attempts=outcome.attempts,
                        duration_s=outcome.duration_s,
                        error=outcome.error,
                        evaluation=evaluation,
                        run_id=payload.get("run_id"),
                        engine_class=engine_class,
                    )
                )
                telemetry.flush()
            records.append({
                "key": outcome.key,
                "design": outcome.design,
                "workload": outcome.workload,
                "status": outcome.status,
                "attempts": outcome.attempts,
                "duration_s": outcome.duration_s,
                "error": outcome.error,
                "evaluation": evaluation,
            })
        return records
    finally:
        set_active(None)
        telemetry.close()

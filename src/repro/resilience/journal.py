"""On-disk result journal for resumable sweep campaigns.

One JSON object per line, one line per finished cell, appended
atomically (the whole file is rewritten to a temp file and swapped in
with ``os.replace``, so a crash mid-append leaves the previous journal
intact — at worst one torn trailing line, which loading tolerates).

Cells are keyed by a SHA-256 content hash of (design name, design
simulation key, workload name, scale, seed): if any of those change,
the key changes and the cell is re-evaluated; if none change, a
resumed campaign reuses the journalled result without re-running the
workload. Every line carries a schema version so an old journal is
rejected loudly rather than misread.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import SweepError
from repro.model.evaluate import Evaluation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.designs.base import MemoryDesign
    from repro.workloads.base import Workload

#: Journal line schema; bump on incompatible changes.
SCHEMA_VERSION = 1


def cell_key(
    design_name: str,
    sim_key: str,
    workload_name: str,
    scale: float,
    seed: int,
    drain: bool = False,
    engine_class: str = "exact",
) -> str:
    """Content hash identifying one (design, workload, scale, seed) cell.

    ``drain`` and a non-default ``engine_class`` enter the hash only
    when set, so journals written before those dimensions existed keep
    their keys and resume cleanly. The *exact* engines (scalar/setpar/
    auto) are bit-identical and deliberately share one engine class —
    but ``"analytic"`` results are approximate, so analytic cells hash
    differently and can never satisfy (or be satisfied by) an exact
    campaign on resume.
    """
    payload = {
        "design": design_name,
        "sim_key": sim_key,
        "workload": workload_name,
        "scale": scale,
        "seed": seed,
    }
    if drain:
        payload["drain"] = True
    if engine_class != "exact":
        payload["engine_class"] = engine_class
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:24]


def cell_key_for(
    design: "MemoryDesign",
    workload: "Workload",
    scale: float,
    seed: int,
    drain: bool = False,
    engine_class: str = "exact",
) -> str:
    """:func:`cell_key` from live design/workload objects."""
    return cell_key(
        design.name, design.sim_key(), workload.name, scale, seed, drain,
        engine_class,
    )


@dataclass(frozen=True)
class JournalEntry:
    """One journalled cell outcome.

    Attributes:
        key: content hash (see :func:`cell_key`).
        design / workload: labels, for humans and reports.
        scale / seed: the runner parameters the key was derived from.
        status: ``ok`` / ``failed`` / ``skipped`` / ``timed_out``.
        attempts: evaluation attempts consumed.
        duration_s: wall-clock spent on the cell (all attempts).
        error: formatted exception chain for non-ok cells, else None.
        evaluation: the serialized :class:`Evaluation` for ok cells.
        run_id: telemetry run that produced the entry (None for
            entries written before run correlation existed, or with
            telemetry disabled) — joins the journal to the run's
            telemetry tree. Optional with a default so pre-observatory
            journals keep loading under the same schema version.
        engine_class: ``"exact"`` (bit-exact simulation — scalar,
            setpar or auto) or ``"analytic"`` (reuse-profile model).
            Serialized only when not ``"exact"`` so pre-analytic
            journals keep loading and byte-stable.
    """

    key: str
    design: str
    workload: str
    scale: float
    seed: int
    status: str
    attempts: int
    duration_s: float
    error: str | None = None
    evaluation: dict | None = None
    run_id: str | None = None
    engine_class: str = "exact"

    def to_json(self) -> str:
        """The journal line (no trailing newline)."""
        payload = {"schema": SCHEMA_VERSION, **dataclasses.asdict(self)}
        if payload.get("engine_class") == "exact":
            del payload["engine_class"]
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "JournalEntry":
        """Parse one journal line.

        Raises:
            SweepError: malformed JSON or unsupported schema.
        """
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SweepError(f"malformed journal line: {line[:80]!r}") from exc
        if not isinstance(payload, dict):
            raise SweepError(f"malformed journal line: {line[:80]!r}")
        schema = payload.pop("schema", None)
        if schema != SCHEMA_VERSION:
            raise SweepError(
                f"unsupported journal schema {schema!r} (want "
                f"{SCHEMA_VERSION}); delete the journal to restart"
            )
        try:
            return cls(**payload)
        except TypeError as exc:
            raise SweepError(f"malformed journal entry: {exc}") from exc

    def load_evaluation(self) -> Evaluation | None:
        """Reconstruct the :class:`Evaluation` of an ok cell."""
        if self.evaluation is None:
            return None
        try:
            return Evaluation(**self.evaluation)
        except TypeError as exc:
            raise SweepError(
                f"journal entry for {self.design}/{self.workload} holds an "
                f"incompatible evaluation record: {exc}"
            ) from exc


class Journal:
    """Append-only JSON-lines journal of cell outcomes.

    Args:
        path: journal file; created (with parents) on first append.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lines: list[str] | None = None

    def exists(self) -> bool:
        """Whether the journal file is already on disk."""
        return self.path.exists()

    def _read_lines(self) -> list[str]:
        if self._lines is not None:
            return self._lines
        if not self.path.exists():
            self._lines = []
            return self._lines
        raw = self.path.read_text().splitlines()
        lines: list[str] = []
        for index, line in enumerate(raw):
            if not line.strip():
                continue
            try:
                JournalEntry.from_json(line)
            except SweepError:
                if index == len(raw) - 1:
                    # Torn trailing line from an interrupted append:
                    # drop it; the cell simply re-runs on resume.
                    continue
                raise SweepError(
                    f"corrupt journal {self.path} at line {index + 1}; "
                    f"delete it to restart the campaign"
                )
            lines.append(line)
        self._lines = lines
        return lines

    def entries(self) -> list[JournalEntry]:
        """Every valid entry, in append order."""
        return [JournalEntry.from_json(line) for line in self._read_lines()]

    def load(self) -> dict[str, JournalEntry]:
        """Latest entry per cell key (later lines win)."""
        return {entry.key: entry for entry in self.entries()}

    def append(self, entry: JournalEntry) -> None:
        """Durably append one entry (atomic whole-file swap)."""
        lines = self._read_lines() + [entry.to_json()]
        payload = "".join(line + "\n" for line in lines).encode()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=f".{self.path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._lines = lines

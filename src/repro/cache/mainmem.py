"""Terminal main-memory device.

A :class:`MainMemory` ends a hierarchy chain: it absorbs every request
(all "hits") and counts reads (fills from the last cache) and writes
(dirty-line writebacks) with their transferred bit volumes — the inputs
to the NVM performance/energy asymmetry model.
"""

from __future__ import annotations

from repro.cache.stats import LevelStats
from repro.trace.events import AccessBatch


class MainMemory:
    """Request-counting terminal memory device."""

    def __init__(self, name: str = "MEM") -> None:
        self.stats = LevelStats(name=name)

    @property
    def name(self) -> str:
        """Device label."""
        return self.stats.name

    def process(self, batch: AccessBatch) -> AccessBatch:
        """Absorb a request batch; returns an empty downstream batch."""
        n = len(batch)
        if n == 0:
            return AccessBatch.empty()
        stats = self.stats
        n_loads, n_stores = stats.account_batch(batch)
        # Memory always "hits".
        stats.load_hits += n_loads
        stats.store_hits += n_stores
        return AccessBatch.empty()

    def reset(self) -> None:
        """Zero the counters."""
        self.stats = LevelStats(name=self.stats.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MainMemory({self.stats.name!r})"

"""Cache-level configuration."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.units import format_bytes, is_power_of_two


@dataclass(frozen=True)
class CacheConfig:
    """Configuration of one cache level.

    Attributes:
        name: level label ("L1", "L2", "L3", "eDRAM", "DRAM$", ...).
        capacity: total capacity in bytes.
        associativity: number of ways per set.
        block_size: allocation/fill granularity in bytes — a cache
            line for the SRAM levels, a *page* for the eDRAM/HMC and
            DRAM-cache levels (the paper's page-size sweep parameter).
        sector_size: dirty-tracking granularity. The paper's simulator
            tracks dirty *cache lines* even inside page-granularity
            levels, so evicting a dirty page writes back only its dirty
            64 B sectors, not the whole page. ``None`` (the default)
            tracks dirty state at block granularity — correct for the
            SRAM levels where line == block.
        hashed_sets: use multiplicative-hash set indexing instead of
            address-bit slicing. Memory-side caches (eDRAM/HMC L4, the
            DRAM page cache) hash their index in real controllers to
            spread strided traffic; at simulation scale it also keeps
            behaviour faithful when capacity scaling collapses the set
            count.
        policy: replacement policy name ("lru", "fifo", "random").
        engine: simulation engine for this level. ``"auto"`` (the
            default) picks the set-parallel vectorized engine for
            non-sectored LRU/FIFO levels and the scalar loop otherwise;
            ``"scalar"`` forces the reference Python loop; ``"setpar"``
            asserts the vectorized engine (invalid for levels it cannot
            simulate). Engines are bit-identical — the knob only affects
            speed, never statistics or emitted requests.
    """

    name: str
    capacity: int
    associativity: int
    block_size: int
    sector_size: int | None = None
    hashed_sets: bool = False
    policy: str = "lru"
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigError(f"{self.name}: capacity must be positive")
        if self.block_size <= 0 or not is_power_of_two(self.block_size):
            raise ConfigError(
                f"{self.name}: block_size must be a positive power of two, "
                f"got {self.block_size}"
            )
        if self.sector_size is not None:
            if not is_power_of_two(self.sector_size):
                raise ConfigError(
                    f"{self.name}: sector_size must be a power of two"
                )
            if self.sector_size > self.block_size:
                raise ConfigError(
                    f"{self.name}: sector_size must not exceed block_size"
                )
        if self.associativity <= 0:
            raise ConfigError(f"{self.name}: associativity must be positive")
        if self.capacity % (self.block_size * self.associativity) != 0:
            raise ConfigError(
                f"{self.name}: capacity {self.capacity} is not divisible by "
                f"block_size*associativity = {self.block_size * self.associativity}"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigError(
                f"{self.name}: number of sets ({self.num_sets}) must be a "
                "power of two for address-bit set indexing"
            )
        if self.policy not in ("lru", "fifo", "random"):
            raise ConfigError(f"{self.name}: unknown replacement policy {self.policy!r}")
        if self.engine not in ("auto", "scalar", "setpar"):
            raise ConfigError(
                f"{self.name}: unknown engine {self.engine!r} "
                "(expected 'auto', 'scalar' or 'setpar')"
            )
        if self.engine == "setpar" and not supports_setpar(self):
            raise ConfigError(
                f"{self.name}: engine='setpar' requires a non-sectored LRU "
                "or FIFO level (use engine='auto' to fall back where "
                "unsupported)"
            )

    @property
    def num_blocks(self) -> int:
        """Total number of blocks the cache can hold."""
        return self.capacity // self.block_size

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.capacity // (self.block_size * self.associativity)

    def scaled(self, factor: float, min_capacity: int | None = None) -> "CacheConfig":
        """A copy with capacity scaled by ``factor``.

        Capacity is rounded to the nearest power-of-two multiple of
        ``block_size * associativity`` so the result stays valid; it
        never drops below one block per way (or ``min_capacity``).
        """
        if factor <= 0:
            raise ConfigError("scale factor must be positive")
        unit = self.block_size * self.associativity
        floor = max(unit, min_capacity or 0)
        target = max(self.capacity * factor, floor)
        # Round the per-way set count to the nearest power of two.
        sets = max(1, round(target / unit))
        sets = 1 << max(0, (sets - 1).bit_length())
        # Prefer the closer of the two bracketing powers of two.
        if sets > 1 and abs(sets // 2 * unit - target) < abs(sets * unit - target):
            sets //= 2
        return replace(self, capacity=sets * unit)

    def describe(self) -> str:
        """Short human-readable summary, e.g. 'L3 20MB 20-way 64B lru'."""
        return (
            f"{self.name} {format_bytes(self.capacity)} "
            f"{self.associativity}-way {format_bytes(self.block_size)} {self.policy}"
        )


def supports_setpar(config: CacheConfig) -> bool:
    """True iff the set-parallel engine can simulate this level.

    The vectorized rounds keep replacement order as per-way timestamps
    over whole-block dirty state: LRU stamps on every touch, FIFO
    stamps on insertion only, so both qualify when non-sectored.
    Random victims are draws from a serial RNG stream and sectored
    levels track per-sector dirty state — both stay on the scalar loop.
    """
    sectored = (
        config.sector_size is not None
        and config.sector_size < config.block_size
    )
    return config.policy in ("lru", "fifo") and not sectored


def with_engine(config: CacheConfig, engine: str) -> CacheConfig:
    """``config`` with the engine knob applied where the level supports it.

    Forcing ``"setpar"`` on a level the vectorized engine cannot simulate
    (sectored or random-policy) keeps that level on ``"auto"`` — which resolves
    to the scalar loop there — instead of raising, so a design- or
    sweep-wide ``--engine setpar`` remains usable on hierarchies that mix
    SRAM levels with sectored page caches.
    """
    if engine == "setpar" and not supports_setpar(config):
        engine = "auto"
    if engine == config.engine:
        return config
    return replace(config, engine=engine)

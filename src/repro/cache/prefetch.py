"""Sequential (next-N-block) prefetching for a cache level.

Relevant to the paper's page-size findings: a large page is an implicit
spatial prefetch (fetching 2 KB on a 64 B miss), and the text
attributes both the time benefit and the energy cost of big pages to
exactly that over-fetch. A demand-miss next-line prefetcher provides
the same spatial coverage at line granularity, so the ablation
"64 B pages + prefetch degree k" vs "k·64 B pages" isolates the
allocation-granularity effect from the fetch-granularity effect.

Semantics: on every demand miss of block b, blocks b+1..b+degree are
installed (if absent), each fetching one block from the level below.
Prefetch traffic is accounted separately (:class:`PrefetchStats`) and
is forwarded downstream, so lower levels and the energy model see it.
Accuracy is measured as the fraction of prefetched blocks that receive
a demand access before eviction-or-end.

Fidelity note: prefetches are issued after each *sub-batch* of demand
requests (default 256) rather than after each individual miss — a
documented approximation that keeps the engine's vectorized hot loop
intact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.setassoc import SetAssociativeCache
from repro.errors import ConfigError
from repro.trace.events import (
    ADDR_DTYPE,
    KIND_DTYPE,
    SIZE_DTYPE,
    AccessBatch,
)


@dataclass
class PrefetchStats:
    """Prefetcher effectiveness counters.

    Attributes:
        issued: prefetch fills sent to the level below.
        useful: prefetched blocks that later saw a demand access while
            still resident.
    """

    issued: int = 0
    useful: int = 0

    @property
    def accuracy(self) -> float:
        """useful / issued (0.0 when idle)."""
        return self.useful / self.issued if self.issued else 0.0


class PrefetchingCache:
    """A cache level wrapped with a next-N-block prefetcher.

    Drop-in for :class:`~repro.cache.setassoc.SetAssociativeCache` in a
    hierarchy position: exposes ``name``, ``block_size``, ``stats``,
    ``process`` and ``flush_dirty``.

    Args:
        cache: the underlying cache level.
        degree: blocks prefetched per demand miss.
        sub_batch: demand requests processed between prefetch rounds.
    """

    def __init__(
        self,
        cache: SetAssociativeCache,
        degree: int = 1,
        sub_batch: int = 256,
    ) -> None:
        if degree < 1:
            raise ConfigError("prefetch degree must be >= 1")
        if sub_batch < 1:
            raise ConfigError("sub_batch must be >= 1")
        self.cache = cache
        self.degree = degree
        self.sub_batch = sub_batch
        self.prefetch_stats = PrefetchStats()
        self._pending: set[int] = set()
        self._block_bits = cache.block_size.bit_length() - 1

    # -- hierarchy surface --------------------------------------------------

    @property
    def name(self) -> str:
        """Level label (the wrapped cache's)."""
        return self.cache.name

    @property
    def block_size(self) -> int:
        """Allocation granularity (the wrapped cache's)."""
        return self.cache.block_size

    @property
    def config(self):
        """The wrapped cache's configuration."""
        return self.cache.config

    @property
    def stats(self):
        """Demand statistics (the wrapped cache's)."""
        return self.cache.stats

    def flush_dirty(self) -> AccessBatch:
        """Flush the wrapped cache's dirty state."""
        return self.cache.flush_dirty()

    def reset(self) -> None:
        """Cold cache, cleared prefetch state."""
        self.cache.reset()
        self.prefetch_stats = PrefetchStats()
        self._pending.clear()

    # -- processing -----------------------------------------------------------

    def process(self, batch: AccessBatch) -> AccessBatch:
        """Demand requests + prefetch rounds, downstream traffic merged."""
        if len(batch) == 0:
            return AccessBatch.empty()
        out_parts: list[AccessBatch] = []
        for start in range(0, len(batch), self.sub_batch):
            sub = batch.slice(start, start + self.sub_batch)
            self._credit_useful(sub)
            demand_out = self.cache.process(sub)
            out_parts.append(demand_out)
            prefetch_out = self._issue_prefetches(demand_out)
            if len(prefetch_out):
                out_parts.append(prefetch_out)
        merged = out_parts[0]
        for part in out_parts[1:]:
            merged = merged.concat(part)
        return merged

    def _credit_useful(self, sub: AccessBatch) -> None:
        """Count demand touches of still-resident prefetched blocks."""
        if not self._pending:
            return
        blocks = np.unique(sub.addresses >> np.uint64(self._block_bits))
        for block in blocks.tolist():
            if block in self._pending:
                self._pending.discard(block)
                if self.cache.contains(block << self._block_bits):
                    self.prefetch_stats.useful += 1

    def _issue_prefetches(self, demand_out: AccessBatch) -> AccessBatch:
        """Install next-N blocks for each demand fill, collect traffic."""
        if len(demand_out) == 0:
            return AccessBatch.empty()
        fills = demand_out.addresses[demand_out.is_store == 0]
        if len(fills) == 0:
            return AccessBatch.empty()
        missed_blocks = np.unique(fills >> np.uint64(self._block_bits))
        out_addrs: list[int] = []
        out_kinds: list[int] = []
        out_sizes: list[int] = []
        block_size = self.cache.block_size
        for block in missed_blocks.tolist():
            for offset in range(1, self.degree + 1):
                target = block + offset
                address = target << self._block_bits
                if self.cache.contains(address):
                    continue
                writebacks = self.cache.insert_block(target)
                self.prefetch_stats.issued += 1
                self._pending.add(target)
                # The prefetch fill itself is a load from below.
                out_addrs.append(address)
                out_kinds.append(0)
                out_sizes.append(block_size)
                for i in range(len(writebacks)):
                    out_addrs.append(int(writebacks.addresses[i]))
                    out_kinds.append(1)
                    out_sizes.append(int(writebacks.sizes[i]))
        if not out_addrs:
            return AccessBatch.empty()
        return AccessBatch(
            np.asarray(out_addrs, dtype=ADDR_DTYPE),
            np.asarray(out_sizes, dtype=SIZE_DTYPE),
            np.asarray(out_kinds, dtype=KIND_DTYPE),
        )

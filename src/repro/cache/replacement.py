"""Replacement-policy engines.

The simulator's hot loop specializes LRU inline (it is the policy used
for every result in the paper); these classes provide the same contract
for the generic loop so alternative policies can be studied (the
ablation benchmarks compare LRU against FIFO and Random).

A policy instance owns all per-set state for one cache. The contract:

- :meth:`lookup` — probe a set for a block; on hit, update recency
  state and return True.
- :meth:`insert` — add a block to a set (caller guarantees it is not
  present); return the evicted block number, or None if a way was free.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.errors import ConfigError


class ReplacementPolicy(ABC):
    """Per-cache replacement state and decisions."""

    def __init__(self, num_sets: int, associativity: int) -> None:
        if num_sets <= 0 or associativity <= 0:
            raise ConfigError("num_sets and associativity must be positive")
        self.num_sets = num_sets
        self.associativity = associativity

    @abstractmethod
    def lookup(self, set_index: int, block: int) -> bool:
        """Probe for ``block``; update recency on hit."""

    @abstractmethod
    def insert(self, set_index: int, block: int) -> int | None:
        """Insert ``block``; return the victim block or None."""

    @abstractmethod
    def contents(self, set_index: int) -> list[int]:
        """Blocks currently resident in the set (diagnostics/tests)."""

    def reset(self) -> None:
        """Drop all cached blocks (back to a cold cache)."""
        self.__init__(self.num_sets, self.associativity)  # type: ignore[misc]


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used: per-set list kept in MRU-first order."""

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self.sets: list[list[int]] = [[] for _ in range(num_sets)]

    def lookup(self, set_index: int, block: int) -> bool:
        s = self.sets[set_index]
        if block in s:
            s.remove(block)
            s.insert(0, block)
            return True
        return False

    def insert(self, set_index: int, block: int) -> int | None:
        s = self.sets[set_index]
        s.insert(0, block)
        if len(s) > self.associativity:
            return s.pop()
        return None

    def contents(self, set_index: int) -> list[int]:
        return list(self.sets[set_index])


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: hits do not refresh recency."""

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self.sets: list[list[int]] = [[] for _ in range(num_sets)]

    def lookup(self, set_index: int, block: int) -> bool:
        return block in self.sets[set_index]

    def insert(self, set_index: int, block: int) -> int | None:
        s = self.sets[set_index]
        s.insert(0, block)
        if len(s) > self.associativity:
            return s.pop()
        return None

    def contents(self, set_index: int) -> list[int]:
        return list(self.sets[set_index])


class RandomPolicy(ReplacementPolicy):
    """Random victim selection (deterministic given the seed)."""

    def __init__(self, num_sets: int, associativity: int, seed: int = 0) -> None:
        super().__init__(num_sets, associativity)
        self.sets: list[list[int]] = [[] for _ in range(num_sets)]
        self._rng = random.Random(seed)

    def lookup(self, set_index: int, block: int) -> bool:
        return block in self.sets[set_index]

    def insert(self, set_index: int, block: int) -> int | None:
        s = self.sets[set_index]
        if len(s) < self.associativity:
            s.append(block)
            return None
        victim_idx = self._rng.randrange(self.associativity)
        victim = s[victim_idx]
        s[victim_idx] = block
        return victim

    def contents(self, set_index: int) -> list[int]:
        return list(self.sets[set_index])

    def reset(self) -> None:
        self.__init__(self.num_sets, self.associativity)


def make_policy(name: str, num_sets: int, associativity: int) -> ReplacementPolicy:
    """Factory used by :class:`~repro.cache.setassoc.SetAssociativeCache`."""
    if name == "lru":
        return LRUPolicy(num_sets, associativity)
    if name == "fifo":
        return FIFOPolicy(num_sets, associativity)
    if name == "random":
        return RandomPolicy(num_sets, associativity)
    raise ConfigError(f"unknown replacement policy {name!r}")

"""Chaining cache levels into a full memory hierarchy.

A :class:`Hierarchy` owns an ordered list of caches (top to bottom) and
a terminal memory (plain :class:`~repro.cache.mainmem.MainMemory` or
:class:`~repro.cache.partition.PartitionedMemory`). Running a stream
produces the per-level data-movement statistics that Eq. (1)–(4)
consume.

Streams are processed chunk-by-chunk: each chunk flows L1 → L2 → ... →
memory before the next chunk starts, which bounds peak memory and
matches the paper's online simulation.
"""

from __future__ import annotations

import numpy as np

from repro.cache.mainmem import MainMemory
from repro.cache.partition import PartitionedMemory
from repro.cache.setassoc import SetAssociativeCache, check_request_sizes
from repro.cache.stats import HierarchyStats
from repro.errors import ConfigError
from repro.telemetry.core import get_active
from repro.trace.events import (
    ADDR_DTYPE,
    KIND_DTYPE,
    SIZE_DTYPE,
    AccessBatch,
)
from repro.trace.stream import AddressStream
from repro.units import log2_int


def run_chain(
    requests: AccessBatch,
    caches: list[SetAssociativeCache],
    memory: MainMemory | PartitionedMemory,
) -> None:
    """Push one batch of block requests through a cache chain.

    The single authoritative request path: every consumer of a cache
    chain — :meth:`Hierarchy.process_batch` for full hierarchies, the
    runner's post-L3 replay, and prefix-captured suffix simulation —
    routes batches through here so they all apply the same
    ``check_request_sizes`` guard (a mis-ordered chain raises
    :class:`~repro.errors.SimulationError` instead of silently
    corrupting statistics). Whatever survives the last cache reaches
    ``memory``; a level that absorbs everything ends the walk early.
    """
    for cache in caches:
        check_request_sizes(requests, cache.block_size, cache.name)
        requests = cache.process(requests)
        if len(requests) == 0:
            return
    memory.process(requests)


def drain_chain(
    caches: list[SetAssociativeCache],
    memory: MainMemory | PartitionedMemory,
) -> None:
    """Flush dirty blocks from every cache in the chain, top to bottom.

    Writebacks from level *i* enter level *i + 1* (or memory), exactly
    as in :meth:`Hierarchy.drain` — this is the shared implementation
    behind it and behind the runner's ``drain=True`` replay mode.
    """
    for i, cache in enumerate(caches):
        writebacks = cache.flush_dirty()
        # Writebacks from level i enter level i+1 (or memory).
        for lower in caches[i + 1 :]:
            writebacks = lower.process(writebacks)
            if len(writebacks) == 0:
                break
        else:
            memory.process(writebacks)


def to_block_requests(batch: AccessBatch, block_size: int) -> AccessBatch:
    """Convert raw byte accesses into top-level cache requests.

    Accesses spanning multiple blocks (unaligned multi-byte accesses)
    are split into one request per touched block. Request sizes are
    capped at ``block_size`` (the per-request transferred volume cannot
    exceed a block).
    """
    n = len(batch)
    if n == 0:
        return batch
    shift = np.uint64(log2_int(block_size))
    first = batch.addresses >> shift
    last = (batch.addresses + batch.sizes.astype(ADDR_DTYPE) - ADDR_DTYPE(1)) >> shift
    spans = (last - first).astype(np.int64)
    capped = np.minimum(batch.sizes, block_size).astype(SIZE_DTYPE)
    if not spans.any():
        return AccessBatch(batch.addresses, capped, batch.is_store)
    counts = spans + 1
    total = int(counts.sum())
    offsets = np.arange(total, dtype=np.int64)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    offsets -= np.repeat(starts, counts)
    lines = np.repeat(first, counts) + offsets.astype(ADDR_DTYPE)
    return AccessBatch(
        lines << shift,
        np.repeat(capped, counts),
        np.repeat(batch.is_store, counts).astype(KIND_DTYPE),
    )


class Hierarchy:
    """An ordered cache chain plus terminal memory.

    Args:
        caches: levels top (closest to the core) to bottom. Block sizes
            must be non-decreasing downward so a request never exceeds
            the serving level's granularity.
        memory: terminal device (or partitioned device).
        observer: optional telemetry hook — an object with an
            ``on_refs(n)`` method (e.g. a
            :class:`~repro.telemetry.windows.WindowedCollector`) called
            once per processed batch with the number of top-level
            requests. When None (the default) the hook costs one
            ``is not None`` check per batch.
    """

    def __init__(
        self,
        caches: list[SetAssociativeCache],
        memory: MainMemory | PartitionedMemory,
        observer=None,
    ) -> None:
        if not caches:
            raise ConfigError("a hierarchy needs at least one cache level")
        for upper, lower in zip(caches, caches[1:]):
            if lower.block_size < upper.block_size:
                raise ConfigError(
                    f"block size must not shrink downward: "
                    f"{upper.name}={upper.block_size} > {lower.name}={lower.block_size}"
                )
        self.caches = list(caches)
        self.memory = memory
        self.observer = observer
        self._references = 0

    # ------------------------------------------------------------------

    def process_batch(self, batch: AccessBatch) -> None:
        """Run one raw access batch through the whole chain."""
        requests = to_block_requests(batch, self.caches[0].block_size)
        arrived = len(requests)
        self._references += arrived
        run_chain(requests, self.caches, self.memory)
        observer = self.observer
        if observer is not None:
            observer.on_refs(arrived)

    def run(self, stream: AddressStream, drain: bool = False) -> HierarchyStats:
        """Run an address stream through the hierarchy.

        Args:
            stream: raw (byte-granularity) program accesses.
            drain: when True, flush every level's dirty blocks at the
                end, propagating the writebacks downward — the
                steady-state accounting in which all dirty data
                eventually reaches main memory.

        Returns:
            Accumulated statistics (includes any previous runs on this
            hierarchy instance; use a fresh instance or :meth:`reset`
            for independent measurements).
        """
        with get_active().span("hierarchy.run", memory=self.memory.name):
            for chunk in stream.chunks():
                self.process_batch(chunk)
            if drain:
                self.drain()
        return self.stats()

    def drain(self) -> None:
        """Flush dirty blocks from every level, top to bottom."""
        drain_chain(self.caches, self.memory)

    # ------------------------------------------------------------------

    @property
    def references(self) -> int:
        """Total program references fed into the top level so far."""
        return self._references

    def stats(self) -> HierarchyStats:
        """Current accumulated statistics, top to bottom."""
        levels = [c.stats for c in self.caches]
        if isinstance(self.memory, PartitionedMemory):
            levels = levels + self.memory.stats_list
        else:
            levels = levels + [self.memory.stats]
        return HierarchyStats(levels=levels, references=self._references)

    def reset(self) -> None:
        """Cold caches, zeroed counters."""
        for cache in self.caches:
            cache.reset()
        self.memory.reset()
        self._references = 0

    @property
    def level_names(self) -> list[str]:
        """Labels of all levels including terminal device(s)."""
        return self.stats().level_names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        chain = " -> ".join(c.config.describe() for c in self.caches)
        return f"Hierarchy({chain} -> {self.memory.name})"

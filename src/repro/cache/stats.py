"""Per-level and hierarchy-wide simulation statistics.

These are the data-movement counts the paper's models consume:
loads/stores arriving at every level (Eq. 2's ``Loads_Li`` /
``Stores_Li``), hit/miss diagnostics, and the bit volumes needed for the
per-bit dynamic energy model (Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.trace.events import AccessBatch


@dataclass
class LevelStats:
    """Counters for one hierarchy level.

    "Arriving" counts are requests sent to this level by the level above
    (for L1, the program's references themselves). These are exactly the
    per-level loads/stores of Eq. (2).

    Attributes:
        name: level label.
        loads: load requests arriving at this level.
        stores: store requests (writebacks from above, or program
            stores at L1) arriving at this level.
        load_bits: total bits read by arriving loads.
        store_bits: total bits written by arriving stores.
        load_hits / load_misses / store_hits / store_misses: hit/miss
            split (misses attributed to the access that triggered the
            fill). Terminal memory levels report everything as hits.
        writebacks: dirty-eviction writebacks this level *emitted*
            toward the level below.
        fills: fill requests this level emitted toward the level below
            (== load_misses + store_misses under write-allocate).
    """

    name: str
    loads: int = 0
    stores: int = 0
    load_bits: int = 0
    store_bits: int = 0
    load_hits: int = 0
    load_misses: int = 0
    store_hits: int = 0
    store_misses: int = 0
    writebacks: int = 0
    fills: int = 0

    def account_batch(self, batch: "AccessBatch") -> tuple[int, int]:
        """Count an arriving request batch (demand accounting).

        Adds the batch's load/store request counts and bit volumes to
        the counters — the part of per-level accounting every device
        shares, regardless of how it then simulates the requests.

        Returns:
            ``(n_loads, n_stores)`` of the batch, for the caller's own
            hit/miss attribution.
        """
        is_store = batch.is_store
        n_stores = int(np.count_nonzero(is_store))
        n_loads = len(batch) - n_stores
        self.loads += n_loads
        self.stores += n_stores
        sizes = batch.sizes
        total_bytes = int(sizes.sum(dtype=np.int64))
        # is_store is strictly 0/1 (see AccessBatch), so a multiply is
        # an exact masked sum without the boolean-index copy.
        store_bytes = int(
            np.multiply(sizes, is_store, dtype=np.int64).sum(dtype=np.int64)
        )
        self.store_bits += 8 * store_bytes
        self.load_bits += 8 * (total_bytes - store_bytes)
        return n_loads, n_stores

    @property
    def accesses(self) -> int:
        """Total requests arriving at this level."""
        return self.loads + self.stores

    @property
    def hits(self) -> int:
        """Total hits."""
        return self.load_hits + self.store_hits

    @property
    def misses(self) -> int:
        """Total misses."""
        return self.load_misses + self.store_misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction of arriving requests (0.0 when idle)."""
        total = self.accesses
        return self.hits / total if total else 0.0

    @property
    def miss_rate(self) -> float:
        """Miss fraction of arriving requests."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def merge(self, other: "LevelStats") -> "LevelStats":
        """Element-wise sum (for combining runs); names must match."""
        if other.name != self.name:
            raise ValueError(f"cannot merge stats of {self.name!r} and {other.name!r}")
        return LevelStats(
            name=self.name,
            loads=self.loads + other.loads,
            stores=self.stores + other.stores,
            load_bits=self.load_bits + other.load_bits,
            store_bits=self.store_bits + other.store_bits,
            load_hits=self.load_hits + other.load_hits,
            load_misses=self.load_misses + other.load_misses,
            store_hits=self.store_hits + other.store_hits,
            store_misses=self.store_misses + other.store_misses,
            writebacks=self.writebacks + other.writebacks,
            fills=self.fills + other.fills,
        )

    def as_dict(self) -> dict:
        """Plain-dict form (serialization, tabular reports)."""
        return {
            "name": self.name,
            "loads": self.loads,
            "stores": self.stores,
            "load_bits": self.load_bits,
            "store_bits": self.store_bits,
            "load_hits": self.load_hits,
            "load_misses": self.load_misses,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "writebacks": self.writebacks,
            "fills": self.fills,
        }


@dataclass
class HierarchyStats:
    """Statistics for a whole hierarchy run.

    Attributes:
        levels: per-level stats, top (L1) to bottom; the final entries
            are the terminal memory device(s) — one for a conventional
            main memory, two (DRAM and NVM) for the NDM partitioned
            memory.
        references: total program references fed into L1 — Eq. (2)'s
            denominator.
    """

    levels: list[LevelStats] = field(default_factory=list)
    references: int = 0

    def level(self, name: str) -> LevelStats:
        """Stats for the level called ``name``.

        Raises:
            KeyError: if no such level exists.
        """
        for stats in self.levels:
            if stats.name == name:
                return stats
        raise KeyError(name)

    @property
    def level_names(self) -> list[str]:
        """Names of the levels, top to bottom."""
        return [s.name for s in self.levels]

    def merge(self, other: "HierarchyStats") -> "HierarchyStats":
        """Combine two runs of the same hierarchy."""
        if self.level_names != other.level_names:
            raise ValueError("cannot merge stats of different hierarchies")
        return HierarchyStats(
            levels=[a.merge(b) for a, b in zip(self.levels, other.levels)],
            references=self.references + other.references,
        )

    def as_dict(self) -> dict:
        """Plain-dict form."""
        return {
            "references": self.references,
            "levels": [s.as_dict() for s in self.levels],
        }

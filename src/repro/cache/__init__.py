"""Multi-level memory-hierarchy simulator.

Reimplements the paper's online cache simulation framework
(Section III.B): set-associative, write-back/write-allocate caches with
dirty-line tracking, chained into hierarchies of up to five levels.
At every level the simulator records the loads and stores *arriving* at
that level (the quantities Eq. (2) consumes), and dirty-line evictions
propagate as writes toward main memory exactly as the paper describes.

Page-granularity levels (the eDRAM/HMC fourth-level cache and the
DRAM-as-cache in front of NVM) are ordinary
:class:`~repro.cache.setassoc.SetAssociativeCache` instances with a
larger block size; the partitioned DRAM+NVM main memory of the NDM
design is :class:`~repro.cache.partition.PartitionedMemory`.
"""

from repro.cache.config import CacheConfig
from repro.cache.stats import LevelStats, HierarchyStats
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.mainmem import MainMemory
from repro.cache.partition import PartitionedMemory
from repro.cache.hierarchy import Hierarchy, drain_chain, run_chain
from repro.cache.prefetch import PrefetchingCache, PrefetchStats
from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)

__all__ = [
    "CacheConfig",
    "LevelStats",
    "HierarchyStats",
    "SetAssociativeCache",
    "MainMemory",
    "PartitionedMemory",
    "Hierarchy",
    "run_chain",
    "drain_chain",
    "PrefetchingCache",
    "PrefetchStats",
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "make_policy",
]

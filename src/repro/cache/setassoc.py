"""The set-associative cache engine.

Design notes (performance):

- Streams arrive as NumPy batches. Everything that does not carry a
  serial dependence — block extraction, run-boundary detection, per-run
  load/store counting — is vectorized.
- The replacement state update *is* serially dependent, so it runs in a
  tight Python loop. To keep that loop short, consecutive accesses to
  the same block are collapsed into one *run* first: under
  write-allocate, every access of a run after the first is a guaranteed
  hit, so a single probe per run reproduces exact hit/miss counts and
  exact LRU state. Real traces are dominated by such runs (e.g. eight
  consecutive 8-byte element accesses per 64-byte line in a unit-stride
  sweep), which typically shrinks the loop by 3–8x.
- LRU (the paper's policy) is specialized inline with per-set Python
  lists; other policies go through the pluggable
  :mod:`~repro.cache.replacement` engines.
- The serial dependence exists only *within* a set, which the
  set-parallel engine (``engine="setpar"``, picked automatically for
  non-sectored LRU and FIFO levels) exploits: runs are stable-sorted
  by set index and simulated in *rounds* — round ``r`` takes the
  ``r``-th run of every active set and advances all of them at once
  against a ``(touched_sets x ways)`` matrix of packed tags
  (``block << 1 | dirty``) plus a timestamp matrix. Replacement order
  is kept as timestamps (pre-batch residents carry their list position
  as a negative stamp, empty ways even more negative ones), so a
  broadcast tag compare yields hits, ``argmin`` over the stamps yields
  the exact victim, and the order update is a single stamp scatter
  instead of a permutation: under LRU every touched way is stamped
  with its round number (promotion), under FIFO only filled ways are
  (insertion order is the only order, so hits leave stamps alone).
  Emitted fills/writebacks are scattered back into original occurrence
  order via the runs' source indices, so the engine is bit-identical
  to the scalar loop — statistics, emitted batches, and end state.
  Rounds with fewer than ``SETPAR_MIN_LANES`` active sets (skewed
  tails, tiny scaled caches) are handed back to the scalar loop, which
  is faster at low lane counts.

Semantics: write-back, write-allocate. A store to an absent block
fills it (counted as a miss of store kind) and marks it dirty; evicting
a dirty block emits a writeback request to the level below. Fill
requests propagate as loads of ``block_size`` bytes, writebacks as
stores of ``block_size`` bytes — this is the paper's extension that
lets NVM main memory see its true read/write mix.
"""

from __future__ import annotations

import numpy as np

from repro.cache.config import CacheConfig, supports_setpar
from repro.cache.replacement import make_policy
from repro.cache.stats import LevelStats
from repro.errors import SimulationError
from repro.telemetry.core import get_active
from repro.trace.events import ADDR_DTYPE, KIND_DTYPE, SIZE_DTYPE, AccessBatch
from repro.units import log2_int

#: Minimum active sets per round for the vectorized step to beat the
#: scalar loop (each round costs ~two dozen small numpy calls, so thin
#: rounds lose). Rounds below this lane count — and whole batches on
#: caches with fewer sets — fall back to the scalar loop. Module-level
#: so tests can force the vector path on tiny caches.
SETPAR_MIN_LANES = 32

#: Empty-way marker in the packed tag matrix (``block << 1 | dirty``).
#: Unambiguous as long as every block number stays below
#: ``2**63 - 1``; the engine flips itself to the scalar loop for good
#: the moment a batch violates that (see ``_setpar_unsafe``).
_SENTINEL = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Largest block number the packed-tag scheme can represent. Blocks at
#: or above this (possible only with sub-2-byte block sizes, or literal
#: all-ones addresses) would collide with the sentinel once packed.
_MAX_PACKABLE = np.uint64(0x7FFFFFFFFFFFFFFE)


class SetAssociativeCache:
    """One write-back, write-allocate set-associative cache level."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = LevelStats(name=config.name)
        self._block_bits = log2_int(config.block_size)
        self._set_mask = config.num_sets - 1
        self._hashed = config.hashed_sets
        self._sectored = (
            config.sector_size is not None
            and config.sector_size < config.block_size
        )
        if self._sectored:
            self._sector_bits = log2_int(config.sector_size)
            #: block number -> set of dirty global sector numbers.
            self._dirty_sectors: dict[int, set[int]] = {}
            self._dirty: set[int] = set()
        else:
            self._sector_bits = self._block_bits
            self._dirty_sectors = {}
            self._dirty = set()
        self._is_lru = config.policy == "lru"
        if config.engine == "scalar":
            self._engine = "scalar"
        else:
            # "setpar" is validated against the config; "auto" picks it
            # wherever it is supported (it degrades to the scalar loop
            # per batch when set-parallelism cannot pay off).
            self._engine = "setpar" if supports_setpar(config) else "scalar"
        # Inline per-set lists carry the state for LRU always and for
        # FIFO under the set-parallel engine (whose round matrices and
        # scalar fallbacks share them); scalar FIFO and Random go
        # through the pluggable policy objects.
        self._inline = self._is_lru or (
            config.policy == "fifo" and self._engine == "setpar"
        )
        if self._inline:
            self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
            self._policy = None
        else:
            self._sets = []
            self._policy = make_policy(
                config.policy, config.num_sets, config.associativity
            )
        self._engine_announced = False
        # Sticky safety latch: once a block number too large for the
        # packed-tag scheme has been seen (and may therefore be
        # resident), every later batch must take the scalar loop too.
        self._setpar_unsafe = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Level label."""
        return self.config.name

    @property
    def block_size(self) -> int:
        """Allocation granularity in bytes."""
        return self.config.block_size

    @property
    def engine(self) -> str:
        """Resolved simulation engine ("scalar" or "setpar")."""
        return self._engine

    def _set_index(self, block: int) -> int:
        """Set index of a block (bit-sliced, or multiplicative hash).

        The hashed form masks the product to 64 bits *before* shifting:
        the masked set bits live in bits 15..15+set_bits, so this is
        bit-identical to the vectorized uint64 wrap-around form, and it
        keeps scalar probes off Python's big-int allocator.
        """
        if self._hashed:
            return (
                ((block * 2654435761) & 0xFFFFFFFFFFFFFFFF) >> 15
            ) & self._set_mask
        return block & self._set_mask

    def resident_blocks(self) -> int:
        """Number of blocks currently cached (diagnostics/tests)."""
        if self._inline:
            return sum(len(s) for s in self._sets)
        return sum(
            len(self._policy.contents(i)) for i in range(self.config.num_sets)
        )

    def contains(self, address: int) -> bool:
        """True iff the block holding byte ``address`` is resident."""
        block = address >> self._block_bits
        set_index = self._set_index(block)
        if self._inline:
            return block in self._sets[set_index]
        return block in self._policy.contents(set_index)

    def is_dirty(self, address: int) -> bool:
        """True iff the block (sectored: the sector) holding byte
        ``address`` is dirty."""
        if self._sectored:
            block = address >> self._block_bits
            sector = address >> self._sector_bits
            return sector in self._dirty_sectors.get(block, ())
        return (address >> self._block_bits) in self._dirty

    def reset(self) -> None:
        """Return to a cold cache with zeroed statistics."""
        self.stats = LevelStats(name=self.config.name)
        self._dirty.clear()
        self._dirty_sectors.clear()
        self._setpar_unsafe = False
        if self._inline:
            self._sets = [[] for _ in range(self.config.num_sets)]
        else:
            self._policy.reset()

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def process(self, batch: AccessBatch) -> AccessBatch:
        """Run a request batch through the cache.

        Args:
            batch: requests arriving from the level above (byte
                addresses, sizes, kinds). Request sizes must not exceed
                this cache's block size (upper levels have smaller or
                equal granularity by construction).

        Returns:
            The request batch this level emits toward the level below:
            fills (loads of one block) and dirty-eviction writebacks
            (stores of one block), in occurrence order.
        """
        n = len(batch)
        if n == 0:
            return AccessBatch.empty()

        tel = get_active()
        if tel.enabled and not self._engine_announced:
            self._engine_announced = True
            tel.event(
                "engine_selected",
                level=self.config.name,
                engine=self._engine,
                policy=self.config.policy,
                sets=self.config.num_sets,
                ways=self.config.associativity,
            )

        stats = self.stats
        is_store = batch.is_store
        n_loads, n_stores = stats.account_batch(batch)

        # Run-length collapse: one probe per run of equal units. The
        # unit is the block, or the sector for sectored caches (so the
        # loop can mark per-sector dirty state exactly in access order).
        unit_bits = self._sector_bits if self._sectored else self._block_bits
        units = batch.addresses >> np.uint64(unit_bits)
        change = np.empty(n, dtype=bool)
        change[0] = True
        np.not_equal(units[1:], units[:-1], out=change[1:])
        n_runs = int(np.count_nonzero(change))
        if n_runs == n or (
            self._engine == "setpar" and n_runs * 4 > 3 * n
        ):
            # Every access (or nearly every access — random-access
            # traffic) is its own run. The run arrays are the event
            # arrays themselves, no gathers needed. For the set-
            # parallel engine this is exact even when short runs
            # remain: simulating a run's accesses one by one gives the
            # identical fill, writeback, dirty, and per-type hit/miss
            # outcome — the first access misses or hits for the run,
            # the rest hit (promoting under LRU) — so collapse is purely a
            # throughput lever, worthwhile only when it shrinks the
            # batch substantially.
            run_units = units
            run_stores = is_store
            first_store = is_store
            run_loads = np.subtract(1, is_store, dtype=np.int64)
        else:
            starts = np.flatnonzero(change)
            counts = np.diff(starts, append=n)
            store_cum = np.empty(n + 1, dtype=np.int64)
            store_cum[0] = 0
            np.cumsum(is_store, dtype=np.int64, out=store_cum[1:])
            run_stores = store_cum[starts + counts] - store_cum[starts]
            run_units = units[starts]
            first_store = is_store[starts]
            run_loads = counts - run_stores

        # Set indices, vectorized. The serial loops used to evaluate
        # ``(blk * 2654435761) >> 15 & mask`` per run in Python — the
        # product exceeds 64 bits, so every probe paid for big-int
        # allocation. uint64 wrap-around keeps the low 64 bits exact,
        # and the masked bits (15 .. 15 + set bits) all live there, so
        # the mapping is bit-identical.
        run_blocks = (
            run_units >> np.uint64(self._block_bits - self._sector_bits)
            if self._sectored
            else run_units
        )
        if self._hashed:
            run_sets = (
                (run_blocks * np.uint64(2654435761)) >> np.uint64(15)
            ) & np.uint64(self._set_mask)
        else:
            run_sets = run_blocks & np.uint64(self._set_mask)

        if self._sectored:
            out_units, out_kinds, out_sizes = self._process_runs_sectored(
                run_units.tolist(),
                run_blocks.tolist(),
                run_sets.tolist(),
                run_loads.tolist(),
                run_stores.tolist(),
                first_store.tolist(),
            )
            if not out_units:
                return AccessBatch.empty()
            return AccessBatch(
                np.asarray(out_units, dtype=ADDR_DTYPE),
                np.asarray(out_sizes, dtype=SIZE_DTYPE),
                np.asarray(out_kinds, dtype=KIND_DTYPE),
            )

        if self._engine == "setpar":
            out_blocks_arr, out_kinds_arr = self._process_runs_setpar(
                run_units, run_sets, run_loads, run_stores, first_store,
                n_loads, n_stores, tel,
            )
            if not len(out_blocks_arr):
                return AccessBatch.empty()
            return AccessBatch(
                out_blocks_arr << np.uint64(self._block_bits),
                np.full(
                    len(out_blocks_arr),
                    self.config.block_size,
                    dtype=SIZE_DTYPE,
                ),
                out_kinds_arr,
            )

        if self._is_lru:
            out_blocks, out_kinds = self._process_runs_lru(
                run_units.tolist(),
                run_sets.tolist(),
                run_loads.tolist(),
                run_stores.tolist(),
                first_store.tolist(),
            )
        else:
            out_blocks, out_kinds = self._process_runs_generic(
                run_units.tolist(),
                run_sets.tolist(),
                run_loads.tolist(),
                run_stores.tolist(),
                first_store.tolist(),
            )

        if not out_blocks:
            return AccessBatch.empty()
        out_addr = np.asarray(out_blocks, dtype=ADDR_DTYPE) << np.uint64(
            self._block_bits
        )
        return AccessBatch(
            out_addr,
            np.full(len(out_blocks), self.config.block_size, dtype=SIZE_DTYPE),
            np.asarray(out_kinds, dtype=KIND_DTYPE),
        )

    def _process_runs_sectored(
        self, run_sectors, run_blocks, run_sets, run_loads, run_stores,
        first_store,
    ):
        """Sectored hot loop: page-granularity allocation, sector-
        granularity dirty tracking (LRU or pluggable policy).

        Fill requests are full blocks (the page is the allocation
        unit); dirty-eviction writebacks are one request per dirty
        sector — the paper's "dirty cache line" accounting. Block
        numbers, set indices, and per-run load counts arrive
        precomputed (vectorized in :meth:`process`).
        """
        sector_bytes = 1 << self._sector_bits
        block_bytes = self.config.block_size
        sector_to_addr = self._sector_bits
        dirty = self._dirty_sectors
        stats = self.stats
        is_lru = self._is_lru
        sets = self._sets if is_lru else None
        policy = self._policy
        ways = self.config.associativity
        lh = lm = sh = sm = wb = fills = 0
        out_addrs: list[int] = []
        out_kinds: list[int] = []
        out_sizes: list[int] = []

        for sec, blk, sidx, nld, nst, fst in zip(
            run_sectors, run_blocks, run_sets, run_loads, run_stores,
            first_store,
        ):
            if is_lru:
                s = sets[sidx]
                if blk in s:
                    if s[0] != blk:
                        s.remove(blk)
                        s.insert(0, blk)
                    hit = True
                else:
                    hit = False
            else:
                hit = policy.lookup(sidx, blk)
            if hit:
                lh += nld
                sh += nst
            else:
                if fst:
                    sm += 1
                    sh += nst - 1
                    lh += nld
                else:
                    lm += 1
                    lh += nld - 1
                    sh += nst
                fills += 1
                out_addrs.append(blk << self._block_bits)
                out_kinds.append(0)
                out_sizes.append(block_bytes)
                if is_lru:
                    s.insert(0, blk)
                    victim = s.pop() if len(s) > ways else None
                else:
                    victim = policy.insert(sidx, blk)
                if victim is not None:
                    victim_sectors = dirty.pop(victim, None)
                    if victim_sectors:
                        wb += len(victim_sectors)
                        for vsec in sorted(victim_sectors):
                            out_addrs.append(vsec << sector_to_addr)
                            out_kinds.append(1)
                            out_sizes.append(sector_bytes)
            if nst:
                entry = dirty.get(blk)
                if entry is None:
                    dirty[blk] = {sec}
                else:
                    entry.add(sec)

        stats.load_hits += lh
        stats.load_misses += lm
        stats.store_hits += sh
        stats.store_misses += sm
        stats.writebacks += wb
        stats.fills += fills
        return out_addrs, out_kinds, out_sizes

    def _process_runs_lru(
        self, run_blocks, run_sets, run_loads, run_stores, first_store
    ):
        """Inline-LRU hot loop. Local-variable bound for speed; set
        indices and per-run load counts arrive precomputed."""
        sets = self._sets
        dirty = self._dirty
        ways = self.config.associativity
        stats = self.stats
        lh = lm = sh = sm = wb = fills = 0
        out_blocks: list[int] = []
        out_kinds: list[int] = []
        append_b = out_blocks.append
        append_k = out_kinds.append
        dirty_add = dirty.add

        for blk, sidx, nld, nst, fst in zip(
            run_blocks, run_sets, run_loads, run_stores, first_store
        ):
            s = sets[sidx]
            if blk in s:
                if s[0] != blk:
                    s.remove(blk)
                    s.insert(0, blk)
                lh += nld
                sh += nst
            else:
                # Miss charged to the run's first access; the rest of
                # the run hits the freshly filled block.
                if fst:
                    sm += 1
                    sh += nst - 1
                    lh += nld
                else:
                    lm += 1
                    lh += nld - 1
                    sh += nst
                fills += 1
                append_b(blk)
                append_k(0)
                s.insert(0, blk)
                if len(s) > ways:
                    victim = s.pop()
                    if victim in dirty:
                        dirty.discard(victim)
                        wb += 1
                        append_b(victim)
                        append_k(1)
            if nst:
                dirty_add(blk)

        stats.load_hits += lh
        stats.load_misses += lm
        stats.store_hits += sh
        stats.store_misses += sm
        stats.writebacks += wb
        stats.fills += fills
        return out_blocks, out_kinds

    def _process_runs_fifo(
        self, run_blocks, run_sets, run_loads, run_stores, first_store
    ):
        """Inline-FIFO hot loop: the LRU loop minus hit promotion.

        Used only by the set-parallel engine's scalar fallbacks (the
        ``scalar`` engine keeps FIFO on the pluggable policy object so
        the two implementations stay independently testable).
        """
        sets = self._sets
        dirty = self._dirty
        ways = self.config.associativity
        stats = self.stats
        lh = lm = sh = sm = wb = fills = 0
        out_blocks: list[int] = []
        out_kinds: list[int] = []
        append_b = out_blocks.append
        append_k = out_kinds.append
        dirty_add = dirty.add

        for blk, sidx, nld, nst, fst in zip(
            run_blocks, run_sets, run_loads, run_stores, first_store
        ):
            s = sets[sidx]
            if blk in s:
                lh += nld
                sh += nst
            else:
                if fst:
                    sm += 1
                    sh += nst - 1
                    lh += nld
                else:
                    lm += 1
                    lh += nld - 1
                    sh += nst
                fills += 1
                append_b(blk)
                append_k(0)
                s.insert(0, blk)
                if len(s) > ways:
                    victim = s.pop()
                    if victim in dirty:
                        dirty.discard(victim)
                        wb += 1
                        append_b(victim)
                        append_k(1)
            if nst:
                dirty_add(blk)

        stats.load_hits += lh
        stats.load_misses += lm
        stats.store_hits += sh
        stats.store_misses += sm
        stats.writebacks += wb
        stats.fills += fills
        return out_blocks, out_kinds

    def _setpar_fallback(self, run_blocks, run_sets, run_loads, run_stores,
                         first_store):
        """Whole-batch scalar fallback for the setpar engine (list args
        converted once; stats handled by the scalar loop)."""
        scalar_loop = (
            self._process_runs_lru if self._is_lru else self._process_runs_fifo
        )
        out_blocks, out_kinds = scalar_loop(
            run_blocks.tolist(),
            run_sets.tolist(),
            run_loads.tolist(),
            run_stores.tolist(),
            first_store.tolist(),
        )
        return (
            np.asarray(out_blocks, dtype=ADDR_DTYPE),
            np.asarray(out_kinds, dtype=KIND_DTYPE),
        )

    def _process_runs_setpar(
        self, run_blocks, run_sets, run_loads, run_stores, first_store,
        n_loads, n_stores, tel,
    ):
        """Set-parallel LRU/FIFO rounds (see the module docstring).

        Arguments arrive as the vectorized arrays from :meth:`process`.
        Returns ``(blocks, kinds)`` arrays in the exact emission order
        of the scalar loop: each run's fill precedes the writeback of
        the victim it displaced, and runs emit in occurrence order.
        """
        n = len(run_blocks)
        min_lanes = SETPAR_MIN_LANES
        # Latch unsafety first: a too-large block can become resident
        # through the fallback batch that carries it, so every later
        # batch must stay scalar too, not just this one.
        if not self._setpar_unsafe and bool(
            (run_blocks > _MAX_PACKABLE).any()
        ):
            self._setpar_unsafe = True
        # A cache with fewer sets than the lane floor can never fill a
        # profitable round; neither can a batch with fewer runs.
        if (
            self._setpar_unsafe
            or self.config.num_sets < min_lanes
            or n < min_lanes
        ):
            if tel.enabled:
                tel.counter(
                    "repro_engine_runs", level=self.config.name, path="scalar"
                ).inc(n)
            return self._setpar_fallback(
                run_blocks, run_sets, run_loads, run_stores, first_store
            )

        # Group runs by set. Double stable argsort — by set, then by
        # within-set rank — makes round r the contiguous slice
        # [seg[r], seg[r+1]) of `orig`, ordered by ascending set index,
        # holding the r-th run of every set that has one. 16-bit set
        # keys take numpy's radix path (~6x faster than the comparison
        # sort on wider keys); setpar caches rarely exceed a few
        # thousand sets, so the wide fallback is cold.
        num_sets = self.config.num_sets
        key_dtype = np.int16 if num_sets <= (1 << 15) else np.int32
        rs = run_sets.astype(key_dtype)
        order = np.argsort(rs, kind="stable")
        counts_all = np.bincount(rs, minlength=num_sets)
        touched = np.flatnonzero(counts_all)
        m = len(touched)
        counts = counts_all[touched]
        starts = np.zeros(m, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        ranks = np.arange(n, dtype=np.int32)
        ranks -= np.repeat(starts.astype(np.int32), counts)
        lanes = np.bincount(ranks)
        # lanes[r] (active sets in round r) is non-increasing, so the
        # profitable prefix of rounds is a binary search away.
        vec_rounds = int(np.searchsorted(-lanes, -min_lanes, side="right"))
        if vec_rounds == 0:
            if tel.enabled:
                tel.counter(
                    "repro_engine_runs", level=self.config.name, path="scalar"
                ).inc(n)
            return self._setpar_fallback(
                run_blocks, run_sets, run_loads, run_stores, first_store
            )

        orig = order[np.argsort(ranks, kind="stable")]
        seg = np.zeros(len(lanes) + 1, dtype=np.int64)
        np.cumsum(lanes, out=seg[1:])
        n_vec = int(seg[vec_rounds])
        orig_v = orig[:n_vec]
        blks = run_blocks[orig_v]
        # Per-lane store bit, widened once to uint64 so the round
        # loop's bitwise ops never pay a per-call bool cast.
        hs = (run_stores[orig_v] != 0).astype(np.uint64)
        # Packed per-lane query (block << 1) and fill value (query with
        # the has-store dirty bit folded in).
        b2s = blks << np.uint64(1)
        b2h = b2s | hs
        ways = self.config.associativity
        # Rounds where every touched set is active use the matrices
        # unsliced; only the partial-round suffix of lanes needs the
        # set-id -> matrix-row mapping, built via a small scatter table
        # (cheaper than a searchsorted over every lane).
        full_rounds = int(np.searchsorted(-lanes, -m, side="right"))
        full_rounds = min(full_rounds, vec_rounds)
        p0 = int(seg[full_rounds])
        if p0 < n_vec:
            remap = np.empty(num_sets, dtype=np.intp)
            remap[touched] = np.arange(m, dtype=np.intp)
            rows_part = remap[rs[orig_v[p0:]]]
            rowsW_part = rows_part * ways
        else:
            rows_part = rowsW_part = None

        sets = self._sets
        dirty = self._dirty
        touched_list = touched.tolist()

        # Gather the touched rows into a packed tag matrix
        # (block << 1 | dirty; sentinel pads the empty ways) and seed
        # the timestamp matrix: resident way j carries stamp -(j+1), so
        # stamps decrease from MRU to LRU, and the unused suffix
        # continues the pattern — always more negative than any
        # resident, so argmin fills empty ways before evicting, exactly
        # like the scalar loop.
        pad = [0xFFFFFFFFFFFFFFFF] * ways
        packed = []
        old_dirty: list[int] = []
        if dirty:
            for sidx in touched_list:
                prow = []
                ap = prow.append
                for b in sets[sidx]:
                    if b in dirty:
                        ap((b << 1) | 1)
                        old_dirty.append(b)
                    else:
                        ap(b << 1)
                packed.append(prow + pad[len(prow):])
        else:
            for sidx in touched_list:
                row = sets[sidx]
                packed.append([b << 1 for b in row] + pad[len(row):])
        tags = np.array(packed, dtype=np.uint64)
        tags_f = tags.reshape(-1)
        # int32 stamps: rounds per batch stay far below 2**31, and the
        # narrower rows compare/scan faster.
        stamp = np.empty((m, ways), dtype=np.int32)
        stamp[:] = np.arange(-1, -ways - 1, -1, dtype=np.int32)
        stamp_f = stamp.reshape(-1)

        # Round loop. Every numpy call here costs ~1 us regardless of
        # lane count, so the loop body is op-count-austere and works on
        # packed tags only: a way matches its lane's block iff
        # tag XOR (block << 1) <= 1 (equal up to the dirty bit; the
        # sentinel XORs to at least 3 against any packable query). Hit
        # way and LRU victim collapse into ONE argmin over a score
        # matrix (the stamps, with matching ways dropped far below
        # every real stamp): a hit way, when present, always scores
        # lowest; otherwise argmin lands on the scalar loop's victim —
        # the emptiest or least-recent way. The chosen way's old tag
        # then yields the miss flag by the same XOR test, and the
        # promoted/filled value builds hit-first (old tag OR store bit,
        # overwritten with the fill value on miss lanes). Every op
        # writes into a preallocated buffer, and per-lane miss flags
        # and packed victims land in batch-long arrays so fills,
        # writebacks, and miss counts reduce to single vectorized
        # passes afterward. Rounds where every touched set is active —
        # the whole prefix under uniform traffic — iterate reshaped
        # (rounds x m) views via zip, skipping per-round slicing and
        # the row gathers entirely.
        one_u = np.uint64(1)
        # Scalar-operand ufunc calls pay a per-call boxing cost, so the
        # masked-minimum source and the comparison threshold are small
        # preallocated arrays instead.
        neg_big = np.full((m, ways), -(1 << 30), dtype=np.int32)
        ones_v = np.full(m, 1, dtype=np.uint64)
        xm = np.empty((m, ways), dtype=np.uint64)
        eq = np.empty((m, ways), dtype=bool)
        bg = np.empty((m, ways), dtype=np.uint64)
        sg = np.empty((m, ways), dtype=np.int32)
        cw = np.empty(m, dtype=np.intp)
        gi = np.empty(m, dtype=np.intp)
        pv = np.empty(m, dtype=np.uint64)
        tq = np.empty(m, dtype=np.uint64)
        localoff = np.arange(m, dtype=np.intp) * ways
        miss_all = np.empty(n_vec, dtype=bool)
        victims_all = np.empty(n_vec, dtype=np.uint64)
        add = np.add
        xor = np.bitwise_xor
        less_equal = np.less_equal
        greater = np.greater
        copyto = np.copyto
        bor = np.bitwise_or
        take_t = tags_f.take
        is_lru = self._is_lru
        if full_rounds:
            nf = full_rounds
            rounds_iter = zip(
                b2s[:p0].reshape(nf, m, 1),
                b2s[:p0].reshape(nf, m),
                hs[:p0].reshape(nf, m),
                b2h[:p0].reshape(nf, m),
                miss_all[:p0].reshape(nf, m),
                victims_all[:p0].reshape(nf, m),
                np.arange(nf, dtype=np.int32).reshape(nf, 1),
            )
            if is_lru:
                # The poison below lands only on the matched way of hit
                # lanes — exactly the way argmin then chooses — so the
                # end-of-round stamp scatter heals every poisoned entry
                # and the persistent stamp matrix needs no scratch copy.
                for b2d, b2sv, hsv, bhv, msv, vvv, rv in rounds_iter:
                    xor(tags, b2d, out=xm)
                    less_equal(xm, one_u, out=eq)
                    copyto(stamp, neg_big, where=eq)
                    stamp.argmin(axis=1, out=cw)
                    add(cw, localoff, out=gi)
                    take_t(gi, out=vvv)
                    xor(vvv, b2sv, out=tq)
                    greater(tq, ones_v, out=msv)
                    bor(vvv, hsv, out=pv)
                    copyto(pv, bhv, where=msv)
                    tags_f[gi] = pv
                    stamp_f[gi] = rv
            else:
                # FIFO: hits must NOT refresh their stamps (insertion
                # order is the only order), so hit lanes' old stamps
                # must survive the round — poison a scratch copy for
                # the argmin instead of the persistent matrix, and
                # scatter the round stamp into miss lanes only. The
                # argmin still lands on the matched (poisoned) way of a
                # hit lane, so the tag scatter keeps folding the dirty
                # bit into the resident tag.
                scr = np.empty((m, ways), dtype=np.int32)
                for b2d, b2sv, hsv, bhv, msv, vvv, rv in rounds_iter:
                    xor(tags, b2d, out=xm)
                    less_equal(xm, one_u, out=eq)
                    copyto(scr, stamp)
                    copyto(scr, neg_big, where=eq)
                    scr.argmin(axis=1, out=cw)
                    add(cw, localoff, out=gi)
                    take_t(gi, out=vvv)
                    xor(vvv, b2sv, out=tq)
                    greater(tq, ones_v, out=msv)
                    bor(vvv, hsv, out=pv)
                    copyto(pv, bhv, where=msv)
                    tags_f[gi] = pv
                    stamp_f[gi[msv]] = rv
        b2s2d = b2s[:, None]
        seg_l = seg.tolist()
        for r in range(full_rounds, vec_rounds):
            lo = seg_l[r]
            hi = seg_l[r + 1]
            L = hi - lo
            lr = rows_part[lo - p0:hi - p0]
            tg = tags.take(lr, axis=0, out=bg[:L])
            sm = stamp.take(lr, axis=0, out=sg[:L])
            xmv = xm[:L]
            eqv = eq[:L]
            cwv = cw[:L]
            giv = gi[:L]
            pvv = pv[:L]
            tqv = tq[:L]
            msv = miss_all[lo:hi]
            vvv = victims_all[lo:hi]
            xor(tg, b2s2d[lo:hi], out=xmv)
            less_equal(xmv, one_u, out=eqv)
            # sm is already a gathered copy, so poisoning it in place
            # needs no heal.
            copyto(sm, neg_big[:L], where=eqv)
            sm.argmin(axis=1, out=cwv)
            add(cwv, rowsW_part[lo - p0:hi - p0], out=giv)
            take_t(giv, out=vvv)
            xor(vvv, b2s[lo:hi], out=tqv)
            greater(tqv, ones_v[:L], out=msv)
            bor(vvv, hs[lo:hi], out=pvv)
            copyto(pvv, b2h[lo:hi], where=msv)
            tags_f[giv] = pvv
            if is_lru:
                stamp_f[giv] = r
            else:
                stamp_f[giv[msv]] = r

        one = np.uint64(1)
        # Index-based compaction: flatnonzero + take walk the mask once,
        # where boolean fancy indexing would re-scan it per gather.
        mi = np.flatnonzero(miss_all)
        fill_v = orig_v.take(mi)
        # A writeback needs a real (non-sentinel) victim whose packed
        # dirty bit is set; the sentinel's low bit is 1, so both checks
        # are required. Misses are typically a small fraction of lanes,
        # so reduce over the compacted victims rather than every lane.
        vmiss = victims_all.take(mi)
        wbm = vmiss != _SENTINEL
        wbm &= (vmiss & one) != 0
        wi = np.flatnonzero(wbm)
        wb_v = fill_v.take(wi)
        wb_blocks_v = vmiss.take(wi) >> one
        n_sm = int(np.count_nonzero(first_store.take(fill_v)))

        # Write the touched rows back to the canonical per-set lists
        # before the scalar tail resumes mutating them in place. Stamps
        # are unique per row (each round touches a set at most once and
        # stamps at most one of its ways), so descending-stamp order is
        # the exact newest-to-oldest list — MRU-to-LRU, or FIFO
        # insertion order — with empty ways (most negative) at the end.
        ordw = np.argsort(stamp, axis=1)[:, ::-1]
        t_sorted = np.take_along_axis(tags, ordw, axis=1)
        occ = (t_sorted != _SENTINEL).sum(axis=1)
        blocks_out = (t_sorted >> one).tolist()
        for sidx, brow, o in zip(touched_list, blocks_out, occ.tolist()):
            sets[sidx] = brow[:o]
        dirty.difference_update(old_dirty)
        db = (tags & one) != 0
        db &= tags != _SENTINEL
        dd = tags[db]
        if len(dd):
            dirty.update((dd >> one).tolist())

        # Skewed tail: the remaining runs (rank >= vec_rounds) have too
        # few active sets per round to vectorize. Global original-index
        # order preserves per-set rank order (sets are independent), so
        # the scalar loop below is exact.
        tail_fill: list[int] = []
        tail_wb: list[int] = []
        tail_wb_blk: list[int] = []
        if n_vec < n:
            tail = np.sort(orig[n_vec:])
            for j, blk, sidx, nst, fs in zip(
                tail.tolist(),
                run_blocks[tail].tolist(),
                run_sets[tail].tolist(),
                run_stores[tail].tolist(),
                first_store[tail].tolist(),
            ):
                s = sets[sidx]
                if blk in s:
                    if is_lru and s[0] != blk:
                        s.remove(blk)
                        s.insert(0, blk)
                else:
                    if fs:
                        n_sm += 1
                    tail_fill.append(j)
                    s.insert(0, blk)
                    if len(s) > ways:
                        victim = s.pop()
                        if victim in dirty:
                            dirty.discard(victim)
                            tail_wb.append(j)
                            tail_wb_blk.append(victim)
                if nst:
                    dirty.add(blk)

        fill_j = np.concatenate(
            [fill_v, np.asarray(tail_fill, dtype=np.int64)]
        )
        wb_j = np.concatenate([wb_v, np.asarray(tail_wb, dtype=np.int64)])
        wb_blocks = np.concatenate(
            [wb_blocks_v, np.asarray(tail_wb_blk, dtype=np.uint64)]
        )

        n_fill = len(fill_j)
        n_wb = len(wb_j)
        lm = n_fill - n_sm
        stats = self.stats
        stats.load_hits += n_loads - lm
        stats.load_misses += lm
        stats.store_hits += n_stores - n_sm
        stats.store_misses += n_sm
        stats.writebacks += n_wb
        stats.fills += n_fill

        if tel.enabled:
            name = self.config.name
            tel.counter("repro_engine_rounds", level=name).inc(vec_rounds)
            tel.counter("repro_engine_runs", level=name, path="vector").inc(n_vec)
            tel.counter("repro_engine_runs", level=name, path="scalar").inc(
                n - n_vec
            )
            tel.gauge("repro_engine_occupancy", level=name).set(
                n_vec / vec_rounds
            )

        # Scatter emissions back into occurrence order. Every writeback
        # rides on a fill of the same run, so an exclusive cumsum of
        # per-run emission counts (0, 1, or 2) hands each run its first
        # output slot: the fill lands there, the writeback right after.
        # When emissions are dense (miss-heavy batches) this O(n)
        # counting scatter beats the argsort; when they are sparse the
        # argsort over just the emissions wins.
        if (n_fill + n_wb) * 4 > n:
            cnt = np.zeros(n, dtype=np.int8)
            cnt[fill_j] = 1
            cnt[wb_j] = 2
            base = np.empty(n, dtype=np.int64)
            base[0] = 0
            np.cumsum(cnt[:-1], dtype=np.int64, out=base[1:])
            out_blocks = np.empty(n_fill + n_wb, dtype=ADDR_DTYPE)
            out_kinds = np.zeros(n_fill + n_wb, dtype=KIND_DTYPE)
            fpos = base.take(fill_j)
            wpos = base.take(wb_j) + 1
            out_blocks[fpos] = run_blocks.take(fill_j)
            out_blocks[wpos] = wb_blocks
            out_kinds[wpos] = 1
            return out_blocks, out_kinds
        pos = np.concatenate([2 * fill_j, 2 * wb_j + 1])
        emit_order = np.argsort(pos)
        out_blocks = np.concatenate(
            [run_blocks[fill_j].astype(ADDR_DTYPE, copy=False), wb_blocks]
        )[emit_order]
        out_kinds = np.concatenate(
            [
                np.zeros(n_fill, dtype=KIND_DTYPE),
                np.ones(n_wb, dtype=KIND_DTYPE),
            ]
        )[emit_order]
        return out_blocks, out_kinds

    def _process_runs_generic(
        self, run_blocks, run_sets, run_loads, run_stores, first_store
    ):
        """Policy-object loop (FIFO/Random studies)."""
        policy = self._policy
        dirty = self._dirty
        stats = self.stats
        lh = lm = sh = sm = wb = fills = 0
        out_blocks: list[int] = []
        out_kinds: list[int] = []

        for blk, set_idx, nld, nst, fst in zip(
            run_blocks, run_sets, run_loads, run_stores, first_store
        ):
            if policy.lookup(set_idx, blk):
                lh += nld
                sh += nst
            else:
                if fst:
                    sm += 1
                    sh += nst - 1
                    lh += nld
                else:
                    lm += 1
                    lh += nld - 1
                    sh += nst
                fills += 1
                out_blocks.append(blk)
                out_kinds.append(0)
                victim = policy.insert(set_idx, blk)
                if victim is not None and victim in dirty:
                    dirty.discard(victim)
                    wb += 1
                    out_blocks.append(victim)
                    out_kinds.append(1)
            if nst:
                dirty.add(blk)

        stats.load_hits += lh
        stats.load_misses += lm
        stats.store_hits += sh
        stats.store_misses += sm
        stats.writebacks += wb
        stats.fills += fills
        return out_blocks, out_kinds

    def insert_block(self, block: int) -> AccessBatch:
        """Install a block without demand accounting (prefetch fills).

        The block is inserted at MRU position; hit/miss statistics are
        *not* updated (the caller accounts prefetch traffic
        separately). The cache's dirty bookkeeping still applies to the
        displaced victim.

        Returns:
            The writeback requests the displaced victim requires — one
            block (or its dirty sectors, for sectored caches), usually
            empty. Inserting a resident block is a no-op.
        """
        set_index = self._set_index(block)
        if self._inline:
            s = self._sets[set_index]
            if block in s:
                return AccessBatch.empty()
            s.insert(0, block)
            victim = s.pop() if len(s) > self.config.associativity else None
        else:
            if self._policy.lookup(set_index, block):
                return AccessBatch.empty()
            victim = self._policy.insert(set_index, block)
        if victim is None:
            return AccessBatch.empty()
        if self._sectored:
            sectors = self._dirty_sectors.pop(victim, None)
            if not sectors:
                return AccessBatch.empty()
            self.stats.writebacks += len(sectors)
            ordered = sorted(sectors)
            return AccessBatch(
                np.asarray(ordered, dtype=ADDR_DTYPE)
                << np.uint64(self._sector_bits),
                np.full(len(ordered), 1 << self._sector_bits, dtype=SIZE_DTYPE),
                np.ones(len(ordered), dtype=KIND_DTYPE),
            )
        if victim not in self._dirty:
            return AccessBatch.empty()
        self._dirty.discard(victim)
        self.stats.writebacks += 1
        return AccessBatch(
            np.asarray([victim], dtype=ADDR_DTYPE) << np.uint64(self._block_bits),
            np.full(1, self.config.block_size, dtype=SIZE_DTYPE),
            np.ones(1, dtype=KIND_DTYPE),
        )

    def flush_dirty(self) -> AccessBatch:
        """Evict all dirty blocks/sectors, emitting their writebacks.

        Models end-of-run draining ("dirty cache lines eventually make
        their way to the main memory"). The blocks remain resident but
        clean.
        """
        if self._sectored:
            if not self._dirty_sectors:
                return AccessBatch.empty()
            sectors = sorted(
                sec for secs in self._dirty_sectors.values() for sec in secs
            )
            self._dirty_sectors.clear()
            self.stats.writebacks += len(sectors)
            return AccessBatch(
                np.asarray(sectors, dtype=ADDR_DTYPE)
                << np.uint64(self._sector_bits),
                np.full(len(sectors), 1 << self._sector_bits, dtype=SIZE_DTYPE),
                np.ones(len(sectors), dtype=KIND_DTYPE),
            )
        if not self._dirty:
            return AccessBatch.empty()
        blocks = sorted(self._dirty)
        self._dirty.clear()
        self.stats.writebacks += len(blocks)
        return AccessBatch(
            np.asarray(blocks, dtype=ADDR_DTYPE) << np.uint64(self._block_bits),
            np.full(len(blocks), self.config.block_size, dtype=SIZE_DTYPE),
            np.ones(len(blocks), dtype=KIND_DTYPE),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SetAssociativeCache({self.config.describe()})"


def check_request_sizes(batch: AccessBatch, block_size: int, name: str) -> None:
    """Raise if any request exceeds the level's block size (would imply
    a mis-ordered hierarchy)."""
    if len(batch) and int(batch.sizes.max()) > block_size:
        raise SimulationError(
            f"request of {int(batch.sizes.max())} B exceeds {name} block size "
            f"{block_size} B — hierarchy granularities must be non-decreasing"
        )

"""The set-associative cache engine.

Design notes (performance):

- Streams arrive as NumPy batches. Everything that does not carry a
  serial dependence — block extraction, run-boundary detection, per-run
  load/store counting — is vectorized.
- The replacement state update *is* serially dependent, so it runs in a
  tight Python loop. To keep that loop short, consecutive accesses to
  the same block are collapsed into one *run* first: under
  write-allocate, every access of a run after the first is a guaranteed
  hit, so a single probe per run reproduces exact hit/miss counts and
  exact LRU state. Real traces are dominated by such runs (e.g. eight
  consecutive 8-byte element accesses per 64-byte line in a unit-stride
  sweep), which typically shrinks the loop by 3–8x.
- LRU (the paper's policy) is specialized inline with per-set Python
  lists; other policies go through the pluggable
  :mod:`~repro.cache.replacement` engines.

Semantics: write-back, write-allocate. A store to an absent block
fills it (counted as a miss of store kind) and marks it dirty; evicting
a dirty block emits a writeback request to the level below. Fill
requests propagate as loads of ``block_size`` bytes, writebacks as
stores of ``block_size`` bytes — this is the paper's extension that
lets NVM main memory see its true read/write mix.
"""

from __future__ import annotations

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.replacement import make_policy
from repro.cache.stats import LevelStats
from repro.errors import SimulationError
from repro.trace.events import ADDR_DTYPE, KIND_DTYPE, SIZE_DTYPE, AccessBatch
from repro.units import log2_int


class SetAssociativeCache:
    """One write-back, write-allocate set-associative cache level."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = LevelStats(name=config.name)
        self._block_bits = log2_int(config.block_size)
        self._set_mask = config.num_sets - 1
        self._hashed = config.hashed_sets
        self._sectored = (
            config.sector_size is not None
            and config.sector_size < config.block_size
        )
        if self._sectored:
            self._sector_bits = log2_int(config.sector_size)
            #: block number -> set of dirty global sector numbers.
            self._dirty_sectors: dict[int, set[int]] = {}
            self._dirty: set[int] = set()
        else:
            self._sector_bits = self._block_bits
            self._dirty_sectors = {}
            self._dirty = set()
        self._is_lru = config.policy == "lru"
        if self._is_lru:
            self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
            self._policy = None
        else:
            self._sets = []
            self._policy = make_policy(
                config.policy, config.num_sets, config.associativity
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Level label."""
        return self.config.name

    @property
    def block_size(self) -> int:
        """Allocation granularity in bytes."""
        return self.config.block_size

    def _set_index(self, block: int) -> int:
        """Set index of a block (bit-sliced, or multiplicative hash)."""
        if self._hashed:
            return ((block * 2654435761) >> 15) & self._set_mask
        return block & self._set_mask

    def resident_blocks(self) -> int:
        """Number of blocks currently cached (diagnostics/tests)."""
        if self._is_lru:
            return sum(len(s) for s in self._sets)
        return sum(
            len(self._policy.contents(i)) for i in range(self.config.num_sets)
        )

    def contains(self, address: int) -> bool:
        """True iff the block holding byte ``address`` is resident."""
        block = address >> self._block_bits
        set_index = self._set_index(block)
        if self._is_lru:
            return block in self._sets[set_index]
        return block in self._policy.contents(set_index)

    def is_dirty(self, address: int) -> bool:
        """True iff the block (sectored: the sector) holding byte
        ``address`` is dirty."""
        if self._sectored:
            block = address >> self._block_bits
            sector = address >> self._sector_bits
            return sector in self._dirty_sectors.get(block, ())
        return (address >> self._block_bits) in self._dirty

    def reset(self) -> None:
        """Return to a cold cache with zeroed statistics."""
        self.stats = LevelStats(name=self.config.name)
        self._dirty.clear()
        self._dirty_sectors.clear()
        if self._is_lru:
            self._sets = [[] for _ in range(self.config.num_sets)]
        else:
            self._policy.reset()

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def process(self, batch: AccessBatch) -> AccessBatch:
        """Run a request batch through the cache.

        Args:
            batch: requests arriving from the level above (byte
                addresses, sizes, kinds). Request sizes must not exceed
                this cache's block size (upper levels have smaller or
                equal granularity by construction).

        Returns:
            The request batch this level emits toward the level below:
            fills (loads of one block) and dirty-eviction writebacks
            (stores of one block), in occurrence order.
        """
        n = len(batch)
        if n == 0:
            return AccessBatch.empty()

        stats = self.stats
        is_store = batch.is_store
        n_stores = int(np.count_nonzero(is_store))
        stats.loads += n - n_stores
        stats.stores += n_stores
        sizes64 = batch.sizes.astype(np.int64)
        store_bytes = int(sizes64[is_store != 0].sum())
        stats.store_bits += 8 * store_bytes
        stats.load_bits += 8 * (int(sizes64.sum()) - store_bytes)

        # Run-length collapse: one probe per run of equal units. The
        # unit is the block, or the sector for sectored caches (so the
        # loop can mark per-sector dirty state exactly in access order).
        unit_bits = self._sector_bits if self._sectored else self._block_bits
        units = batch.addresses >> np.uint64(unit_bits)
        change = np.empty(n, dtype=bool)
        change[0] = True
        np.not_equal(units[1:], units[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        counts = np.diff(starts, append=n)
        store_cum = np.concatenate(
            [[0], np.cumsum(is_store, dtype=np.int64)]
        )
        run_stores = store_cum[starts + counts] - store_cum[starts]
        run_units = units[starts]
        first_store = is_store[starts]
        run_loads = counts - run_stores

        # Set indices, vectorized. The serial loops used to evaluate
        # ``(blk * 2654435761) >> 15 & mask`` per run in Python — the
        # product exceeds 64 bits, so every probe paid for big-int
        # allocation. uint64 wrap-around keeps the low 64 bits exact,
        # and the masked bits (15 .. 15 + set bits) all live there, so
        # the mapping is bit-identical.
        run_blocks = (
            run_units >> np.uint64(self._block_bits - self._sector_bits)
            if self._sectored
            else run_units
        )
        if self._hashed:
            run_sets = (
                (run_blocks * np.uint64(2654435761)) >> np.uint64(15)
            ) & np.uint64(self._set_mask)
        else:
            run_sets = run_blocks & np.uint64(self._set_mask)

        if self._sectored:
            out_units, out_kinds, out_sizes = self._process_runs_sectored(
                run_units.tolist(),
                run_blocks.tolist(),
                run_sets.tolist(),
                run_loads.tolist(),
                run_stores.tolist(),
                first_store.tolist(),
            )
            if not out_units:
                return AccessBatch.empty()
            return AccessBatch(
                np.asarray(out_units, dtype=ADDR_DTYPE),
                np.asarray(out_sizes, dtype=SIZE_DTYPE),
                np.asarray(out_kinds, dtype=KIND_DTYPE),
            )

        if self._is_lru:
            out_blocks, out_kinds = self._process_runs_lru(
                run_units.tolist(),
                run_sets.tolist(),
                run_loads.tolist(),
                run_stores.tolist(),
                first_store.tolist(),
            )
        else:
            out_blocks, out_kinds = self._process_runs_generic(
                run_units.tolist(),
                run_sets.tolist(),
                run_loads.tolist(),
                run_stores.tolist(),
                first_store.tolist(),
            )

        if not out_blocks:
            return AccessBatch.empty()
        out_addr = np.asarray(out_blocks, dtype=ADDR_DTYPE) << np.uint64(
            self._block_bits
        )
        return AccessBatch(
            out_addr,
            np.full(len(out_blocks), self.config.block_size, dtype=SIZE_DTYPE),
            np.asarray(out_kinds, dtype=KIND_DTYPE),
        )

    def _process_runs_sectored(
        self, run_sectors, run_blocks, run_sets, run_loads, run_stores,
        first_store,
    ):
        """Sectored hot loop: page-granularity allocation, sector-
        granularity dirty tracking (LRU or pluggable policy).

        Fill requests are full blocks (the page is the allocation
        unit); dirty-eviction writebacks are one request per dirty
        sector — the paper's "dirty cache line" accounting. Block
        numbers, set indices, and per-run load counts arrive
        precomputed (vectorized in :meth:`process`).
        """
        sector_bytes = 1 << self._sector_bits
        block_bytes = self.config.block_size
        sector_to_addr = self._sector_bits
        dirty = self._dirty_sectors
        stats = self.stats
        is_lru = self._is_lru
        sets = self._sets if is_lru else None
        policy = self._policy
        ways = self.config.associativity
        lh = lm = sh = sm = wb = fills = 0
        out_addrs: list[int] = []
        out_kinds: list[int] = []
        out_sizes: list[int] = []

        for sec, blk, sidx, nld, nst, fst in zip(
            run_sectors, run_blocks, run_sets, run_loads, run_stores,
            first_store,
        ):
            if is_lru:
                s = sets[sidx]
                if blk in s:
                    if s[0] != blk:
                        s.remove(blk)
                        s.insert(0, blk)
                    hit = True
                else:
                    hit = False
            else:
                hit = policy.lookup(sidx, blk)
            if hit:
                lh += nld
                sh += nst
            else:
                if fst:
                    sm += 1
                    sh += nst - 1
                    lh += nld
                else:
                    lm += 1
                    lh += nld - 1
                    sh += nst
                fills += 1
                out_addrs.append(blk << self._block_bits)
                out_kinds.append(0)
                out_sizes.append(block_bytes)
                if is_lru:
                    s.insert(0, blk)
                    victim = s.pop() if len(s) > ways else None
                else:
                    victim = policy.insert(sidx, blk)
                if victim is not None:
                    victim_sectors = dirty.pop(victim, None)
                    if victim_sectors:
                        wb += len(victim_sectors)
                        for vsec in sorted(victim_sectors):
                            out_addrs.append(vsec << sector_to_addr)
                            out_kinds.append(1)
                            out_sizes.append(sector_bytes)
            if nst:
                entry = dirty.get(blk)
                if entry is None:
                    dirty[blk] = {sec}
                else:
                    entry.add(sec)

        stats.load_hits += lh
        stats.load_misses += lm
        stats.store_hits += sh
        stats.store_misses += sm
        stats.writebacks += wb
        stats.fills += fills
        return out_addrs, out_kinds, out_sizes

    def _process_runs_lru(
        self, run_blocks, run_sets, run_loads, run_stores, first_store
    ):
        """Inline-LRU hot loop. Local-variable bound for speed; set
        indices and per-run load counts arrive precomputed."""
        sets = self._sets
        dirty = self._dirty
        ways = self.config.associativity
        stats = self.stats
        lh = lm = sh = sm = wb = fills = 0
        out_blocks: list[int] = []
        out_kinds: list[int] = []
        append_b = out_blocks.append
        append_k = out_kinds.append
        dirty_add = dirty.add

        for blk, sidx, nld, nst, fst in zip(
            run_blocks, run_sets, run_loads, run_stores, first_store
        ):
            s = sets[sidx]
            if blk in s:
                if s[0] != blk:
                    s.remove(blk)
                    s.insert(0, blk)
                lh += nld
                sh += nst
            else:
                # Miss charged to the run's first access; the rest of
                # the run hits the freshly filled block.
                if fst:
                    sm += 1
                    sh += nst - 1
                    lh += nld
                else:
                    lm += 1
                    lh += nld - 1
                    sh += nst
                fills += 1
                append_b(blk)
                append_k(0)
                s.insert(0, blk)
                if len(s) > ways:
                    victim = s.pop()
                    if victim in dirty:
                        dirty.discard(victim)
                        wb += 1
                        append_b(victim)
                        append_k(1)
            if nst:
                dirty_add(blk)

        stats.load_hits += lh
        stats.load_misses += lm
        stats.store_hits += sh
        stats.store_misses += sm
        stats.writebacks += wb
        stats.fills += fills
        return out_blocks, out_kinds

    def _process_runs_generic(
        self, run_blocks, run_sets, run_loads, run_stores, first_store
    ):
        """Policy-object loop (FIFO/Random studies)."""
        policy = self._policy
        dirty = self._dirty
        stats = self.stats
        lh = lm = sh = sm = wb = fills = 0
        out_blocks: list[int] = []
        out_kinds: list[int] = []

        for blk, set_idx, nld, nst, fst in zip(
            run_blocks, run_sets, run_loads, run_stores, first_store
        ):
            if policy.lookup(set_idx, blk):
                lh += nld
                sh += nst
            else:
                if fst:
                    sm += 1
                    sh += nst - 1
                    lh += nld
                else:
                    lm += 1
                    lh += nld - 1
                    sh += nst
                fills += 1
                out_blocks.append(blk)
                out_kinds.append(0)
                victim = policy.insert(set_idx, blk)
                if victim is not None and victim in dirty:
                    dirty.discard(victim)
                    wb += 1
                    out_blocks.append(victim)
                    out_kinds.append(1)
            if nst:
                dirty.add(blk)

        stats.load_hits += lh
        stats.load_misses += lm
        stats.store_hits += sh
        stats.store_misses += sm
        stats.writebacks += wb
        stats.fills += fills
        return out_blocks, out_kinds

    def insert_block(self, block: int) -> AccessBatch:
        """Install a block without demand accounting (prefetch fills).

        The block is inserted at MRU position; hit/miss statistics are
        *not* updated (the caller accounts prefetch traffic
        separately). The cache's dirty bookkeeping still applies to the
        displaced victim.

        Returns:
            The writeback requests the displaced victim requires — one
            block (or its dirty sectors, for sectored caches), usually
            empty. Inserting a resident block is a no-op.
        """
        set_index = self._set_index(block)
        if self._is_lru:
            s = self._sets[set_index]
            if block in s:
                return AccessBatch.empty()
            s.insert(0, block)
            victim = s.pop() if len(s) > self.config.associativity else None
        else:
            if self._policy.lookup(set_index, block):
                return AccessBatch.empty()
            victim = self._policy.insert(set_index, block)
        if victim is None:
            return AccessBatch.empty()
        if self._sectored:
            sectors = self._dirty_sectors.pop(victim, None)
            if not sectors:
                return AccessBatch.empty()
            self.stats.writebacks += len(sectors)
            ordered = sorted(sectors)
            return AccessBatch(
                np.asarray(ordered, dtype=ADDR_DTYPE)
                << np.uint64(self._sector_bits),
                np.full(len(ordered), 1 << self._sector_bits, dtype=SIZE_DTYPE),
                np.ones(len(ordered), dtype=KIND_DTYPE),
            )
        if victim not in self._dirty:
            return AccessBatch.empty()
        self._dirty.discard(victim)
        self.stats.writebacks += 1
        return AccessBatch(
            np.asarray([victim], dtype=ADDR_DTYPE) << np.uint64(self._block_bits),
            np.full(1, self.config.block_size, dtype=SIZE_DTYPE),
            np.ones(1, dtype=KIND_DTYPE),
        )

    def flush_dirty(self) -> AccessBatch:
        """Evict all dirty blocks/sectors, emitting their writebacks.

        Models end-of-run draining ("dirty cache lines eventually make
        their way to the main memory"). The blocks remain resident but
        clean.
        """
        if self._sectored:
            if not self._dirty_sectors:
                return AccessBatch.empty()
            sectors = sorted(
                sec for secs in self._dirty_sectors.values() for sec in secs
            )
            self._dirty_sectors.clear()
            self.stats.writebacks += len(sectors)
            return AccessBatch(
                np.asarray(sectors, dtype=ADDR_DTYPE)
                << np.uint64(self._sector_bits),
                np.full(len(sectors), 1 << self._sector_bits, dtype=SIZE_DTYPE),
                np.ones(len(sectors), dtype=KIND_DTYPE),
            )
        if not self._dirty:
            return AccessBatch.empty()
        blocks = sorted(self._dirty)
        self._dirty.clear()
        self.stats.writebacks += len(blocks)
        return AccessBatch(
            np.asarray(blocks, dtype=ADDR_DTYPE) << np.uint64(self._block_bits),
            np.full(len(blocks), self.config.block_size, dtype=SIZE_DTYPE),
            np.ones(len(blocks), dtype=KIND_DTYPE),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SetAssociativeCache({self.config.describe()})"


def check_request_sizes(batch: AccessBatch, block_size: int, name: str) -> None:
    """Raise if any request exceeds the level's block size (would imply
    a mis-ordered hierarchy)."""
    if len(batch) and int(batch.sizes.max()) > block_size:
        raise SimulationError(
            f"request of {int(batch.sizes.max())} B exceeds {name} block size "
            f"{block_size} B — hierarchy granularities must be non-decreasing"
        )

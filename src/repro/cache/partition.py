"""Partitioned main memory for the NDM (NVM+DRAM) design.

The paper's NDM design splits the virtual address space between DRAM
and NVM: "frequently accessed and updated objects are stored in DRAM,
while the rest are stored in NVM", with an oracle choosing the
partition. :class:`PartitionedMemory` implements the mechanism: requests
are routed by address range to one of two (or more) terminal devices,
each keeping its own statistics so the model can charge DRAM and NVM
delays/energies to exactly the traffic each received.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.mainmem import MainMemory
from repro.cache.stats import LevelStats
from repro.errors import ConfigError
from repro.trace.events import AccessBatch


@dataclass(frozen=True)
class RoutingRule:
    """Route addresses in ``[start, end)`` to device ``device_index``."""

    start: int
    end: int
    device_index: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigError(f"empty routing range [{self.start}, {self.end})")
        if self.device_index < 0:
            raise ConfigError("device_index must be non-negative")


class PartitionedMemory:
    """Address-range router over multiple terminal memory devices.

    Args:
        devices: terminal devices; ``devices[default_device]`` receives
            any address not matched by a rule.
        rules: routing rules, applied in order (first match wins).
        default_device: index of the fall-through device.
    """

    def __init__(
        self,
        devices: list[MainMemory],
        rules: list[RoutingRule],
        default_device: int = 0,
    ) -> None:
        if not devices:
            raise ConfigError("PartitionedMemory needs at least one device")
        if not 0 <= default_device < len(devices):
            raise ConfigError("default_device out of range")
        for rule in rules:
            if rule.device_index >= len(devices):
                raise ConfigError(
                    f"rule routes to device {rule.device_index} but only "
                    f"{len(devices)} devices exist"
                )
        self.devices = devices
        self.rules = list(rules)
        self.default_device = default_device

    @property
    def name(self) -> str:
        """Composite label of the partitioned memory."""
        return "+".join(d.name for d in self.devices)

    def route(self, addresses: np.ndarray) -> np.ndarray:
        """Device index for each address (vectorized, first match wins)."""
        out = np.full(len(addresses), self.default_device, dtype=np.int64)
        unassigned = np.ones(len(addresses), dtype=bool)
        for rule in self.rules:
            mask = (
                unassigned
                & (addresses >= np.uint64(rule.start))
                & (addresses < np.uint64(rule.end))
            )
            out[mask] = rule.device_index
            unassigned &= ~mask
        return out

    def process(self, batch: AccessBatch) -> AccessBatch:
        """Split a request batch across the devices."""
        if len(batch) == 0:
            return AccessBatch.empty()
        routes = self.route(batch.addresses)
        for idx, device in enumerate(self.devices):
            mask = routes == idx
            if mask.any():
                device.process(
                    AccessBatch(
                        batch.addresses[mask],
                        batch.sizes[mask],
                        batch.is_store[mask],
                    )
                )
        return AccessBatch.empty()

    @property
    def stats_list(self) -> list[LevelStats]:
        """Per-device stats, in device order."""
        return [d.stats for d in self.devices]

    def reset(self) -> None:
        """Zero all device counters."""
        for device in self.devices:
            device.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartitionedMemory({self.name}, rules={len(self.rules)})"

"""Summarize a telemetry directory into a human-readable report.

``python -m repro.experiments telemetry report DIR`` reads what a run
wrote — ``events.jsonl``, ``windows_*.csv``, ``metrics.prom`` — and
renders: event counts by kind, per-span duration statistics, and a
per-stage window digest (windows, references, per-level hit rate and
demanded bandwidth). Pure reader: it never mutates the directory.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import TelemetryError
from repro.telemetry.core import EVENTS_FILE, METRICS_FILE
from repro.telemetry.exporters import read_jsonl, read_windows_csv
from repro.telemetry.profiling import (
    PROFILE_FILE,
    HotspotDigest,
    hotspot_digests,
    read_profile,
    total_samples,
)
from repro.telemetry.registry import unescape_label_value
from repro.telemetry.windows import WindowRecord

#: Functions listed per stage in the report's hotspots section.
HOTSPOT_TOP = 5


@dataclass
class SpanDigest:
    """Aggregate statistics for one span name.

    Attributes:
        name: span name.
        count: finished spans.
        total_s / mean_s / max_s: duration aggregates, seconds.
    """

    name: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        """Mean duration (0.0 when no spans finished)."""
        return self.total_s / self.count if self.count else 0.0


@dataclass
class LevelDigest:
    """Per-level aggregate over one stage's windows.

    Attributes:
        level: hierarchy level name.
        accesses / hits / bytes_moved / writebacks: window sums.
    """

    level: str
    accesses: int = 0
    hits: int = 0
    bytes_moved: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        """Overall hit fraction across the stage's windows."""
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class StageWindows:
    """One stage's window time-series digest.

    Attributes:
        context: stage label (from the CSV file name).
        windows: number of emitted windows.
        refs: top-level references covered.
        levels: per-level digests, top to bottom.
    """

    context: str
    windows: int
    refs: int
    levels: list[LevelDigest] = field(default_factory=list)


@dataclass
class EngineDigest:
    """Per-level cache-engine activity digest.

    Built from ``engine_selected`` events (which engine each level
    resolved to) joined with the ``repro_engine_*`` counters/gauges in
    the Prometheus snapshot (how much work the set-parallel fast path
    actually absorbed).

    Attributes:
        level: hierarchy level name.
        engine: resolved engine (``"scalar"`` or ``"setpar"``).
        policy: the level's replacement policy.
        rounds: total vectorized rounds executed.
        runs_vector / runs_scalar: collapsed runs taken by the
            vectorized rounds vs the scalar loop (fallbacks + tails).
        occupancy: mean active lanes per round of the last batch
            (0.0 when the level never went vectorized).
    """

    level: str
    engine: str = "?"
    policy: str = ""
    rounds: int = 0
    runs_vector: int = 0
    runs_scalar: int = 0
    occupancy: float = 0.0

    @property
    def vector_fraction(self) -> float:
        """Fraction of collapsed runs handled by vectorized rounds."""
        total = self.runs_vector + self.runs_scalar
        return self.runs_vector / total if total else 0.0


@dataclass
class SupervisionDigest:
    """Worker-pool supervision activity extracted from the event log.

    Counts the supervised pool's lifecycle events
    (:mod:`repro.resilience.pool`): a campaign that needed no
    supervision renders no section at all.

    Attributes:
        spawned / died / respawned: worker process lifecycle counts.
        requeued: in-flight cells recovered from dead workers.
        poisoned: cells quarantined after killing successive workers.
        hung: watchdog escalations (soft-cancel / SIGTERM / SIGKILL).
        drains: graceful SIGINT/SIGTERM drains.
        exhausted: pool-exhaustion events (restart budget spent).
    """

    spawned: int = 0
    died: int = 0
    respawned: int = 0
    requeued: int = 0
    poisoned: int = 0
    hung: int = 0
    drains: int = 0
    exhausted: int = 0

    @property
    def any(self) -> bool:
        """Whether any supervision beyond initial spawns happened."""
        return bool(
            self.died or self.respawned or self.requeued
            or self.poisoned or self.hung or self.drains
            or self.exhausted
        )


#: event kind -> SupervisionDigest attribute incremented per event.
_SUPERVISION_EVENTS = {
    "worker_spawned": "spawned",
    "worker_died": "died",
    "worker_respawned": "respawned",
    "cell_requeued": "requeued",
    "cell_poisoned": "poisoned",
    "worker_hung": "hung",
    "pool_drain": "drains",
    "pool_exhausted": "exhausted",
}


def supervision_digest(events_by_kind: dict[str, int]) -> SupervisionDigest:
    """Fold event-kind counts into a :class:`SupervisionDigest`."""
    digest = SupervisionDigest()
    for kind, attr in _SUPERVISION_EVENTS.items():
        setattr(digest, attr, events_by_kind.get(kind, 0))
    return digest


@dataclass
class TelemetrySummary:
    """Everything :func:`summarize_directory` extracts.

    Attributes:
        directory: the summarized path.
        events_by_kind: event counts from ``events.jsonl``.
        spans: per-name span digests, by descending total time.
        stages: per-stage window digests, by context.
        engines: per-level cache-engine digests, by level name.
        supervision: worker-pool supervision digest.
        metrics_lines: number of lines in the Prometheus snapshot.
        hotspots: sampled-profiler top functions per stage (empty when
            the run was not profiled).
        profile_samples: total profiler samples behind the hotspots.
    """

    directory: Path
    events_by_kind: dict[str, int] = field(default_factory=dict)
    spans: list[SpanDigest] = field(default_factory=list)
    stages: list[StageWindows] = field(default_factory=list)
    engines: list[EngineDigest] = field(default_factory=list)
    supervision: SupervisionDigest = field(
        default_factory=SupervisionDigest
    )
    metrics_lines: int = 0
    hotspots: list[HotspotDigest] = field(default_factory=list)
    profile_samples: int = 0


def _digest_windows(context: str, records: list[WindowRecord]) -> StageWindows:
    by_level: dict[str, LevelDigest] = {}
    refs = 0
    windows = 0
    for record in records:
        windows = max(windows, record.index + 1)
        refs = max(refs, record.end_refs)
        digest = by_level.setdefault(record.level, LevelDigest(record.level))
        digest.accesses += record.accesses
        digest.hits += record.hits
        digest.bytes_moved += record.bytes_moved
        digest.writebacks += record.writebacks
    return StageWindows(
        context=context, windows=windows, refs=refs,
        levels=list(by_level.values()),
    )


#: ``name{label="a",other="b"} value`` — the exposition-format shape
#: :meth:`MetricsRegistry.render_prometheus` writes for scalars. The
#: label body is matched greedily up to the *last* ``}`` so escaped
#: values containing ``}`` cannot truncate the match.
_PROM_LINE = re.compile(r"^(\w+)(?:\{(.*)\})?\s+(\S+)$")
_PROM_LABEL = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def _parse_prom_line(line: str) -> tuple[str, dict[str, str], float] | None:
    """``(name, labels, value)`` of one exposition line, else None."""
    match = _PROM_LINE.match(line.strip())
    if not match:
        return None
    name, label_body, raw = match.groups()
    try:
        value = float(raw)
    except ValueError:
        return None
    labels = {
        k: unescape_label_value(v)
        for k, v in _PROM_LABEL.findall(label_body or "")
    }
    return name, labels, value


def _digest_engines(
    events: list[dict], metrics_text: str
) -> list[EngineDigest]:
    by_level: dict[str, EngineDigest] = {}

    def digest(level: str) -> EngineDigest:
        return by_level.setdefault(level, EngineDigest(level))

    for event in events:
        d = digest(str(event.get("level", "?")))
        d.engine = str(event.get("engine", "?"))
        d.policy = str(event.get("policy", ""))

    for line in metrics_text.splitlines():
        parsed = _parse_prom_line(line)
        if parsed is None:
            continue
        name, labels, value = parsed
        if not name.startswith("repro_engine_") or "level" not in labels:
            continue
        d = digest(labels["level"])
        if name == "repro_engine_rounds":
            d.rounds = int(value)
        elif name == "repro_engine_occupancy":
            d.occupancy = value
        elif name == "repro_engine_runs":
            if labels.get("path") == "vector":
                d.runs_vector = int(value)
            else:
                d.runs_scalar = int(value)
    return sorted(by_level.values(), key=lambda d: d.level)


def summarize_directory(directory: str | Path) -> TelemetrySummary:
    """Read a telemetry directory into a :class:`TelemetrySummary`.

    Raises:
        TelemetryError: when the directory does not exist.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise TelemetryError(f"no telemetry directory at {directory}")
    summary = TelemetrySummary(directory=directory)

    events_path = directory / EVENTS_FILE
    spans: dict[str, SpanDigest] = {}
    engine_events: list[dict] = []
    if events_path.exists():
        for event in read_jsonl(events_path):
            kind = str(event.get("kind", "event"))
            summary.events_by_kind[kind] = (
                summary.events_by_kind.get(kind, 0) + 1
            )
            if kind == "span" and "name" in event:
                digest = spans.setdefault(
                    event["name"], SpanDigest(event["name"])
                )
                duration = float(event.get("duration_s", 0.0))
                digest.count += 1
                digest.total_s += duration
                digest.max_s = max(digest.max_s, duration)
            elif kind == "engine_selected":
                engine_events.append(event)
    summary.spans = sorted(
        spans.values(), key=lambda d: d.total_s, reverse=True
    )

    for csv_path in sorted(directory.glob("windows_*.csv")):
        context = csv_path.stem[len("windows_"):]
        summary.stages.append(
            _digest_windows(context, read_windows_csv(csv_path))
        )

    metrics_text = ""
    metrics_path = directory / METRICS_FILE
    if metrics_path.exists():
        metrics_text = metrics_path.read_text()
        summary.metrics_lines = len(
            [l for l in metrics_text.splitlines() if l.strip()]
        )
    summary.engines = _digest_engines(engine_events, metrics_text)
    summary.supervision = supervision_digest(summary.events_by_kind)

    profile_records = read_profile(directory / PROFILE_FILE)
    summary.profile_samples = total_samples(profile_records)
    summary.hotspots = hotspot_digests(profile_records, top=HOTSPOT_TOP)
    return summary


def summary_to_dict(summary: TelemetrySummary) -> dict:
    """The summary as a JSON-serializable dict (``report --json``).

    Shares the exact aggregation the text renderer consumes — spans,
    stages, engines, supervision, hotspots — so machine consumers (the
    live progress API, the future campaign server) read the same
    structure the human report prints. Derived ratios (mean durations,
    hit rates, vector fractions) are materialized so consumers need no
    re-computation.
    """
    return {
        "directory": str(summary.directory),
        "events_by_kind": dict(sorted(summary.events_by_kind.items())),
        "spans": [
            {
                "name": d.name,
                "count": d.count,
                "total_s": d.total_s,
                "mean_s": d.mean_s,
                "max_s": d.max_s,
            }
            for d in summary.spans
        ],
        "stages": [
            {
                "context": stage.context,
                "windows": stage.windows,
                "refs": stage.refs,
                "levels": [
                    {
                        "level": d.level,
                        "accesses": d.accesses,
                        "hits": d.hits,
                        "hit_rate": d.hit_rate,
                        "bytes_moved": d.bytes_moved,
                        "writebacks": d.writebacks,
                    }
                    for d in stage.levels
                ],
            }
            for stage in summary.stages
        ],
        "engines": [
            {
                "level": d.level,
                "engine": d.engine,
                "policy": d.policy,
                "rounds": d.rounds,
                "runs_vector": d.runs_vector,
                "runs_scalar": d.runs_scalar,
                "vector_fraction": d.vector_fraction,
                "occupancy": d.occupancy,
            }
            for d in summary.engines
        ],
        "supervision": {
            attr: getattr(summary.supervision, attr)
            for attr in (
                "spawned", "died", "respawned", "requeued",
                "poisoned", "hung", "drains", "exhausted",
            )
        },
        "hotspots": [
            {
                "stage": d.stage,
                "function": d.function,
                "samples": d.samples,
                "share": d.share,
            }
            for d in summary.hotspots
        ],
        "profile_samples": summary.profile_samples,
        "metrics_lines": summary.metrics_lines,
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _table(headers: list[str], rows: list[list[str]]) -> str:
    """Minimal left-aligned ASCII table (self-contained on purpose:
    keeps :mod:`repro.telemetry` free of :mod:`repro.experiments`)."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def line(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths)).rstrip()
    rule = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), rule] + [line(r) for r in rows])


def render_summary(summary: TelemetrySummary) -> str:
    """The summary as a multi-section plain-text report."""
    sections = [f"telemetry report: {summary.directory}"]

    if summary.events_by_kind:
        rows = [
            [kind, str(count)]
            for kind, count in sorted(summary.events_by_kind.items())
        ]
        sections.append("events\n" + _table(["kind", "count"], rows))
    else:
        sections.append("events: none recorded")

    if summary.spans:
        rows = [
            [
                d.name, str(d.count), f"{d.total_s:.3f}",
                f"{d.mean_s:.3f}", f"{d.max_s:.3f}",
            ]
            for d in summary.spans
        ]
        sections.append(
            "spans (seconds)\n"
            + _table(["span", "count", "total", "mean", "max"], rows)
        )

    for stage in summary.stages:
        rows = [
            [
                d.level, str(d.accesses), f"{d.hit_rate:.4f}",
                str(d.bytes_moved), str(d.writebacks),
            ]
            for d in stage.levels
        ]
        sections.append(
            f"windows [{stage.context}]: {stage.windows} window(s), "
            f"{stage.refs:,} refs\n"
            + _table(
                ["level", "accesses", "hit_rate", "bytes", "writebacks"],
                rows,
            )
        )

    if summary.engines:
        rows = [
            [
                d.level, d.engine, d.policy, str(d.rounds),
                str(d.runs_vector), str(d.runs_scalar),
                f"{d.vector_fraction:.3f}", f"{d.occupancy:.1f}",
            ]
            for d in summary.engines
        ]
        sections.append(
            "cache engines\n"
            + _table(
                [
                    "level", "engine", "policy", "rounds", "vec_runs",
                    "scalar_runs", "vec_frac", "occupancy",
                ],
                rows,
            )
        )

    if summary.hotspots:
        rows = [
            [d.stage, d.function, str(d.samples), f"{d.share:.1%}"]
            for d in summary.hotspots
        ]
        sections.append(
            f"hotspots (top {HOTSPOT_TOP} functions by inclusive "
            f"samples, {summary.profile_samples} sample(s))\n"
            + _table(["stage", "function", "samples", "share"], rows)
        )

    if summary.supervision.any:
        s = summary.supervision
        rows = [
            ["workers spawned", str(s.spawned)],
            ["workers died", str(s.died)],
            ["workers respawned", str(s.respawned)],
            ["cells requeued", str(s.requeued)],
            ["cells poisoned", str(s.poisoned)],
            ["watchdog escalations", str(s.hung)],
            ["graceful drains", str(s.drains)],
            ["pool exhaustions", str(s.exhausted)],
        ]
        sections.append(
            "supervision\n" + _table(["event", "count"], rows)
        )

    if summary.metrics_lines:
        sections.append(
            f"metrics snapshot: {summary.metrics_lines} lines "
            f"({METRICS_FILE})"
        )
    return "\n\n".join(sections)

"""Metric instruments and the registry that owns them.

Three instrument kinds, mirroring the Prometheus data model the HPC
monitoring stacks this reproduction targets already speak:

- :class:`Counter` — monotonically increasing count (cells evaluated,
  retries consumed, references simulated);
- :class:`Gauge` — a value that goes up and down (sweep queue depth);
- :class:`Histogram` — fixed-bucket distribution (span durations,
  per-cell wall time).

Instruments are owned by a :class:`MetricsRegistry` and keyed by
``(name, labels)``, so ``registry.counter("repro_sweep_cells_total",
status="ok")`` always returns the same instrument. A
:class:`NullRegistry` provides the same surface with no-op instruments
so disabled telemetry costs nothing but a method call — and the hot
simulate loop does not even pay that (see
:mod:`repro.telemetry.windows`: the observer hook is a single
``is not None`` check per chunk).

All mutation is guarded by a registry-wide lock: sweep cells may run on
daemon threads under a deadline, and abandoned attempts can outlive
their cell.
"""

from __future__ import annotations

import logging
import math
import re
import threading
from typing import Iterable

from repro.errors import TelemetryError

logger = logging.getLogger("repro.telemetry")

#: Default histogram bucket upper bounds (seconds-oriented).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 600.0
)

#: Default cardinality cap: distinct (name, labels) series a registry
#: will create before it starts dropping new ones. Generous — a full
#: sweep today stays in the low hundreds — but finite, so a label
#: explosion (e.g. a unique id leaking into a label value) degrades to
#: dropped series instead of an unbounded metrics.prom.
DEFAULT_SERIES_CAP = 4096

#: Counter bumped once per series dropped by the cardinality guard.
DROPPED_SERIES_METRIC = "repro_telemetry_dropped_series"

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise TelemetryError(
            f"invalid metric name {name!r}: use [a-zA-Z0-9_:] only"
        )


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict[str, str], lock: threading.Lock):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict[str, str], lock: threading.Lock):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)


class Histogram:
    """A fixed-bucket histogram (cumulative rendering, Prometheus-style).

    Args:
        buckets: strictly increasing upper bounds; an implicit ``+Inf``
            bucket is always appended.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count", "_lock")

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        lock: threading.Lock,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram {name} buckets must be strictly increasing"
            )
        self.name = name
        self.labels = labels
        self.buckets = bounds
        #: Per-bucket (non-cumulative) observation counts; the final
        #: slot is the implicit +Inf bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    return
            self.counts[-1] += 1

    def cumulative_counts(self) -> list[int]:
        """Counts at or below each bound, ending with the total."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class MetricsRegistry:
    """Owns every instrument; the single source for snapshots/exports.

    Args:
        max_series: cardinality guard — once this many distinct
            ``(name, labels)`` series exist, *new* series are not
            created: the caller gets the shared no-op instrument, a
            warning is logged once per registry, and the
            :data:`DROPPED_SERIES_METRIC` counter counts every drop.
            Existing series keep recording.
    """

    def __init__(self, *, max_series: int = DEFAULT_SERIES_CAP) -> None:
        if max_series < 1:
            raise TelemetryError(
                f"max_series must be at least 1, got {max_series}"
            )
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, _LabelKey], object] = {}
        self._kinds: dict[str, str] = {}
        self.max_series = int(max_series)
        self._cap_warned = False

    @property
    def enabled(self) -> bool:
        """True — a real registry records everything."""
        return True

    def _get(self, kind: str, name: str, labels: dict[str, str], factory):
        _validate_name(name)
        key = (name, _label_key(labels))
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is not None and existing_kind != kind:
                raise TelemetryError(
                    f"metric {name} already registered as a "
                    f"{existing_kind}, not a {kind}"
                )
            instrument = self._metrics.get(key)
            if instrument is None:
                if (
                    len(self._metrics) >= self.max_series
                    and name != DROPPED_SERIES_METRIC
                ):
                    return self._drop_series(name)
                instrument = factory()
                self._metrics[key] = instrument
                self._kinds[name] = kind
            return instrument

    def _drop_series(self, name: str):
        """Cardinality cap hit: count the drop, warn once, return a no-op.

        Called with ``_lock`` held; the dropped-series counter is
        mutated directly because instruments share the registry lock.
        """
        dropped_key = (DROPPED_SERIES_METRIC, _label_key({}))
        dropped = self._metrics.get(dropped_key)
        if dropped is None:
            dropped = Counter(DROPPED_SERIES_METRIC, {}, self._lock)
            self._metrics[dropped_key] = dropped
            self._kinds[DROPPED_SERIES_METRIC] = "counter"
        dropped.value += 1.0
        if not self._cap_warned:
            self._cap_warned = True
            logger.warning(
                "metric series cap reached (%d): dropping new series "
                "starting with %s; check for a label cardinality "
                "explosion (%s counts the drops)",
                self.max_series, name, DROPPED_SERIES_METRIC,
            )
        return _NULL_INSTRUMENT

    def counter(self, name: str, /, **labels: str) -> Counter:
        """Get or create the counter ``name`` with ``labels``.

        ``name`` is positional-only so ``name=...`` stays available as
        a label key (span metrics label by span name).
        """
        return self._get(
            "counter", name, labels,
            lambda: Counter(name, labels, self._lock),
        )

    def gauge(self, name: str, /, **labels: str) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get(
            "gauge", name, labels, lambda: Gauge(name, labels, self._lock)
        )

    def histogram(
        self,
        name: str,
        /,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``.

        ``buckets`` applies only on first creation; later calls return
        the existing instrument unchanged.
        """
        return self._get(
            "histogram", name, labels,
            lambda: Histogram(name, labels, self._lock, buckets),
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """Plain-data dump of every instrument (stable order)."""
        with self._lock:
            items = sorted(self._metrics.items(), key=lambda kv: kv[0])
        out = []
        for (name, _), inst in items:
            entry: dict = {
                "name": name,
                "kind": self._kinds[name],
                "labels": dict(inst.labels),
            }
            if isinstance(inst, Histogram):
                entry["sum"] = inst.sum
                entry["count"] = inst.count
                entry["buckets"] = {
                    str(b): c
                    for b, c in zip(
                        list(inst.buckets) + ["+Inf"],
                        inst.cumulative_counts(),
                    )
                }
            else:
                entry["value"] = inst.value
            out.append(entry)
        return out

    def render_prometheus(
        self, extra_labels: dict[str, str] | None = None
    ) -> str:
        """The registry in Prometheus text exposition format.

        ``extra_labels`` (e.g. a run context's ``run`` / ``worker``
        pair) are added to every sample at render time without
        touching the instruments, so the same registry can be
        snapshotted with or without provenance. An instrument's own
        label of the same name wins.
        """
        lines: list[str] = []
        seen_types: set[str] = set()
        for entry in self.snapshot():
            name, kind = entry["name"], entry["kind"]
            base_labels = (
                dict(extra_labels, **entry["labels"])
                if extra_labels else entry["labels"]
            )
            if name not in seen_types:
                lines.append(f"# TYPE {name} {kind}")
                seen_types.add(name)
            if kind == "histogram":
                for bound, count in entry["buckets"].items():
                    labels = dict(base_labels, le=bound)
                    lines.append(
                        f"{name}_bucket{_render_labels(labels)} {count}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(base_labels)} "
                    f"{_render_value(entry['sum'])}"
                )
                lines.append(
                    f"{name}_count{_render_labels(base_labels)} "
                    f"{entry['count']}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(base_labels)} "
                    f"{_render_value(entry['value'])}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote, and newline become ``\\\\``, ``\\"`` and
    ``\\n`` — in that order of application, so a cell key containing
    any of them (quoted workload names, embedded newlines) cannot
    terminate the quoted value early and corrupt a scrape.
    """
    return _escape(value)


_UNESCAPE = re.compile(r"\\(.)")


def unescape_label_value(value: str) -> str:
    """Invert :func:`escape_label_value` (single left-to-right pass).

    A sequential ``str.replace`` chain is *not* a correct inverse:
    ``"\\\\n"`` (an escaped backslash followed by a literal ``n``)
    would first be misread as an escaped newline. Scanning each
    backslash escape exactly once round-trips every value.
    """
    return _UNESCAPE.sub(
        lambda m: "\n" if m.group(1) == "n" else m.group(1), value
    )


def _render_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


# ----------------------------------------------------------------------
# Null (disabled) variants
# ----------------------------------------------------------------------


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    labels: dict[str, str] = {}
    value = 0.0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """A registry whose instruments drop everything.

    Every method returns the same shared no-op instrument, so code can
    be written unconditionally against the registry API while a
    disabled configuration records nothing and allocates nothing.
    """

    @property
    def enabled(self) -> bool:
        """False — nothing is recorded."""
        return False

    def counter(self, name: str, /, **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, /, **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, /, buckets=DEFAULT_BUCKETS, **labels):
        return _NULL_INSTRUMENT

    def snapshot(self) -> list[dict]:
        return []

    def render_prometheus(self, extra_labels=None) -> str:
        return ""


#: Shared null registry (stateless, safe to reuse everywhere).
NULL_REGISTRY = NullRegistry()

"""The telemetry facade: spans, events, and the active instance.

A :class:`Telemetry` bundles the three observability surfaces:

- a :class:`~repro.telemetry.registry.MetricsRegistry` of counters /
  gauges / histograms (Prometheus snapshot at :meth:`flush`);
- **spans** — ``with telemetry.span("runner.trace", workload="CG"):``
  wall-clock phase timers that nest, feed a per-name duration
  histogram, and emit JSONL events;
- **window collectors** — per-level time-series of a simulation stage
  (see :mod:`repro.telemetry.windows`), written as CSV when the stage
  finishes.

Instrumented library code does not thread a telemetry object through
every call; like :mod:`logging`, it asks for the *active* instance via
:func:`get_active`. The default is :data:`NULL_TELEMETRY`, whose spans
still measure time (so log lines keep real durations) but record
nothing and whose registry drops everything — disabled telemetry costs
a few method calls per pipeline *stage* and exactly one ``is not
None`` check per simulated chunk on the hot loop.

**Event fast path.** :meth:`Telemetry.event` does not format or write
anything: it appends a compact ``(ts, kind, seq, cell, fields)`` tuple
to a bounded in-memory spool (``seq`` is still assigned at enqueue
under the lock, so the exact ``(run, worker, seq)`` semantics and
resume continuation are unchanged). Label stamping and JSON
serialization happen lazily, in batch, when the spool drains — at
top-level span exits, cell-scope exits, :meth:`flush`/:meth:`close`,
and whenever the spool fills. A kill between drains loses only the
not-yet-drained tail; the batch write itself can tear at most the
final line, which :func:`~repro.telemetry.exporters.read_jsonl`
already tolerates.
"""

from __future__ import annotations

import json
import re
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro.telemetry.exporters import (
    JsonlEventLog,
    write_prometheus,
    write_windows_csv,
)
from repro.telemetry.profiling import DEFAULT_HZ, ProfilingSession
from repro.telemetry.registry import (
    NULL_REGISTRY,
    MetricsRegistry,
)
from repro.telemetry.windows import (
    DEFAULT_WINDOW_REFS,
    WindowedCollector,
    WindowRecord,
)

#: Bucket bounds for span/cell duration histograms (seconds).
SPAN_SECONDS_BUCKETS: tuple[float, ...] = (
    0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0, 3600.0
)

#: File names inside a telemetry directory.
EVENTS_FILE = "events.jsonl"
METRICS_FILE = "metrics.prom"

#: Event-spool capacity: the spool drains early when it reaches this
#: many pending events, bounding both memory and the kill-loss window
#: between span/cell boundary drains.
DEFAULT_SPOOL_EVENTS = 512


def slugify(context: str) -> str:
    """A context label reduced to a safe file-name fragment."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", context).strip("-") or "unnamed"


def new_run_id(wall_clock: Callable[[], float] = time.time) -> str:
    """A fresh run identifier: UTC timestamp + random suffix.

    The timestamp prefix keeps directory listings chronological; the
    random suffix keeps two campaigns started in the same second
    distinct.
    """
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(wall_clock()))
    return f"{stamp}-{uuid.uuid4().hex[:8]}"


@dataclass(frozen=True)
class RunContext:
    """Correlation identity stamped into a run's artifacts.

    One sweep campaign is one *run*; with ``workers=N`` it spans N+1
    processes, each writing its own telemetry directory. A
    :class:`RunContext` makes those artifacts joinable afterwards:
    every event (and span event) carries ``run`` / ``worker`` / ``seq``
    fields, the Prometheus snapshot carries ``run`` / ``worker``
    sample labels, and journal entries record the ``run_id`` that
    produced them.

    Attributes:
        run_id: campaign identifier, shared by every process of the
            run (see :func:`new_run_id`).
        worker_id: which process wrote the artifact — ``"root"`` for
            the coordinating process, ``"worker-N"`` for pool workers.
        cell_key: the sweep cell being evaluated, when inside one
            (stamped via :meth:`Telemetry.cell_scope`).
    """

    run_id: str
    worker_id: str = "root"
    cell_key: str | None = None

    def child(self, worker_id: str) -> "RunContext":
        """The same run as seen by one worker process."""
        return replace(self, worker_id=worker_id, cell_key=None)

    def labels(self) -> dict[str, str]:
        """The ``run`` / ``worker`` label pair for metric samples."""
        return {"run": self.run_id, "worker": self.worker_id}


class Span:
    """A wall-clock phase timer (context manager).

    Attributes:
        name: span name (namespaced, e.g. ``"runner.trace"``).
        meta: free-form labels attached at creation.
        duration_s: elapsed seconds; populated on exit (0.0 before).
        parent: enclosing span's name, set on entry (None at top level).
    """

    __slots__ = ("name", "meta", "duration_s", "parent", "_telemetry", "_start")

    def __init__(
        self, name: str, meta: dict, telemetry: "Telemetry | None"
    ) -> None:
        self.name = name
        self.meta = meta
        self.duration_s = 0.0
        self.parent: str | None = None
        self._telemetry = telemetry
        self._start = 0.0

    def __enter__(self) -> "Span":
        telemetry = self._telemetry
        if telemetry is not None:
            self.parent = telemetry._enter_span(self)
            clock = telemetry._clock
        else:
            clock = time.perf_counter
        self._start = clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        telemetry = self._telemetry
        clock = telemetry._clock if telemetry is not None else time.perf_counter
        self.duration_s = clock() - self._start
        if telemetry is not None:
            telemetry._exit_span(self, failed=exc_type is not None)


class Telemetry:
    """Live telemetry: registry + spans + events + window collectors.

    Args:
        directory: where to write ``events.jsonl``, ``metrics.prom``
            and ``windows_*.csv``. None keeps everything in memory
            (registry and span accounting still work; events and CSVs
            are dropped).
        registry: metrics registry (default: a fresh
            :class:`MetricsRegistry`).
        window_refs: default epoch width for window collectors.
        clock: monotonic clock for durations (tests inject a fake).
        wall_clock: wall time for event timestamps.
        run_context: correlation identity stamped into every event
            (``run`` / ``worker`` / ``seq``) and into the Prometheus
            snapshot's sample labels. None records nothing extra.
        spool_events: event-spool capacity (see the module docstring);
            1 restores the old flush-per-event behaviour.
    """

    enabled: bool = True

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        registry: MetricsRegistry | None = None,
        window_refs: int = DEFAULT_WINDOW_REFS,
        clock: Callable[[], float] = time.perf_counter,
        wall_clock: Callable[[], float] = time.time,
        run_context: RunContext | None = None,
        spool_events: int = DEFAULT_SPOOL_EVENTS,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.registry = registry if registry is not None else MetricsRegistry()
        self.window_refs = int(window_refs)
        self.run_context = run_context
        self._clock = clock
        self._wall_clock = wall_clock
        self._events: JsonlEventLog | None = None
        self._seq = 0
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            events_path = self.directory / EVENTS_FILE
            self._events = JsonlEventLog(events_path)
            # A resumed campaign appends to the same event log; seq
            # numbers continue past the existing lines so the
            # (run, worker, seq) key stays unique across resumes (a
            # torn trailing line still consumes its number).
            if events_path.exists():
                with open(events_path, "rb") as handle:
                    self._seq = sum(1 for _ in handle)
        self._stack = threading.local()
        self._collectors: list[WindowedCollector] = []
        self._lock = threading.Lock()
        #: Pending (ts, kind, seq, cell, fields) tuples, drained in
        #: batch by :meth:`_drain_events` (guarded by ``_lock``).
        self._spool: list[tuple] = []
        self._spool_limit = max(1, int(spool_events))
        #: Serializes batch writes so drained batches hit the log in
        #: the order their events were enqueued.
        self._drain_lock = threading.Lock()
        #: Per-thread live span-name stacks / active cell keys, keyed
        #: by thread ident. Unlike the thread-local ``_stack`` these
        #: are readable from *other* threads — the sampling profiler
        #: attributes each sampled thread's stack through them.
        self._thread_spans: dict[int, tuple[str, ...]] = {}
        self._thread_cells: dict[int, str] = {}
        self._profile: ProfilingSession | None = None

    # -- spans ----------------------------------------------------------

    def span(self, name: str, **meta) -> Span:
        """A context-managed phase timer named ``name``."""
        return Span(name, meta, self)

    def _enter_span(self, span: Span) -> str | None:
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = self._stack.spans = []
        parent = stack[-1].name if stack else None
        stack.append(span)
        self._thread_spans[threading.get_ident()] = tuple(
            s.name for s in stack
        )
        profile = self._profile
        if profile is not None:
            profile.on_enter("span", span.name)
        return parent

    def _exit_span(self, span: Span, failed: bool) -> None:
        stack = getattr(self._stack, "spans", [])
        if stack and stack[-1] is span:
            stack.pop()
        ident = threading.get_ident()
        if stack:
            self._thread_spans[ident] = tuple(s.name for s in stack)
        else:
            self._thread_spans.pop(ident, None)
        profile = self._profile
        if profile is not None:
            profile.on_exit("span", span.name)
        self.registry.counter("repro_spans_total", name=span.name).inc()
        self.registry.histogram(
            "repro_span_seconds", buckets=SPAN_SECONDS_BUCKETS, name=span.name
        ).observe(span.duration_s)
        event: dict = {
            "kind": "span",
            "name": span.name,
            "duration_s": round(span.duration_s, 9),
        }
        if span.parent is not None:
            event["parent"] = span.parent
        if failed:
            event["failed"] = True
        if span.meta:
            event.update(span.meta)
        self.event(**event)
        # A top-level span ending is a natural pipeline boundary: drain
        # the spool so artifacts on disk track stage completion.
        if not stack:
            self._drain_events()

    # -- events ---------------------------------------------------------

    def event(self, kind: str = "event", **fields) -> None:
        """Spool one timestamped event for the JSONL log (if any).

        With a :class:`RunContext`, every event is stamped with the
        correlation triple ``run`` / ``worker`` / ``seq`` (``seq`` is a
        per-directory monotone counter, continued across resumes) and,
        inside a :meth:`cell_scope`, with the active ``cell`` key.
        Explicit fields of the same name win.

        The hot path stops here: the timestamp, ``seq`` and the active
        cell are captured now, but label stamping and serialization are
        deferred to the next batch drain (see the module docstring).
        """
        if self._events is None:
            return
        ts = self._wall_clock()
        cell = getattr(self._stack, "cell", None)
        with self._lock:
            seq = self._seq
            self._seq += 1
            self._spool.append((ts, kind, seq, cell, fields))
            full = len(self._spool) >= self._spool_limit
        if full:
            self._drain_events()

    def _drain_events(self) -> None:
        """Format and write every spooled event as one batched append.

        The correlation labels are constant for the whole batch, so
        they are serialized *once* and spliced into each line as a raw
        fragment; only the varying fields pay a ``json.dumps`` per
        event. This is what keeps labelled events within a few percent
        of plain ones (see ``benchmarks/bench_telemetry_overhead.py``).
        """
        events = self._events
        if events is None:
            return
        with self._drain_lock:
            with self._lock:
                if not self._spool:
                    return
                pending, self._spool = self._spool, []
            context = self.run_context
            context_cell = context.cell_key if context is not None else None
            if context is not None:
                fragment = json.dumps(
                    {"run": context.run_id, "worker": context.worker_id},
                    sort_keys=True,
                )[1:-1] + ", "
            else:
                fragment = ""
            lines = []
            for ts, kind, seq, cell, fields in pending:
                payload: dict = {"ts": ts, "kind": kind}
                if cell is None:
                    cell = context_cell
                if cell is not None:
                    payload["cell"] = cell
                payload["seq"] = seq
                payload.update(fields)
                body = json.dumps(payload, sort_keys=True, default=str)
                lines.append("{" + fragment + body[1:])
            events.append_lines(lines)

    @contextmanager
    def cell_scope(self, cell_key: str) -> Iterator[None]:
        """Stamp ``cell`` into every event emitted inside the block.

        Thread-local, so parallel in-process cells (deadline threads)
        never cross-stamp each other's events. The spool drains — and
        the event log flushes — when the scope closes, so cell
        boundaries are durability points *and* visibility points for
        live tailers (``telemetry serve`` readers see every cell's
        events promptly even when the spool is far from capacity).
        """
        previous = getattr(self._stack, "cell", None)
        self._stack.cell = cell_key
        ident = threading.get_ident()
        self._thread_cells[ident] = cell_key
        profile = self._profile
        if profile is not None:
            profile.on_enter("cell", cell_key)
        try:
            yield
        finally:
            self._stack.cell = previous
            if previous is None:
                self._thread_cells.pop(ident, None)
            else:
                self._thread_cells[ident] = previous
            if self._profile is not None:
                self._profile.on_exit("cell", cell_key)
            self._drain_events()
            if self._events is not None:
                self._events.flush()

    # -- metrics passthrough --------------------------------------------

    def counter(self, name: str, /, **labels):
        """Registry counter passthrough."""
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, /, **labels):
        """Registry gauge passthrough."""
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, /, buckets=None, **labels):
        """Registry histogram passthrough."""
        if buckets is None:
            buckets = SPAN_SECONDS_BUCKETS
        return self.registry.histogram(name, buckets=buckets, **labels)

    # -- window collectors ----------------------------------------------

    def window_collector(
        self,
        context: str,
        levels_fn: Callable[[], Sequence],
        window_refs: int | None = None,
    ) -> WindowedCollector:
        """Create (and track) a window collector for one stage."""
        collector = WindowedCollector(
            context,
            levels_fn,
            window_refs=window_refs or self.window_refs,
            on_window=self._on_window,
        )
        with self._lock:
            self._collectors.append(collector)
        return collector

    def _on_window(
        self, collector: WindowedCollector, fresh: list[WindowRecord]
    ) -> None:
        if self._events is None or not fresh:
            return
        self.event(
            kind="window",
            context=collector.context,
            window=fresh[0].index,
            start_refs=fresh[0].start_refs,
            end_refs=fresh[0].end_refs,
            levels={
                r.level: {
                    "accesses": r.accesses,
                    "hit_rate": round(r.hit_rate, 6),
                    "bytes": r.bytes_moved,
                }
                for r in fresh
            },
        )

    def finish_collector(self, collector: WindowedCollector) -> Path | None:
        """Finalize a collector and write its CSV time-series.

        Returns the CSV path, or None when no directory is configured.
        """
        records = collector.finish()
        with self._lock:
            if collector in self._collectors:
                self._collectors.remove(collector)
        if self.directory is None:
            return None
        path = self.directory / f"windows_{slugify(collector.context)}.csv"
        write_windows_csv(records, path)
        self.event(
            kind="windows_written",
            context=collector.context,
            windows=(records[-1].index + 1) if records else 0,
            refs=collector.refs,
            path=path.name,
        )
        return path

    # -- profiling ------------------------------------------------------

    @property
    def profile(self) -> ProfilingSession | None:
        """The active profiling session, if one was enabled."""
        return self._profile

    def enable_profiling(
        self,
        hz: float | None = None,
        *,
        memory: bool = False,
        session: ProfilingSession | None = None,
    ) -> ProfilingSession:
        """Start continuous profiling on this telemetry (idempotent).

        Spawns the sampling thread (``hz`` samples/s, default
        :data:`~repro.telemetry.profiling.DEFAULT_HZ`) and, with
        ``memory=True``, the tracemalloc watermark tracker. Sampling
        is nearly free (a wait-then-walk thread); tracemalloc hooks
        every allocation and slows allocation-heavy simulation by an
        order of magnitude, so memory watermarks are strictly opt-in.
        Samples drain to ``profile.jsonl`` on every :meth:`flush`;
        ``flame.folded`` and ``memory_watermarks.csv`` are written on
        :meth:`close`. ``session`` overrides the constructed session
        (tests inject deterministic samplers).
        """
        if self._profile is not None:
            return self._profile
        if session is None:
            session = ProfilingSession(
                self, hz if hz is not None else DEFAULT_HZ, memory=memory
            )
        self._profile = session
        session.start()
        self.event(
            kind="profiling_started",
            hz=session.hz,
            memory=session.memory is not None,
        )
        return session

    # -- lifecycle ------------------------------------------------------

    def flush(self) -> None:
        """Drain spooled events and write the Prometheus snapshot.

        The snapshot goes through the same atomic write-and-rename
        helper as ``windows_*.csv``, so a worker killed mid-flush
        leaves the previous complete snapshot, never a torn one. With a
        :class:`RunContext` every sample carries ``run`` / ``worker``
        labels so cross-worker aggregation can join and sum snapshots.
        An active profiling session drains its sample deltas to
        ``profile.jsonl`` first, so a flush is a durability point for
        events, metrics and profiles alike.
        """
        profile = self._profile
        if profile is not None:
            profile.flush()
        self._drain_events()
        if self.directory is not None:
            extra = (
                self.run_context.labels()
                if self.run_context is not None else None
            )
            write_prometheus(
                self.registry, self.directory / METRICS_FILE,
                extra_labels=extra,
            )

    def close(self) -> None:
        """Finish collectors and profiling, flush, close the event log."""
        profile = self._profile
        if profile is not None:
            self._profile = None
            profile.close()
            self.event(
                kind="profiling_finished",
                samples=profile.profiler.samples,
            )
        with self._lock:
            pending = list(self._collectors)
        for collector in pending:
            self.finish_collector(collector)
        self.flush()
        if self._events is not None:
            self._events.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullTelemetry:
    """Disabled telemetry with the same surface.

    Spans still measure wall time (so progress/log lines report real
    durations) but record nothing; events are dropped; the registry is
    the shared :data:`~repro.telemetry.registry.NULL_REGISTRY`; window
    collectors are never created (callers gate on :attr:`enabled`).
    """

    enabled: bool = False
    directory = None
    registry = NULL_REGISTRY
    run_context = None
    profile = None

    def span(self, name: str, **meta) -> Span:
        return Span(name, meta, None)

    def enable_profiling(self, hz=None, *, memory=False, session=None) -> None:
        return None

    def event(self, kind: str = "event", **fields) -> None:
        pass

    @contextmanager
    def cell_scope(self, cell_key: str) -> Iterator[None]:
        yield

    def counter(self, name: str, /, **labels):
        return NULL_REGISTRY.counter(name, **labels)

    def gauge(self, name: str, /, **labels):
        return NULL_REGISTRY.gauge(name, **labels)

    def histogram(self, name: str, /, buckets=None, **labels):
        return NULL_REGISTRY.histogram(name, **labels)

    def window_collector(self, context, levels_fn, window_refs=None):
        raise RuntimeError(
            "window collectors are not available on disabled telemetry; "
            "gate on telemetry.enabled first"
        )

    def finish_collector(self, collector) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: The shared disabled instance (the default active telemetry).
NULL_TELEMETRY = NullTelemetry()

_active: Telemetry | NullTelemetry = NULL_TELEMETRY
_active_lock = threading.Lock()


def get_active() -> Telemetry | NullTelemetry:
    """The process-wide active telemetry (default: disabled)."""
    return _active


def set_active(telemetry: Telemetry | NullTelemetry | None) -> None:
    """Install the active telemetry; None restores the disabled default."""
    global _active
    with _active_lock:
        _active = telemetry if telemetry is not None else NULL_TELEMETRY


@contextmanager
def activate(telemetry: Telemetry | NullTelemetry) -> Iterator:
    """Scope ``telemetry`` as the active instance, restoring on exit."""
    previous = get_active()
    set_active(telemetry)
    try:
        yield telemetry
    finally:
        set_active(previous)

"""Live sweep progress: per-cell lines, ETA, and the resume summary.

A long campaign should never be a black box between its first and last
cell. :class:`ProgressReporter` prints one line per finished cell —
``[3/12] NMM-PCM-N6/CG: ok in 4.1s (ETA 38s)`` — with an ETA
extrapolated from the mean wall time of the cells evaluated *this*
run (journal-reused cells are free, so they are excluded from the
estimate), plus a one-line resume summary at startup so ``--resume``
says up front how much work remains.
"""

from __future__ import annotations

import sys
from typing import TextIO


def format_duration(seconds: float) -> str:
    """Compact human duration: ``0.4s``, ``12s``, ``3m05s``, ``2h07m``."""
    if seconds < 0:
        seconds = 0.0
    if seconds < 10:
        return f"{seconds:.1f}s"
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def price_eta(
    *,
    total: int,
    done: int,
    evaluated: int,
    evaluated_s: float,
    expected_reused: int = 0,
    reused_done: int = 0,
) -> float | None:
    """Remaining campaign seconds, priced the way the reporter prints.

    Journal replays cost ~nothing, so pending reuses (announced but
    not yet replayed) are subtracted from the remaining count before
    multiplying by the mean seconds per *evaluated* cell. Returns
    ``None`` while no cell has been evaluated yet (unknown rate,
    unless nothing priced remains — then 0.0) and ``0.0`` once the
    campaign is done. Shared by :class:`ProgressReporter` and the live
    progress API (``telemetry serve`` / ``watch``), so both quote the
    same number.
    """
    remaining = max(0, total - done)
    if remaining == 0:
        return 0.0
    pending_reused = max(0, expected_reused - reused_done)
    to_evaluate = max(0, remaining - pending_reused)
    if evaluated:
        return to_evaluate * (evaluated_s / evaluated)
    return 0.0 if to_evaluate == 0 else None


class ProgressReporter:
    """Prints sweep progress lines with a running ETA.

    Args:
        total: number of grid cells in the campaign.
        out: destination stream (default ``sys.stderr`` so progress
            never pollutes piped result output).
    """

    def __init__(self, total: int, *, out: TextIO | None = None) -> None:
        self.total = int(total)
        self.out = out if out is not None else sys.stderr
        self._done = 0
        self._evaluated = 0
        self._evaluated_s = 0.0
        self._expected_reused = 0
        self._reused_done = 0

    def _print(self, line: str) -> None:
        print(line, file=self.out, flush=True)

    # ------------------------------------------------------------------

    def resume_summary(
        self, *, reused: int, to_run: int, abandoned: int
    ) -> None:
        """One line, before the first cell, on what resume reclaimed.

        Also primes the ETA: the ``reused`` cells will be replayed from
        the journal at effectively zero cost, so the estimate must not
        price them like fresh evaluations.
        """
        self._expected_reused = int(reused)
        line = (
            f"resume: {reused} cell(s) reused from journal, "
            f"{to_run} to run"
        )
        if abandoned:
            line += f", {abandoned} previously abandoned (re-running)"
        self._print(line)

    def cell_started(self, design: str, workload: str) -> None:
        """Announce the cell about to be evaluated."""
        self._print(
            f"[{self._done + 1}/{self.total}] {design}/{workload} ..."
        )

    def cell_finished(
        self,
        design: str,
        workload: str,
        status: str,
        duration_s: float,
        *,
        from_journal: bool = False,
    ) -> None:
        """Record and print one finished cell with the updated ETA.

        Journal-reused cells cost ~nothing, so the ETA prices only the
        cells that still need evaluation: pending reuses (announced by
        :meth:`resume_summary` but not yet replayed) are subtracted
        from the remaining count before multiplying by the mean.
        """
        self._done += 1
        if from_journal:
            self._reused_done += 1
        elif status != "skipped":
            self._evaluated += 1
            self._evaluated_s += duration_s
        eta_s = self.eta_s()
        if self._done >= self.total:
            eta = "done"
        elif eta_s is not None:
            eta = f"ETA {format_duration(eta_s)}"
        else:
            eta = "ETA ?"
        if self._reused_done:
            eta += f", {self._reused_done} reused"
        source = " (journal)" if from_journal else ""
        self._print(
            f"[{self._done}/{self.total}] {design}/{workload}: "
            f"{status}{source} in {format_duration(duration_s)} ({eta})"
        )

    # ------------------------------------------------------------------

    def eta_s(self) -> float | None:
        """Remaining seconds via :func:`price_eta` (None = unknown)."""
        return price_eta(
            total=self.total,
            done=self._done,
            evaluated=self._evaluated,
            evaluated_s=self._evaluated_s,
            expected_reused=self._expected_reused,
            reused_done=self._reused_done,
        )

    def snapshot(self) -> dict:
        """The reporter's counters + ETA as a JSON-friendly dict."""
        return {
            "total": self.total,
            "done": self._done,
            "evaluated": self._evaluated,
            "evaluated_s": self._evaluated_s,
            "reused": self._reused_done,
            "eta_s": self.eta_s(),
        }

"""Continuous profiling: sampled wall-clock stacks + memory watermarks.

Two low-overhead observers that ride along with a live
:class:`~repro.telemetry.core.Telemetry`:

- :class:`SamplingProfiler` — a daemon thread wakes at a configurable
  rate (default :data:`DEFAULT_HZ`), walks ``sys._current_frames()``
  and attributes each thread's stack to that thread's active span
  stack (``runner.prepare`` → ``hierarchy.run`` → …) and sweep cell.
  Aggregated counts are drained to an append-only ``profile.jsonl``
  (same torn-tail discipline as ``events.jsonl``) at every telemetry
  flush, and collapsed to a flamegraph-ready ``flame.folded`` on
  close. Sampling costs nothing on the simulate hot loop — the
  sampled threads never cooperate, they are only observed.
- :class:`MemoryTracker` — ``tracemalloc``-based per-phase/per-cell
  peak watermarks: at every span/cell boundary the global peak since
  the previous boundary is attributed to *all* open phases (inclusive
  semantics) and then reset, yielding a true per-phase peak despite
  tracemalloc's single global counter. Written as
  ``memory_watermarks.csv`` alongside the windows CSVs.

Both are bundled by :class:`ProfilingSession`, enabled via
``Telemetry.enable_profiling(hz)`` or the CLI's ``--profile [HZ]``.
Per-worker profiles are merged by the observatory with sample-count
conservation, the same pattern as the metrics merge.

Determinism for tests: the sampler's clock, thread-stack collector and
the memory tracker's ``tracemalloc`` module are all injectable, and
:meth:`SamplingProfiler.sample_once` can be driven directly without
any background thread.
"""

from __future__ import annotations

import csv
import io
import sys
import threading
import time
import tracemalloc
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from repro.telemetry.exporters import (
    JsonlEventLog,
    atomic_write_text,
    read_jsonl,
)

#: Default sampling rate (samples per second). Prime-ish on purpose:
#: a rate that divides common loop periods would alias with them and
#: systematically over- or under-sample a phase.
DEFAULT_HZ = 97.0

#: Deepest stack recorded per sample; frames below are dropped.
DEFAULT_MAX_DEPTH = 64

#: File names inside a telemetry directory.
PROFILE_FILE = "profile.jsonl"
FLAME_FILE = "flame.folded"
MEMORY_FILE = "memory_watermarks.csv"

#: Stage label for samples taken outside any span.
NO_STAGE = "(no stage)"

#: Column order of ``memory_watermarks.csv``.
MEMORY_COLUMNS: tuple[str, ...] = (
    "kind", "name", "enter_bytes", "exit_bytes", "peak_bytes"
)


# ----------------------------------------------------------------------
# Frame labels
# ----------------------------------------------------------------------

#: Code-object → rendered label cache (keeps a reference; bounded by
#: the number of distinct code objects ever sampled).
_LABEL_CACHE: dict[object, str] = {}

#: Path anchors resolved to dotted module prefixes in frame labels.
_MODULE_ANCHORS = ("repro", "benchmarks", "tests")


def _module_of(filename: str) -> str:
    parts = Path(filename).with_suffix("").parts
    for anchor in _MODULE_ANCHORS:
        if anchor in parts:
            index = len(parts) - 1 - parts[::-1].index(anchor)
            return ".".join(parts[index:])
    return Path(filename).stem


def frame_label(code) -> str:
    """``module:function`` for one code object (cached)."""
    label = _LABEL_CACHE.get(code)
    if label is None:
        label = f"{_module_of(code.co_filename)}:{code.co_name}"
        _LABEL_CACHE[code] = label
    return label


def collect_stacks(
    max_depth: int = DEFAULT_MAX_DEPTH,
) -> dict[int, tuple[str, ...]]:
    """Root-first frame-label stacks of every live thread, by ident."""
    stacks: dict[int, tuple[str, ...]] = {}
    for ident, frame in sys._current_frames().items():
        labels: list[str] = []
        depth = 0
        while frame is not None and depth < max_depth:
            labels.append(frame_label(frame.f_code))
            frame = frame.f_back
            depth += 1
        labels.reverse()
        stacks[ident] = tuple(labels)
    return stacks


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------

#: Aggregation key: (span stack, cell key, frame stack).
SampleKey = tuple[tuple[str, ...], "str | None", tuple[str, ...]]


class SamplingProfiler:
    """Wall-clock stack sampler attributing samples to spans and cells.

    Args:
        telemetry: the owning telemetry; its per-thread span/cell
            registries provide the attribution.
        hz: samples per second (> 0).
        max_depth: deepest stack recorded per sample.
        stacks_fn: stack collector override (tests inject synthetic
            stacks); default walks ``sys._current_frames()``.
        clock: monotonic clock for the started/elapsed bookkeeping.
    """

    def __init__(
        self,
        telemetry,
        hz: float = DEFAULT_HZ,
        *,
        max_depth: int = DEFAULT_MAX_DEPTH,
        stacks_fn: Callable[[], Mapping[int, Sequence[str]]] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"profiler hz must be positive, got {hz}")
        self.telemetry = telemetry
        self.hz = float(hz)
        self.max_depth = int(max_depth)
        self._stacks_fn = stacks_fn or (
            lambda: collect_stacks(self.max_depth)
        )
        self._clock = clock
        self._counts: Counter = Counter()
        self._samples = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: Thread idents never attributed (the sampler itself).
        self._ignore: set[int] = set()

    @property
    def samples(self) -> int:
        """Total samples attributed since construction."""
        with self._lock:
            return self._samples

    def sample_once(
        self, stacks: Mapping[int, Sequence[str]] | None = None
    ) -> int:
        """Take one sample of every thread; returns threads counted.

        ``stacks`` overrides the collected thread stacks (deterministic
        tests); the span/cell attribution always comes from the owning
        telemetry's live per-thread registries.
        """
        if stacks is None:
            stacks = self._stacks_fn()
        spans_by_thread = getattr(self.telemetry, "_thread_spans", {})
        cells_by_thread = getattr(self.telemetry, "_thread_cells", {})
        counted = 0
        with self._lock:
            for ident, stack in stacks.items():
                if ident in self._ignore or not stack:
                    continue
                spans = tuple(spans_by_thread.get(ident, ()))
                cell = cells_by_thread.get(ident)
                self._counts[(spans, cell, tuple(stack))] += 1
                counted += 1
            self._samples += counted
        return counted

    def drain(self) -> tuple[dict, int]:
        """Pop accumulated (key → count) deltas since the last drain."""
        with self._lock:
            delta = dict(self._counts)
            self._counts.clear()
        return delta, sum(delta.values())

    # -- background thread ----------------------------------------------

    def start(self) -> None:
        """Start the sampling daemon thread (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        self._ignore.add(threading.get_ident())
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            self.sample_once()

    def stop(self) -> None:
        """Stop and join the sampling thread (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=10.0)
        self._thread = None


# ----------------------------------------------------------------------
# Memory watermarks
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MemoryWatermark:
    """Peak traced memory while one span/cell was open (inclusive)."""

    kind: str  # "span" | "cell"
    name: str
    enter_bytes: int
    exit_bytes: int
    peak_bytes: int


class _OpenPhase:
    __slots__ = ("kind", "name", "enter_bytes", "peak")

    def __init__(self, kind: str, name: str, enter_bytes: int) -> None:
        self.kind = kind
        self.name = name
        self.enter_bytes = enter_bytes
        self.peak = enter_bytes


class MemoryTracker:
    """``tracemalloc`` watermarks attributed per phase and per cell.

    tracemalloc keeps one *global* peak; per-phase peaks are recovered
    by resetting it at every span/cell boundary and attributing each
    interval's peak to every phase open during the interval. That makes
    the recorded peaks *inclusive* (a parent span's watermark covers
    its children), matching the sampler's inclusive attribution.

    Args:
        tracer: the tracemalloc module (tests inject a fake with the
            same ``start/stop/is_tracing/get_traced_memory/reset_peak``
            surface).
    """

    def __init__(self, tracer=tracemalloc) -> None:
        self._tracer = tracer
        self._lock = threading.Lock()
        self._open: list[_OpenPhase] = []
        self._started_here = False
        self.records: list[MemoryWatermark] = []

    def start(self) -> None:
        """Start tracing (no-op if something else already traces)."""
        if not self._tracer.is_tracing():
            self._tracer.start()
            self._started_here = True

    def _boundary(self) -> int:
        current, peak = self._tracer.get_traced_memory()
        high = max(current, peak)
        for phase in self._open:
            if high > phase.peak:
                phase.peak = high
        self._tracer.reset_peak()
        return current

    def enter(self, kind: str, name: str) -> None:
        """A span/cell opened."""
        with self._lock:
            current = self._boundary()
            self._open.append(_OpenPhase(kind, name, current))

    def exit(self, kind: str, name: str) -> None:
        """A span/cell closed: record its inclusive peak watermark."""
        with self._lock:
            current = self._boundary()
            for index in range(len(self._open) - 1, -1, -1):
                phase = self._open[index]
                if phase.kind == kind and phase.name == name:
                    del self._open[index]
                    self.records.append(
                        MemoryWatermark(
                            kind=kind,
                            name=name,
                            enter_bytes=phase.enter_bytes,
                            exit_bytes=current,
                            peak_bytes=max(phase.peak, current),
                        )
                    )
                    return

    def close(self) -> None:
        """Close out any still-open phases and stop tracing if owned."""
        with self._lock:
            current = self._boundary()
            while self._open:
                phase = self._open.pop()
                self.records.append(
                    MemoryWatermark(
                        kind=phase.kind,
                        name=phase.name,
                        enter_bytes=phase.enter_bytes,
                        exit_bytes=current,
                        peak_bytes=max(phase.peak, current),
                    )
                )
        if self._started_here and self._tracer.is_tracing():
            self._tracer.stop()


def write_memory_csv(
    records: Sequence[MemoryWatermark], path: str | Path
) -> Path:
    """Write memory watermarks as CSV, atomically (one row per exit)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(MEMORY_COLUMNS)
    for record in records:
        writer.writerow([
            record.kind, record.name, record.enter_bytes,
            record.exit_bytes, record.peak_bytes,
        ])
    return atomic_write_text(path, buffer.getvalue())


def read_memory_csv(path: str | Path) -> list[MemoryWatermark]:
    """Load watermarks written by :func:`write_memory_csv`."""
    records: list[MemoryWatermark] = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            records.append(
                MemoryWatermark(
                    kind=row["kind"],
                    name=row["name"],
                    enter_bytes=int(row["enter_bytes"]),
                    exit_bytes=int(row["exit_bytes"]),
                    peak_bytes=int(row["peak_bytes"]),
                )
            )
    return records


# ----------------------------------------------------------------------
# Profile records (profile.jsonl)
# ----------------------------------------------------------------------


def read_profile(path: str | Path) -> list[dict]:
    """Load profile records, tolerating a kill-torn trailing line."""
    path = Path(path)
    if not path.exists():
        return []
    return [
        record for record in read_jsonl(path)
        if record.get("kind") == "profile"
    ]


def total_samples(records: Iterable[Mapping]) -> int:
    """Summed sample count across records."""
    return sum(int(r.get("count", 0)) for r in records)


def merge_records(records: Iterable[Mapping]) -> list[dict]:
    """Sum counts of records with identical attribution.

    The grouping key keeps ``run``/``worker`` provenance, so merging
    per-worker profiles conserves every worker's sample count exactly
    (and re-merging a merged profile is a no-op).
    """
    grouped: dict[tuple, dict] = {}
    for record in records:
        key = (
            record.get("run"), record.get("worker"),
            tuple(record.get("spans", ())), record.get("cell"),
            tuple(record.get("stack", ())), record.get("hz"),
        )
        bucket = grouped.get(key)
        if bucket is None:
            bucket = dict(record)
            bucket["count"] = 0
            grouped[key] = bucket
        bucket["count"] += int(record.get("count", 0))
    return sorted(
        grouped.values(),
        key=lambda r: (
            str(r.get("worker", "")), -int(r["count"]),
            tuple(r.get("spans", ())), tuple(r.get("stack", ())),
        ),
    )


def fold_records(records: Iterable[Mapping]) -> dict[tuple[str, ...], int]:
    """Collapse records to ``span-path + frame-stack`` → summed count."""
    folded: Counter = Counter()
    for record in records:
        key = tuple(record.get("spans", ())) + tuple(record.get("stack", ()))
        if key:
            folded[key] += int(record.get("count", 0))
    return dict(folded)


def render_flame(records: Iterable[Mapping]) -> str:
    """Collapsed-stack (Brendan Gregg ``folded``) flamegraph text.

    One line per distinct stack: semicolon-joined frames (span path
    first, root-first frames after) and the sample count. Feed it to
    ``flamegraph.pl`` or paste into speedscope.
    """
    folded = fold_records(records)
    lines = [
        ";".join(stack) + f" {count}"
        for stack, count in sorted(folded.items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_flame(records: Iterable[Mapping], path: str | Path) -> Path:
    """Write the collapsed-stack flamegraph file, atomically."""
    return atomic_write_text(path, render_flame(records))


def function_shares(records: Iterable[Mapping]) -> dict[str, float]:
    """Inclusive sample share per function across all records.

    A function is counted once per sample when it appears anywhere in
    the sampled stack (recursion counted once), so shares answer "what
    fraction of wall time had this function on the stack".
    """
    records = list(records)
    total = total_samples(records)
    if total == 0:
        return {}
    counts: Counter = Counter()
    for record in records:
        count = int(record.get("count", 0))
        for function in set(record.get("stack", ())):
            counts[function] += count
    return {function: counts[function] / total for function in counts}


@dataclass(frozen=True)
class HotspotDigest:
    """One hot function within one stage (innermost span)."""

    stage: str
    function: str
    samples: int  # inclusive samples within the stage
    share: float  # fraction of the stage's samples


def hotspot_digests(
    records: Iterable[Mapping], top: int = 5
) -> list[HotspotDigest]:
    """Top-``top`` functions by inclusive samples, grouped per stage.

    The stage is the innermost active span when the sample was taken
    (:data:`NO_STAGE` outside any span). Stages are ordered by total
    samples, hottest first; functions likewise within each stage.
    """
    stage_totals: Counter = Counter()
    stage_functions: dict[str, Counter] = {}
    for record in records:
        count = int(record.get("count", 0))
        spans = tuple(record.get("spans", ()))
        stage = spans[-1] if spans else NO_STAGE
        stage_totals[stage] += count
        functions = stage_functions.setdefault(stage, Counter())
        for function in set(record.get("stack", ())):
            functions[function] += count
    digests: list[HotspotDigest] = []
    for stage, stage_total in stage_totals.most_common():
        if stage_total == 0:
            continue
        ranked = sorted(
            stage_functions[stage].items(), key=lambda kv: (-kv[1], kv[0])
        )
        for function, samples in ranked[:top]:
            digests.append(
                HotspotDigest(
                    stage=stage,
                    function=function,
                    samples=samples,
                    share=samples / stage_total,
                )
            )
    return digests


# ----------------------------------------------------------------------
# Session: sampler + memory tracker + artifact lifecycle
# ----------------------------------------------------------------------


class ProfilingSession:
    """One telemetry directory's profiling lifecycle.

    Owns a :class:`SamplingProfiler` and (optionally) a
    :class:`MemoryTracker`; drains sampler deltas to ``profile.jsonl``
    on every telemetry flush (so per-cell flushes persist samples with
    the same durability as events) and writes ``flame.folded`` +
    ``memory_watermarks.csv`` on close.
    """

    def __init__(
        self,
        telemetry,
        hz: float = DEFAULT_HZ,
        *,
        memory: bool = True,
        profiler: SamplingProfiler | None = None,
        memory_tracker: MemoryTracker | None = None,
    ) -> None:
        self.telemetry = telemetry
        self.hz = float(hz)
        self.profiler = profiler or SamplingProfiler(telemetry, self.hz)
        self.memory = memory_tracker or (MemoryTracker() if memory else None)
        self._log: JsonlEventLog | None = None
        directory = getattr(telemetry, "directory", None)
        if directory is not None:
            self._log = JsonlEventLog(Path(directory) / PROFILE_FILE)

    def start(self) -> None:
        """Start the memory tracer and the sampling thread."""
        if self.memory is not None:
            self.memory.start()
        self.profiler.start()

    # -- telemetry hooks -------------------------------------------------

    def on_enter(self, kind: str, name: str) -> None:
        if self.memory is not None:
            self.memory.enter(kind, name)

    def on_exit(self, kind: str, name: str) -> None:
        if self.memory is not None:
            self.memory.exit(kind, name)

    # -- persistence -----------------------------------------------------

    def _record(self, key: SampleKey, count: int) -> dict:
        spans, cell, stack = key
        record: dict = {
            "kind": "profile",
            "hz": self.hz,
            "count": count,
            "spans": list(spans),
            "stack": list(stack),
        }
        if cell is not None:
            record["cell"] = cell
        context = getattr(self.telemetry, "run_context", None)
        if context is not None:
            record["run"] = context.run_id
            record["worker"] = context.worker_id
        return record

    def flush(self) -> None:
        """Drain sampler deltas to ``profile.jsonl`` + sample counter."""
        delta, drained = self.profiler.drain()
        if self._log is not None and delta:
            ordered = sorted(
                delta.items(),
                key=lambda kv: (kv[0][0], kv[0][1] or "", kv[0][2]),
            )
            self._log.append_many(
                self._record(key, count) for key, count in ordered
            )
        if drained:
            self.telemetry.counter("repro_profile_samples_total").inc(drained)

    def close(self) -> None:
        """Stop sampling, final-drain, and write the derived artifacts."""
        self.profiler.stop()
        self.flush()
        if self._log is not None:
            self._log.close()
        if self.memory is not None:
            self.memory.close()
        directory = getattr(self.telemetry, "directory", None)
        if directory is None:
            return
        directory = Path(directory)
        records = read_profile(directory / PROFILE_FILE)
        if records:
            write_flame(records, directory / FLAME_FILE)
        if self.memory is not None and self.memory.records:
            write_memory_csv(self.memory.records, directory / MEMORY_FILE)

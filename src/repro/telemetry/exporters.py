"""Telemetry exporters: JSONL events, CSV time-series, Prometheus text.

All files live alongside the resilience journal and follow the same
durability discipline:

- whole-file artifacts (the CSV time-series and the Prometheus
  snapshot) are written atomically — temp file in the same directory,
  fsync, ``os.replace`` — so a kill mid-write leaves either the old
  file or the new one, never a torn hybrid;
- the JSONL event log is append-only with a flush per line, so a kill
  can at worst tear the final line; :func:`read_jsonl` tolerates (and
  drops) exactly that torn trailing line, like the resilience journal.

Live readers get the same guarantees in follow mode:
:class:`JsonlTailer` incrementally reads a growing event log, buffers
a torn trailing line until its newline arrives, and detects
truncation/replacement (inode change or size regression) so a
re-created file is re-read from the start instead of streaming
garbage from a stale offset.
"""

from __future__ import annotations

import csv
import io
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import TelemetryError
from repro.telemetry.windows import WINDOW_FIELDS, WindowRecord


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------


class JsonlEventLog:
    """Append-only JSON-lines event log with per-line durability.

    Args:
        path: log file; created (with parents) on first append.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: io.TextIOWrapper | None = None
        self._lock = threading.Lock()

    def append(self, event: dict) -> None:
        """Serialize one event as a line and flush it to disk."""
        self.append_many((event,))

    def append_many(self, events: Iterable[dict]) -> None:
        """Serialize a batch of events and flush them in one write.

        One buffered write + one flush for the whole batch, so a spool
        of N events costs one syscall round-trip instead of N. A kill
        mid-write can still only tear the *final* line written so far
        (the partial batch ends at the torn line), which is exactly the
        torn tail :func:`read_jsonl` tolerates.
        """
        self.append_lines(
            json.dumps(event, sort_keys=True, default=str)
            for event in events
        )

    def append_lines(self, lines: Iterable[str]) -> None:
        """Flush pre-serialized JSON lines (no trailing newlines) as
        one batched write.

        The fast path for callers that assemble lines themselves (the
        event spool splices a constant run-context fragment instead of
        re-serializing it per event).
        """
        text = "".join(line + "\n" for line in lines)
        if not text:
            return
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a")
            self._handle.write(text)
            self._handle.flush()

    def flush(self) -> None:
        """Push buffered bytes to the OS so live tailers see them.

        Appends already flush per batch; this explicit hook exists for
        boundary points (cell scopes, drain points) where a caller
        wants to guarantee visibility to a concurrent
        :class:`JsonlTailer` even when nothing was pending — it is a
        no-op on a closed or never-opened log.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        """Close the underlying file (reopened on next append)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class JsonlTailer:
    """Incremental follow-mode reader for one JSONL event log.

    Each :meth:`poll` returns the complete events appended since the
    previous poll. Robustness for the live-serving path:

    - a torn trailing line (append in progress) is buffered and only
      parsed once its terminating newline lands — polling never
      returns half an event;
    - truncation or replacement is detected (inode change, or size
      shrinking below the read offset) and the file is re-read from
      the start instead of streaming garbage from a stale offset;
    - a line that still fails to parse (mid-file corruption) is
      skipped, mirroring :func:`read_jsonl`'s tolerance rather than
      killing a long-lived stream.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._position = 0
        self._inode: int | None = None
        self._buffer = b""

    def poll(self) -> list[dict]:
        """Events appended since the last poll (empty when none)."""
        try:
            stat = os.stat(self.path)
        except (FileNotFoundError, NotADirectoryError):
            return []
        if self._inode is not None and (
            stat.st_ino != self._inode or stat.st_size < self._position
        ):
            # Truncated in place or atomically replaced: restart.
            self._position = 0
            self._buffer = b""
        self._inode = stat.st_ino
        if stat.st_size <= self._position:
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self._position)
            chunk = handle.read()
            self._position = handle.tell()
        data = self._buffer + chunk
        lines = data.split(b"\n")
        self._buffer = lines.pop()  # torn tail: kept for the next poll
        events: list[dict] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            if isinstance(payload, dict):
                events.append(payload)
        return events


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a JSONL event log.

    A torn *trailing* line (interrupted append) is dropped silently;
    corruption anywhere else raises :class:`TelemetryError`.
    """
    path = Path(path)
    raw = path.read_text().splitlines()
    events: list[dict] = []
    for index, line in enumerate(raw):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("event line is not an object")
        except ValueError as exc:
            if index == len(raw) - 1:
                continue
            raise TelemetryError(
                f"corrupt event log {path} at line {index + 1}: {exc}"
            ) from exc
        events.append(payload)
    return events


# ----------------------------------------------------------------------
# CSV window time-series
# ----------------------------------------------------------------------

#: CSV column order: identity, then the raw counters of WINDOW_FIELDS.
CSV_COLUMNS: tuple[str, ...] = ("window", "start_refs", "end_refs", "level")


def write_windows_csv(
    records: Sequence[WindowRecord], path: str | Path
) -> Path:
    """Write window records as CSV, atomically.

    One row per (window, level); raw counters only, so a read-back
    reconstructs the records exactly (derived rates are recomputed).
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(CSV_COLUMNS + WINDOW_FIELDS)
    for record in records:
        writer.writerow(
            [record.index, record.start_refs, record.end_refs, record.level]
            + [getattr(record, f) for f in WINDOW_FIELDS]
        )
    return atomic_write_text(path, buffer.getvalue())


def read_windows_csv(path: str | Path) -> list[WindowRecord]:
    """Load window records written by :func:`write_windows_csv`.

    Raises:
        TelemetryError: on a missing/reordered header or a bad row.
    """
    path = Path(path)
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise TelemetryError(f"empty windows CSV {path}") from None
        expected = list(CSV_COLUMNS + WINDOW_FIELDS)
        if header != expected:
            raise TelemetryError(
                f"unexpected windows CSV header in {path}: {header!r}"
            )
        records = []
        for row_number, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                records.append(
                    WindowRecord(
                        index=int(row[0]),
                        start_refs=int(row[1]),
                        end_refs=int(row[2]),
                        level=row[3],
                        **{
                            f: int(v)
                            for f, v in zip(WINDOW_FIELDS, row[4:])
                        },
                    )
                )
            except (ValueError, TypeError) as exc:
                raise TelemetryError(
                    f"bad windows CSV row {row_number} in {path}: {exc}"
                ) from exc
    return records


# ----------------------------------------------------------------------
# Prometheus snapshot
# ----------------------------------------------------------------------


def write_prometheus(
    registry, path: str | Path, extra_labels: dict[str, str] | None = None
) -> Path:
    """Write a registry's Prometheus text snapshot, atomically.

    ``extra_labels`` are stamped onto every sample at render time (run
    correlation labels; see :meth:`MetricsRegistry.render_prometheus`).
    """
    return atomic_write_text(
        path, registry.render_prometheus(extra_labels)
    )

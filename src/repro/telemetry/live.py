"""Live observability plane: HTTP/SSE serving + terminal dashboard.

Every other telemetry surface is post-hoc: events, metrics, windows
and profiles are only inspectable after the run (or by re-running
``telemetry report``). This module makes a campaign observable *while
it runs* — and keeps working, unchanged, on a finished run's
directory:

- :class:`TelemetryServer` — a stdlib-only (``http.server``) HTTP
  service over a telemetry directory. Started in-process next to a
  sweep (``sweep --serve [PORT]``) it renders the active registry
  live and answers readiness from the supervised pool's heartbeats;
  started detached (``telemetry serve DIR``) it serves the on-disk
  artifacts of any run, finished or not. Endpoints:

  ========================  ==========================================
  ``GET /metrics``          Prometheus text: live registry render
                            (in-process) or ``metrics.prom`` bytes
                            (detached).
  ``GET /events``           SSE stream tailing every ``events.jsonl``
                            under the directory — torn-tail-tolerant,
                            following ``worker-K/`` subdirectories as
                            they appear, resumable via
                            ``Last-Event-ID``.
  ``GET /runs``             The run ids observed, with brief progress.
  ``GET /runs/ID/progress`` Cell counts by status, reused / failed /
                            poisoned, per-workload progress, worker
                            liveness, recent supervision events, and
                            an ETA priced exactly like
                            :class:`~repro.telemetry.progress.ProgressReporter`.
  ``GET /healthz``          Liveness (always 200 while serving).
  ``GET /readyz``           Readiness: 503 when the supervised pool is
                            exhausted, hung, or dead
                            (:func:`pool_readiness`).
  ========================  ==========================================

- :func:`watch` — a live in-terminal ANSI dashboard (no dependencies)
  over the same feed, pointed at either a serve URL or a directory:
  per-workload progress bars, rolling hit-rate gauges from the window
  events, worker liveness, and the last N supervision events.

**SSE resume semantics.** Event identity is the existing
``(run, worker, seq)`` triple; per-worker ``seq`` is monotone (it
continues across resumes). A single scalar cannot resume N interleaved
per-worker streams, so each SSE ``id:`` carries a full cursor — comma
separated ``source=seq`` high-water marks (e.g.
``root=41,worker-0=17``). A client reconnecting with ``Last-Event-ID``
set to any previously received id gets every event it has not seen,
each exactly once (:class:`EventCursor`).

**Security.** The server binds ``127.0.0.1`` by default and performs
no authentication; exposing it beyond localhost is an explicit opt-in
(``--host``) for trusted networks only.

The SSE stream and the progress API are the foundation the ROADMAP's
campaign server builds on: it reuses both unchanged.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, TextIO
from urllib.parse import parse_qs, urlsplit

from repro.errors import TelemetryError
from repro.telemetry.core import EVENTS_FILE, METRICS_FILE
from repro.telemetry.exporters import JsonlTailer
from repro.telemetry.observatory import ROOT_WORKER, worker_index
from repro.telemetry.progress import format_duration, price_eta
from repro.telemetry.report import _SUPERVISION_EVENTS

#: Default bind address: localhost only (see the security note above).
DEFAULT_HOST = "127.0.0.1"

#: Content type of the Prometheus exposition format.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Supervision events kept (per run) for the progress API / dashboard.
RECENT_SUPERVISION = 8

#: Rolling window of hit-rate samples kept per level.
HIT_RATE_SAMPLES = 24

#: Run id bucket for events recorded without a RunContext.
UNKNOWN_RUN = "unidentified"


# ----------------------------------------------------------------------
# SSE resume cursor
# ----------------------------------------------------------------------


class EventCursor:
    """Per-source high-water marks over ``(worker, seq)`` identities.

    Encoded into every SSE ``id:`` (``root=41,worker-0=17``) so a
    reconnect with ``Last-Event-ID`` resumes *all* interleaved
    per-worker streams at once: an event is admitted exactly when its
    ``seq`` is above the cursor's mark for its source, so no
    ``(run, worker, seq)`` is ever delivered twice across reconnects.
    """

    def __init__(self, positions: dict[str, int] | None = None) -> None:
        self.positions: dict[str, int] = dict(positions or {})

    def admits(self, source: str, seq: int) -> bool:
        """Whether ``seq`` from ``source`` is new to this cursor."""
        return seq > self.positions.get(source, -1)

    def advance(self, source: str, seq: int) -> None:
        """Raise ``source``'s high-water mark to at least ``seq``."""
        if seq > self.positions.get(source, -1):
            self.positions[source] = seq

    def encode(self) -> str:
        """``source=seq`` pairs, comma separated, sorted for stability."""
        return ",".join(
            f"{source}={seq}"
            for source, seq in sorted(self.positions.items())
        )

    @classmethod
    def decode(cls, text: str | None) -> "EventCursor":
        """Parse an encoded cursor; malformed fragments are ignored
        (worst case the client re-receives some events — never loses
        any)."""
        cursor = cls()
        for item in (text or "").split(","):
            source, _, raw = item.strip().partition("=")
            if not source or not raw:
                continue
            try:
                cursor.advance(source, int(raw))
            except ValueError:
                continue
        return cursor


# ----------------------------------------------------------------------
# Directory following
# ----------------------------------------------------------------------


class DirectoryFollower:
    """Tail every ``events.jsonl`` under a telemetry run directory.

    Follows the root log plus each ``worker-K/`` subdirectory's log,
    discovering new worker directories on every poll (the pool creates
    them as it spawns workers mid-run). Yields ``(source, event)``
    pairs where ``source`` is the directory-derived worker label —
    stable across reconnects, which is what the SSE cursor keys on.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._tailers: dict[str, JsonlTailer] = {
            ROOT_WORKER: JsonlTailer(self.root / EVENTS_FILE)
        }

    def _discover(self) -> None:
        try:
            children = list(self.root.iterdir())
        except (FileNotFoundError, NotADirectoryError):
            return
        for child in children:
            if not child.is_dir() or worker_index(child) is None:
                continue
            if child.name not in self._tailers:
                self._tailers[child.name] = JsonlTailer(child / EVENTS_FILE)

    @staticmethod
    def _order(source: str) -> tuple[int, int | None, str]:
        index = worker_index(Path(source))
        return (0, 0, "") if source == ROOT_WORKER else (1, index, source)

    def poll(self) -> list[tuple[str, dict]]:
        """New complete events since the last poll, per-source ordered."""
        self._discover()
        fresh: list[tuple[str, dict]] = []
        for source in sorted(self._tailers, key=self._order):
            for event in self._tailers[source].poll():
                fresh.append((source, event))
        return fresh


def event_source(source: str, event: dict) -> str:
    """The cursor key for one event: its stamped ``worker`` identity
    when present, else the directory it was read from."""
    worker = event.get("worker")
    return str(worker) if worker else source


# ----------------------------------------------------------------------
# Progress tracking
# ----------------------------------------------------------------------


class ProgressTracker:
    """Fold one run's event stream into a progress snapshot.

    Consumes the same events the sweep executor emits
    (``sweep_started`` / ``sweep_resume`` / ``cell_finished`` /
    ``window`` / supervision kinds) and answers the ``/runs/ID/progress``
    endpoint: counts by status, per-workload progress, worker liveness,
    rolling hit rates, and an ETA priced by the exact formula
    :class:`~repro.telemetry.progress.ProgressReporter` prints.
    """

    def __init__(self, run_id: str) -> None:
        self.run_id = run_id
        self.total = 0
        self.designs = 0
        self.done = 0
        self.evaluated = 0
        self.evaluated_s = 0.0
        self.expected_reused = 0
        self.reused_done = 0
        self.by_status: dict[str, int] = {}
        self.workloads: dict[str, dict] = {}
        self.workers: dict[str, str] = {}
        self.supervision: deque = deque(maxlen=RECENT_SUPERVISION)
        self.hit_rates: dict[str, deque] = {}
        self.first_ts: float | None = None
        self.last_ts: float | None = None
        self.finished = False

    def consume(self, event: dict) -> None:
        """Fold one event into the running counters."""
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            if self.first_ts is None or ts < self.first_ts:
                self.first_ts = ts
            if self.last_ts is None or ts > self.last_ts:
                self.last_ts = ts
        kind = str(event.get("kind", "event"))
        if kind == "sweep_started":
            self.total = int(event.get("cells", 0))
            self.designs = int(event.get("designs", 0))
        elif kind == "sweep_resume":
            self.expected_reused = int(event.get("reused", 0))
        elif kind == "sweep_finished":
            self.finished = True
        elif kind == "cell_finished":
            self._cell_finished(event)
        elif kind == "window":
            self._window(event)
        if kind in _SUPERVISION_EVENTS:
            self._supervision(kind, event)

    def _cell_finished(self, event: dict) -> None:
        self.done += 1
        status = str(event.get("status", "?"))
        self.by_status[status] = self.by_status.get(status, 0) + 1
        duration = float(event.get("duration_s", 0.0) or 0.0)
        if event.get("from_journal"):
            self.reused_done += 1
        elif status != "skipped":
            self.evaluated += 1
            self.evaluated_s += duration
        workload = str(event.get("workload", "?"))
        per = self.workloads.setdefault(
            workload, {"done": 0, "by_status": {}}
        )
        per["done"] += 1
        per["by_status"][status] = per["by_status"].get(status, 0) + 1

    def _window(self, event: dict) -> None:
        levels = event.get("levels")
        if not isinstance(levels, dict):
            return
        for level, values in levels.items():
            if not isinstance(values, dict):
                continue
            rate = values.get("hit_rate")
            if isinstance(rate, (int, float)):
                self.hit_rates.setdefault(
                    str(level), deque(maxlen=HIT_RATE_SAMPLES)
                ).append(float(rate))

    def _supervision(self, kind: str, event: dict) -> None:
        entry = {"kind": kind}
        for field in ("pool_worker", "cell", "stage", "reason",
                      "exitcode", "pending"):
            if event.get(field) is not None:
                entry[field] = event[field]
        if isinstance(event.get("ts"), (int, float)):
            entry["ts"] = event["ts"]
        self.supervision.append(entry)
        worker = event.get("pool_worker")
        if worker:
            if kind in ("worker_spawned", "worker_respawned"):
                self.workers[str(worker)] = "alive"
            elif kind == "worker_died":
                self.workers[str(worker)] = "dead"

    def eta_s(self) -> float | None:
        """Remaining seconds via the shared reporter pricing."""
        if not self.total:
            return None
        return price_eta(
            total=self.total,
            done=self.done,
            evaluated=self.evaluated,
            evaluated_s=self.evaluated_s,
            expected_reused=self.expected_reused,
            reused_done=self.reused_done,
        )

    def brief(self) -> dict:
        """The ``/runs`` row for this run."""
        return {
            "run": self.run_id,
            "total": self.total,
            "done": self.done,
            "finished": self.finished,
            "by_status": dict(self.by_status),
            "last_ts": self.last_ts,
        }

    def snapshot(self) -> dict:
        """The full ``/runs/ID/progress`` document."""
        per_workload_total = self.designs or None
        return {
            "run": self.run_id,
            "total": self.total,
            "done": self.done,
            "finished": self.finished,
            "by_status": dict(self.by_status),
            "reused": self.reused_done,
            "failed": self.by_status.get("failed", 0),
            "poisoned": self.by_status.get("poisoned", 0),
            "evaluated": self.evaluated,
            "evaluated_s": self.evaluated_s,
            "eta_s": self.eta_s(),
            "workloads": {
                name: {
                    "total": per_workload_total,
                    "done": per["done"],
                    "by_status": dict(per["by_status"]),
                }
                for name, per in sorted(self.workloads.items())
            },
            "workers": dict(sorted(self.workers.items())),
            "supervision": list(self.supervision),
            "hit_rates": {
                level: list(rates)
                for level, rates in sorted(self.hit_rates.items())
            },
            "first_ts": self.first_ts,
            "last_ts": self.last_ts,
        }


def read_journal_progress(path: str | Path) -> dict[str, dict]:
    """Per-run cell counts straight from a campaign journal.

    Tolerant reader (torn tails and foreign lines are skipped): the
    journal is the authoritative per-cell record, so ``/runs/ID/progress``
    carries its counts alongside the event-derived ones when a journal
    lives in (or is pointed at from) the telemetry directory.
    """
    path = Path(path)
    runs: dict[str, dict] = {}
    try:
        raw = path.read_text()
    except (FileNotFoundError, NotADirectoryError, OSError):
        return runs
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if not isinstance(entry, dict) or "status" not in entry:
            continue
        run_id = str(entry.get("run_id") or UNKNOWN_RUN)
        per = runs.setdefault(run_id, {"entries": 0, "by_status": {}})
        per["entries"] += 1
        status = str(entry["status"])
        per["by_status"][status] = per["by_status"].get(status, 0) + 1
    return runs


class RunIndex:
    """Thread-safe per-run progress over a followed directory tree.

    The server refreshes it lazily on each ``/runs`` request (events
    are routed to a :class:`ProgressTracker` per run id); ``watch``
    uses it directly in DIR mode, so URL and DIR dashboards render the
    same structure.
    """

    def __init__(
        self, root: str | Path, *, journal: str | Path | None = None
    ) -> None:
        self.root = Path(root)
        self.journal = Path(journal) if journal is not None else None
        self._follower = DirectoryFollower(self.root)
        self._runs: dict[str, ProgressTracker] = {}
        self._lock = threading.Lock()

    def refresh(self) -> None:
        """Consume everything appended since the previous refresh."""
        with self._lock:
            for _, event in self._follower.poll():
                run_id = str(event.get("run") or UNKNOWN_RUN)
                tracker = self._runs.get(run_id)
                if tracker is None:
                    tracker = self._runs[run_id] = ProgressTracker(run_id)
                tracker.consume(event)

    def runs(self) -> list[dict]:
        """Brief rows for ``/runs``, most recent run id last."""
        self.refresh()
        with self._lock:
            return [
                self._runs[run_id].brief()
                for run_id in sorted(self._runs)
            ]

    def latest_run_id(self) -> str | None:
        """The lexicographically last run id (ids sort by timestamp)."""
        self.refresh()
        with self._lock:
            return max(self._runs) if self._runs else None

    def progress(self, run_id: str) -> dict | None:
        """The full progress document for one run, or None."""
        self.refresh()
        with self._lock:
            tracker = self._runs.get(run_id)
            if tracker is None:
                return None
            snapshot = tracker.snapshot()
        if self.journal is not None:
            snapshot["journal"] = read_journal_progress(
                self.journal
            ).get(run_id)
        return snapshot


# ----------------------------------------------------------------------
# Readiness policy
# ----------------------------------------------------------------------


def pool_readiness(snapshot: dict | None) -> tuple[bool, dict]:
    """Judge a :meth:`SupervisedPool.heartbeat_snapshot` for ``/readyz``.

    ``None`` (no pool running: serial campaign, detached serving, or
    the pool already finished) is idle-and-ready. A snapshot flips
    readiness when the pool is exhausted, has no live workers left, or
    any live worker is under watchdog escalation / silent past the
    heartbeat timeout while holding a cell.
    """
    if snapshot is None:
        return True, {"state": "idle"}
    if snapshot.get("exhausted"):
        return False, {"state": "exhausted"}
    workers = snapshot.get("workers") or []
    live = [w for w in workers if w.get("alive")]
    if workers and not live:
        return False, {"state": "no_live_workers"}
    timeout = float(snapshot.get("heartbeat_timeout_s") or 10.0)
    hung = [
        str(w.get("worker"))
        for w in live
        if w.get("stage")
        or (w.get("inflight") and float(w.get("beat_age_s", 0.0)) > timeout)
    ]
    if hung:
        return False, {"state": "hung", "workers": hung}
    state = "drained" if snapshot.get("drained") else "serving"
    return True, {"state": state, "workers_alive": len(live)}


# ----------------------------------------------------------------------
# The HTTP server
# ----------------------------------------------------------------------


class _LiveHandler(BaseHTTPRequestHandler):
    """Request handler; the owning :class:`TelemetryServer` hangs off
    the ``http.server`` instance as ``live_server``."""

    server_version = "repro-telemetry"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # quiet: one line per SSE keepalive would swamp stderr

    # -- plumbing -------------------------------------------------------

    @property
    def live(self) -> "TelemetryServer":
        return self.server.live_server  # type: ignore[attr-defined]

    def _send_body(
        self, status: int, body: bytes, content_type: str
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict | list) -> None:
        body = json.dumps(payload, indent=2, default=str).encode() + b"\n"
        self._send_body(status, body, "application/json")

    # -- routing --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parts = urlsplit(self.path)
        segments = [s for s in parts.path.split("/") if s]
        try:
            if segments == ["healthz"]:
                self._send_json(200, {"status": "alive"})
            elif segments == ["readyz"]:
                self._serve_readyz()
            elif segments == ["metrics"]:
                self._serve_metrics()
            elif segments == ["runs"]:
                self._send_json(200, self.live.index.runs())
            elif len(segments) == 3 and segments[0] == "runs" \
                    and segments[2] == "progress":
                self._serve_progress(segments[1])
            elif segments == ["events"]:
                self._serve_events(parse_qs(parts.query))
            elif not segments:
                self._send_json(200, {
                    "service": "repro-telemetry",
                    "directory": str(self.live.directory),
                    "endpoints": [
                        "/metrics", "/events", "/runs",
                        "/runs/<run_id>/progress", "/healthz", "/readyz",
                    ],
                })
            else:
                self._send_json(404, {"error": f"no route {parts.path}"})
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response

    # -- endpoints ------------------------------------------------------

    def _serve_readyz(self) -> None:
        probe = self.live.readiness
        snapshot = probe() if probe is not None else None
        ready, detail = pool_readiness(snapshot)
        self._send_json(
            200 if ready else 503, {"ready": ready, **detail}
        )

    def _serve_metrics(self) -> None:
        registry = self.live.registry
        if registry is not None:
            text = registry.render_prometheus(self.live.extra_labels)
            self._send_body(200, text.encode(), PROM_CONTENT_TYPE)
            return
        path = self.live.directory / METRICS_FILE
        try:
            body = path.read_bytes()
        except (FileNotFoundError, NotADirectoryError):
            self._send_json(
                404, {"error": f"no {METRICS_FILE} in "
                               f"{self.live.directory} yet"}
            )
            return
        self._send_body(200, body, PROM_CONTENT_TYPE)

    def _serve_progress(self, run_id: str) -> None:
        snapshot = self.live.index.progress(run_id)
        if snapshot is None:
            self._send_json(404, {"error": f"unknown run {run_id!r}"})
            return
        self._send_json(200, snapshot)

    def _serve_events(self, query: dict[str, list[str]]) -> None:
        last_id = self.headers.get("Last-Event-ID")
        if last_id is None and query.get("last_event_id"):
            last_id = query["last_event_id"][0]
        cursor = EventCursor.decode(last_id)
        follower = DirectoryFollower(self.live.directory)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        live = self.live
        last_write = time.monotonic()
        try:
            while not live.stopping.is_set():
                wrote = False
                for source, event in follower.poll():
                    key = event_source(source, event)
                    seq = event.get("seq")
                    if isinstance(seq, int):
                        if not cursor.admits(key, seq):
                            continue
                        cursor.advance(key, seq)
                    frame = (
                        f"id: {cursor.encode()}\n"
                        f"data: {json.dumps(event, default=str)}\n\n"
                    )
                    self.wfile.write(frame.encode())
                    wrote = True
                now = time.monotonic()
                if wrote:
                    self.wfile.flush()
                    last_write = now
                    continue  # drain quickly while events keep landing
                if now - last_write >= live.keepalive_s:
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    last_write = now
                live.stopping.wait(live.poll_interval_s)
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client disconnected; its cursor lets it resume


class TelemetryServer:
    """Serve a telemetry directory over HTTP (see module docstring).

    Args:
        directory: the telemetry directory to serve (a run root; its
            ``worker-K/`` subdirectories are followed automatically).
        host: bind address — ``127.0.0.1`` by default; widening it is
            an explicit, trusted-network-only decision.
        port: TCP port; 0 picks an ephemeral one (read :attr:`port`
            after :meth:`start`).
        registry: a live :class:`MetricsRegistry` to render for
            ``/metrics`` (in-process mode); None serves the on-disk
            ``metrics.prom`` instead (detached mode).
        extra_labels: labels stamped onto live ``/metrics`` renders
            (a run context's ``run`` / ``worker`` pair).
        readiness: zero-arg callable returning a pool heartbeat
            snapshot (or None when idle) — typically
            ``executor.pool_snapshot``; judged by
            :func:`pool_readiness`. None means always ready.
        journal: campaign journal whose per-run counts are merged into
            ``/runs/ID/progress`` (None skips the journal section).
        poll_interval_s / keepalive_s: SSE tail poll period and
            comment-keepalive interval.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        host: str = DEFAULT_HOST,
        port: int = 0,
        registry=None,
        extra_labels: dict[str, str] | None = None,
        readiness: Callable[[], dict | None] | None = None,
        journal: str | Path | None = None,
        poll_interval_s: float = 0.1,
        keepalive_s: float = 10.0,
    ) -> None:
        self.directory = Path(directory)
        self.host = host
        self.port = int(port)
        self.registry = registry
        self.extra_labels = extra_labels
        self.readiness = readiness
        self.poll_interval_s = float(poll_interval_s)
        self.keepalive_s = float(keepalive_s)
        self.index = RunIndex(self.directory, journal=journal)
        self.stopping = threading.Event()
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "TelemetryServer":
        """Bind and serve on a daemon thread; returns self."""
        if self._httpd is not None:
            return self
        try:
            httpd = ThreadingHTTPServer(
                (self.host, self.port), _LiveHandler
            )
        except OSError as exc:
            raise TelemetryError(
                f"cannot bind telemetry server on "
                f"{self.host}:{self.port}: {exc}"
            ) from exc
        httpd.daemon_threads = True
        httpd.live_server = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self.stopping.clear()
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": self.poll_interval_s},
            name="repro-telemetry-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def url(self) -> str:
        """The server's base URL."""
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Graceful shutdown: SSE streams end, then the socket closes."""
        httpd = self._httpd
        if httpd is None:
            return
        self.stopping.set()  # SSE loops exit within one poll interval
        httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        httpd.server_close()
        self._httpd = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


# ----------------------------------------------------------------------
# The terminal dashboard
# ----------------------------------------------------------------------

#: ANSI: cursor home + erase to end of screen (no full clear: avoids
#: flicker on redraw).
ANSI_REDRAW = "\x1b[H\x1b[J"

_STATUS_GLYPHS = (
    ("ok", "ok"), ("failed", "fail"), ("timed_out", "timeout"),
    ("poisoned", "poison"), ("skipped", "skip"),
)


def _bar(fraction: float, width: int = 28) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def render_dashboard(
    progress: dict | None,
    ready: dict | None = None,
    *,
    source: str = "",
    width: int = 72,
) -> str:
    """One dashboard frame as plain text (pure: trivially testable).

    Renders the ``/runs/ID/progress`` document: overall + per-workload
    progress bars, rolling hit-rate gauges, worker liveness, and the
    recent supervision events. ``ready`` is the ``/readyz`` document
    when available.
    """
    title = "repro live telemetry"
    if source:
        title += f" — {source}"
    lines = [title, "=" * min(width, len(title))]
    if progress is None:
        lines.append("waiting for events ...")
        return "\n".join(lines) + "\n"

    total = progress.get("total") or 0
    done = progress.get("done", 0)
    state = "finished" if progress.get("finished") else "running"
    if ready is not None:
        state += " | ready" if ready.get("ready") else (
            f" | NOT READY ({ready.get('state', '?')})"
        )
    lines.append(f"run {progress.get('run', '?')}  [{state}]")
    counts = ", ".join(
        f"{label} {progress.get('by_status', {}).get(status, 0)}"
        for status, label in _STATUS_GLYPHS
        if progress.get("by_status", {}).get(status)
    )
    eta_s = progress.get("eta_s")
    if progress.get("finished") or (total and done >= total):
        eta = "done"
    elif isinstance(eta_s, (int, float)):
        eta = "ETA " + format_duration(eta_s)
    else:
        eta = "ETA ?"
    if total:
        frac = done / total
        lines.append(
            f"cells {_bar(frac)} {done}/{total} ({frac:4.0%})  {eta}"
        )
    else:
        lines.append(f"cells {done} finished  {eta}")
    if counts:
        lines.append(f"  {counts}"
                     + (f", {progress['reused']} reused"
                        if progress.get("reused") else ""))

    workloads = progress.get("workloads") or {}
    if workloads:
        lines.append("")
        lines.append("workloads")
        name_w = max(len(name) for name in workloads)
        for name, per in workloads.items():
            per_total = per.get("total")
            per_done = per.get("done", 0)
            if per_total:
                lines.append(
                    f"  {name:<{name_w}} "
                    f"{_bar(per_done / per_total, 20)} "
                    f"{per_done}/{per_total}"
                )
            else:
                lines.append(f"  {name:<{name_w}} {per_done} done")

    hit_rates = progress.get("hit_rates") or {}
    if hit_rates:
        lines.append("")
        lines.append("hit rates (rolling)")
        level_w = max(len(level) for level in hit_rates)
        for level, rates in hit_rates.items():
            if not rates:
                continue
            latest = rates[-1]
            lines.append(
                f"  {level:<{level_w}} {_bar(latest, 20)} {latest:6.4f}"
            )

    workers = progress.get("workers") or {}
    if workers:
        lines.append("")
        lines.append("workers  " + "  ".join(
            f"{name}:{status}" for name, status in workers.items()
        ))

    supervision = progress.get("supervision") or []
    if supervision:
        lines.append("")
        lines.append(f"supervision (last {len(supervision)})")
        for entry in supervision:
            detail = " ".join(
                f"{k}={entry[k]}"
                for k in ("pool_worker", "cell", "stage", "reason")
                if entry.get(k) is not None
            )
            lines.append(f"  {entry.get('kind', '?'):<16} {detail}".rstrip())
    return "\n".join(lines) + "\n"


def _http_json(url: str, timeout: float = 5.0):
    """GET a JSON document; errors (incl. 503 bodies) degrade to the
    parsed error body or None, never an exception — the dashboard must
    survive a server mid-restart."""
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        try:
            return json.loads(exc.read().decode())
        except ValueError:
            return None
    except (urllib.error.URLError, OSError, ValueError):
        return None


def _watch_state(
    target: str, index: RunIndex | None
) -> tuple[dict | None, dict | None]:
    """(progress, ready) for one dashboard frame, URL or DIR mode."""
    if index is not None:
        run_id = index.latest_run_id()
        return (
            index.progress(run_id) if run_id is not None else None,
            None,
        )
    base = target.rstrip("/")
    runs = _http_json(f"{base}/runs")
    progress = None
    if isinstance(runs, list) and runs:
        run_id = runs[-1].get("run")
        if run_id:
            progress = _http_json(f"{base}/runs/{run_id}/progress")
    ready = _http_json(f"{base}/readyz")
    if not isinstance(ready, dict) or "ready" not in ready:
        ready = None
    return progress if isinstance(progress, dict) else None, ready


def watch(
    target: str,
    *,
    interval_s: float = 1.0,
    once: bool = False,
    out: TextIO | None = None,
) -> int:
    """``telemetry watch URL|DIR``: live ANSI dashboard loop.

    ``target`` is either a serve URL (``http://...``) or a telemetry
    directory read directly. ``once`` renders a single frame without
    ANSI control codes (scripting / CI); otherwise the loop redraws
    every ``interval_s`` seconds until interrupted.
    """
    out = out if out is not None else sys.stdout
    is_url = target.startswith(("http://", "https://"))
    index = None
    if not is_url:
        directory = Path(target)
        if not directory.is_dir():
            raise TelemetryError(
                f"no telemetry directory at {directory} (pass a "
                f"--telemetry DIR or a telemetry serve URL)"
            )
        index = RunIndex(directory)
    try:
        while True:
            progress, ready = _watch_state(target, index)
            frame = render_dashboard(progress, ready, source=target)
            if once:
                out.write(frame)
                out.flush()
                return 0
            out.write(ANSI_REDRAW + frame)
            out.flush()
            time.sleep(interval_s)
    except KeyboardInterrupt:
        out.write("\n")
        return 0

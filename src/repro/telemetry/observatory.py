"""The run observatory: correlate, merge, visualize, and diff runs.

Since sweeps went process-parallel, one campaign ("run") writes N+1
telemetry directories — the coordinating process's root directory plus
one ``worker-K/`` subdirectory per pool worker — and a resumed
campaign appends to the same tree. This module turns that tree back
into one coherent story:

- :func:`aggregate_run` discovers a run's sources and merges them in
  memory: ``events.jsonl`` streams become a single ordered run log
  (torn-tolerant, deduplicated by the ``(run, worker, seq)``
  correlation triple), Prometheus snapshots are summed sample-by-
  sample with the per-worker ``run``/``worker`` labels stripped, and
  window CSVs are concatenated with provenance.
- :func:`write_merged` persists that view as a directory that is
  itself readable by every telemetry tool (``events.jsonl``,
  ``metrics.prom``, plus ``run_windows.csv`` with ``run`` / ``worker``
  / ``context`` provenance columns).
- :func:`chrome_trace` renders the merged spans as a Chrome
  ``trace_event`` timeline (``chrome://tracing`` / Perfetto): one
  process track per worker, complete slices for spans, async slices
  for sweep cells, counter tracks for per-window hit rates.
- :func:`diff_runs` compares two aggregated runs — per-span-name
  duration deltas, per-level hit-rate deltas, engine vector-fraction
  deltas, cell-failure counts, and worker-pool supervision health
  (increases in poisoned cells or worker restarts regress) — against
  configurable regression thresholds, the contract behind
  ``repro telemetry diff``'s nonzero CI exit code.

Merging is **conservative by construction**: events are concatenated
(never rewritten), and metric sums over workers equal the merged
values exactly — the same conservation discipline the window
time-series already guarantee against ``HierarchyStats``.
"""

from __future__ import annotations

import csv
import io
import json
import re
from collections import Counter as _TallyCounter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import TelemetryError
from repro.telemetry.core import EVENTS_FILE, METRICS_FILE
from repro.telemetry.exporters import (
    CSV_COLUMNS,
    atomic_write_text,
    read_jsonl,
    read_windows_csv,
)
from repro.telemetry.profiling import (
    DEFAULT_HZ,
    PROFILE_FILE,
    HotspotDigest,
    function_shares,
    hotspot_digests,
    merge_records,
    read_profile,
    total_samples,
)
from repro.telemetry.registry import _escape, _render_value
from repro.telemetry.report import (
    LevelDigest,
    SpanDigest,
    TelemetrySummary,
    _digest_engines,
    _digest_windows,
    _parse_prom_line,
    supervision_digest,
)
from repro.telemetry.windows import WINDOW_FIELDS, WindowRecord

#: Provenance label of the coordinating process's directory.
ROOT_WORKER = "root"

#: Merged window CSV (deliberately *not* matching ``windows_*.csv``,
#: so a merged directory's combined file is never re-read as a stage).
MERGED_WINDOWS_FILE = "run_windows.csv"

#: Default Chrome-trace output name.
TRACE_FILE = "trace.json"

#: Labels stripped (and thereby summed over) when merging metrics.
_PROVENANCE_LABELS = ("run", "worker")

_WORKER_DIR = re.compile(r"^worker-(\d+)$")


def worker_index(path: str | Path) -> int | None:
    """The worker number of a ``worker-K`` directory name, else None."""
    match = _WORKER_DIR.match(Path(path).name)
    return int(match.group(1)) if match else None


# ----------------------------------------------------------------------
# Discovery and aggregation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WindowRow:
    """One window record with its run provenance.

    Attributes:
        run: run id the record belongs to ("" when unknown).
        worker: source directory label (``root`` / ``worker-K``).
        context: stage label (from the CSV file name).
        record: the raw :class:`WindowRecord`.
    """

    run: str
    worker: str
    context: str
    record: WindowRecord


@dataclass
class RunAggregate:
    """One run's telemetry, merged across its worker directories.

    Attributes:
        root: the aggregated run root (or merged directory).
        run_ids: distinct run ids seen, in first-seen event order.
        sources: provenance labels aggregated (``root``, ``worker-0``,
            ...), in discovery order.
        events: the merged run log — ordered by ``(ts, worker, seq)``
            and deduplicated by ``(run, worker, seq)``.
        metric_kinds: Prometheus base-metric name -> kind.
        metrics: sample name -> {label tuple -> summed value}; bucket/
            sum/count samples of histograms appear under their
            exposition names.
        windows: every window record with provenance.
        profiles: merged sampled-profiler records (counts summed per
            identical attribution, ``worker`` provenance preserved so
            per-worker sample totals are conserved exactly).
    """

    root: Path
    run_ids: list[str] = field(default_factory=list)
    sources: list[str] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    metric_kinds: dict[str, str] = field(default_factory=dict)
    metrics: dict[str, dict[tuple, float]] = field(default_factory=dict)
    windows: list[WindowRow] = field(default_factory=list)
    profiles: list[dict] = field(default_factory=list)

    @property
    def run_id(self) -> str | None:
        """The run id (last seen wins; None for pre-observatory runs)."""
        return self.run_ids[-1] if self.run_ids else None

    def metric_value(self, name: str, /, **labels: str) -> float:
        """One merged sample's value (0.0 when absent)."""
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        return self.metrics.get(name, {}).get(key, 0.0)

    # -- digests used by report/diff ------------------------------------

    def span_digests(self) -> list[SpanDigest]:
        """Per-span-name duration digests over the merged run log."""
        spans: dict[str, SpanDigest] = {}
        for event in self.events:
            if event.get("kind") != "span" or "name" not in event:
                continue
            digest = spans.setdefault(
                event["name"], SpanDigest(event["name"])
            )
            duration = float(event.get("duration_s", 0.0))
            digest.count += 1
            digest.total_s += duration
            digest.max_s = max(digest.max_s, duration)
        return sorted(spans.values(), key=lambda d: d.total_s, reverse=True)

    def level_digests(self) -> list[LevelDigest]:
        """Per-level window sums across every stage and worker."""
        by_level: dict[str, LevelDigest] = {}
        for row in self.windows:
            digest = by_level.setdefault(
                row.record.level, LevelDigest(row.record.level)
            )
            digest.accesses += row.record.accesses
            digest.hits += row.record.hits
            digest.bytes_moved += row.record.bytes_moved
            digest.writebacks += row.record.writebacks
        return sorted(by_level.values(), key=lambda d: d.level)

    def vector_fractions(self) -> dict[str, float]:
        """Per-level engine vector fraction from the merged metrics."""
        runs: dict[str, dict[str, float]] = {}
        for key, value in self.metrics.get("repro_engine_runs", {}).items():
            labels = dict(key)
            level = labels.get("level")
            if level is None:
                continue
            path = "vector" if labels.get("path") == "vector" else "scalar"
            runs.setdefault(level, {})[path] = (
                runs.setdefault(level, {}).get(path, 0.0) + value
            )
        fractions = {}
        for level, paths in runs.items():
            total = paths.get("vector", 0.0) + paths.get("scalar", 0.0)
            if total:
                fractions[level] = paths.get("vector", 0.0) / total
        return fractions

    def cell_status_counts(self) -> dict[str, float]:
        """Finished-cell counts by status from the merged metrics."""
        counts: dict[str, float] = {}
        for key, value in self.metrics.get(
            "repro_sweep_cells_total", {}
        ).items():
            status = dict(key).get("status", "?")
            counts[status] = counts.get(status, 0.0) + value
        return counts

    def profile_samples(self) -> int:
        """Total sampled-profiler samples across the run."""
        return total_samples(self.profiles)

    def profile_samples_by_worker(self) -> dict[str, int]:
        """Sample totals per source worker (conserved under merge)."""
        totals: dict[str, int] = {}
        for record in self.profiles:
            worker = str(record.get("worker", ROOT_WORKER))
            totals[worker] = totals.get(worker, 0) + int(
                record.get("count", 0)
            )
        return totals

    def hotspots(self, top: int = 5) -> list[HotspotDigest]:
        """Top functions by inclusive samples, per stage."""
        return hotspot_digests(self.profiles, top=top)

    def function_shares(self) -> dict[str, float]:
        """Inclusive sample share per function (for the diff gate)."""
        return function_shares(self.profiles)

    def supervision_counts(self) -> dict[str, float]:
        """Supervised-pool health counters from the merged metrics."""
        return {
            "restarts": self.metric_value("repro_pool_restarts_total"),
            "requeues": self.metric_value("repro_pool_requeues_total"),
            "poisoned": self.metric_value(
                "repro_pool_poisoned_cells_total"
            ),
            "worker_deaths": self.metric_value(
                "repro_pool_worker_deaths_total"
            ),
            "escalations": self.metric_value(
                "repro_pool_escalations_total"
            ),
        }


def discover_sources(root: str | Path) -> list[tuple[str, Path]]:
    """A run's telemetry sources: the root itself plus ``worker-K/``.

    Worker directories sort numerically (worker-2 before worker-10).

    Raises:
        TelemetryError: when ``root`` is not a directory or holds no
            telemetry artifacts at all.
    """
    root = Path(root)
    if not root.is_dir():
        raise TelemetryError(f"no telemetry directory at {root}")
    sources: list[tuple[str, Path]] = []
    root_has_artifacts = (
        (root / EVENTS_FILE).exists()
        or (root / METRICS_FILE).exists()
        or (root / MERGED_WINDOWS_FILE).exists()
        or (root / PROFILE_FILE).exists()
        or any(root.glob("windows_*.csv"))
    )
    if root_has_artifacts:
        sources.append((ROOT_WORKER, root))
    workers = []
    for child in root.iterdir():
        match = _WORKER_DIR.match(child.name)
        if match and child.is_dir():
            workers.append((int(match.group(1)), child))
    for _, directory in sorted(workers):
        sources.append((directory.name, directory))
    if not sources:
        raise TelemetryError(
            f"no telemetry artifacts under {root} (expected "
            f"{EVENTS_FILE}, {METRICS_FILE}, windows_*.csv, or "
            f"worker-*/ directories)"
        )
    return sources


def _source_events(label: str, directory: Path) -> list[dict]:
    """One source's events with provenance defaults for legacy logs.

    Events written before run contexts existed carry no ``worker`` /
    ``seq`` fields; the source directory and line index stand in so
    the merge key stays unique without rewriting anything recorded.
    """
    path = directory / EVENTS_FILE
    if not path.exists():
        return []
    events = read_jsonl(path)  # drops a kill-torn trailing line
    for index, event in enumerate(events):
        event.setdefault("worker", label)
        event.setdefault("seq", index)
    return events


def _merge_events(per_source: Iterable[list[dict]]) -> list[dict]:
    """Concatenate, deduplicate by (run, worker, seq), order by time.

    Ordering is ``(ts, worker, seq)``: wall-clock first (out-of-order
    appends within a file sort into place), provenance as a stable
    tiebreak so equal timestamps never shuffle between merges.
    """
    seen: set[tuple] = set()
    merged: list[dict] = []
    for events in per_source:
        for event in events:
            key = (
                event.get("run"),
                str(event.get("worker", "")),
                event.get("seq"),
            )
            if key in seen:
                continue
            seen.add(key)
            merged.append(event)
    merged.sort(
        key=lambda e: (
            float(e.get("ts", 0.0)),
            str(e.get("worker", "")),
            int(e.get("seq", 0)),
        )
    )
    return merged


def _read_metrics(path: Path) -> tuple[dict[str, str], list[tuple]]:
    """Parse one exposition file into (kinds, [(name, labels, value)])."""
    kinds: dict[str, str] = {}
    samples: list[tuple] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) == 4 and parts[1] == "TYPE":
                kinds[parts[2]] = parts[3]
            continue
        parsed = _parse_prom_line(line)
        if parsed is None:
            raise TelemetryError(
                f"unparseable metrics line in {path}: {line!r}"
            )
        samples.append(parsed)
    return kinds, samples


def _merge_metrics(
    sources: Sequence[tuple[str, Path]],
) -> tuple[dict[str, str], dict[str, dict[tuple, float]]]:
    """Sum every source's samples with provenance labels stripped.

    Counters, histogram buckets, histogram sums/counts, and gauges all
    sum — cross-worker gauges in this codebase are additive queue
    depths, and summing keeps the conservation property exact:
    ``merged == sum(workers)`` for every sample.
    """
    kinds: dict[str, str] = {}
    merged: dict[str, dict[tuple, float]] = {}
    for _, directory in sources:
        path = directory / METRICS_FILE
        if not path.exists():
            continue
        file_kinds, samples = _read_metrics(path)
        for name, kind in file_kinds.items():
            previous = kinds.setdefault(name, kind)
            if previous != kind:
                raise TelemetryError(
                    f"metric {name} is a {previous} in one worker and "
                    f"a {kind} in another; refusing to merge {path}"
                )
        for name, labels, value in samples:
            stripped = {
                k: v for k, v in labels.items()
                if k not in _PROVENANCE_LABELS
            }
            key = tuple(sorted(stripped.items()))
            bucket = merged.setdefault(name, {})
            bucket[key] = bucket.get(key, 0.0) + value
    return kinds, merged


def _read_merged_windows(path: Path) -> list[WindowRow]:
    """Load a ``run_windows.csv`` written by :func:`write_merged`."""
    expected = ["run", "worker", "context"] + list(
        CSV_COLUMNS + WINDOW_FIELDS
    )
    rows: list[WindowRow] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise TelemetryError(f"empty merged windows CSV {path}") from None
        if header != expected:
            raise TelemetryError(
                f"unexpected merged windows CSV header in {path}: {header!r}"
            )
        for number, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                record = WindowRecord(
                    index=int(row[3]), start_refs=int(row[4]),
                    end_refs=int(row[5]), level=row[6],
                    **{
                        f: int(v)
                        for f, v in zip(WINDOW_FIELDS, row[7:])
                    },
                )
            except (ValueError, TypeError) as exc:
                raise TelemetryError(
                    f"bad merged windows CSV row {number} in {path}: {exc}"
                ) from exc
            rows.append(
                WindowRow(run=row[0], worker=row[1], context=row[2],
                          record=record)
            )
    return rows


def aggregate_run(root: str | Path) -> RunAggregate:
    """Merge one run's telemetry tree into a :class:`RunAggregate`.

    Accepts either a live run root (root artifacts + ``worker-K/``
    subdirectories) or a directory previously written by
    :func:`write_merged` — aggregation is idempotent across the two.
    """
    root = Path(root)
    sources = discover_sources(root)
    aggregate = RunAggregate(root=root, sources=[s for s, _ in sources])

    per_source = [
        _source_events(label, directory) for label, directory in sources
    ]
    aggregate.events = _merge_events(per_source)
    for event in aggregate.events:
        run = event.get("run")
        if run is not None and run not in aggregate.run_ids:
            aggregate.run_ids.append(str(run))

    aggregate.metric_kinds, aggregate.metrics = _merge_metrics(sources)

    default_run = aggregate.run_id or ""
    profile_records: list[dict] = []
    for label, directory in sources:
        merged_csv = directory / MERGED_WINDOWS_FILE
        if merged_csv.exists():
            aggregate.windows.extend(_read_merged_windows(merged_csv))
        for csv_path in sorted(directory.glob("windows_*.csv")):
            context = csv_path.stem[len("windows_"):]
            for record in read_windows_csv(csv_path):
                aggregate.windows.append(
                    WindowRow(run=default_run, worker=label,
                              context=context, record=record)
                )
        for record in read_profile(directory / PROFILE_FILE):
            record.setdefault("worker", label)
            profile_records.append(record)
    # Summing per identical (run, worker, spans, cell, stack) key keeps
    # every worker's sample total exact, and makes re-aggregating a
    # merged directory a no-op — the metrics conservation discipline.
    aggregate.profiles = merge_records(profile_records)
    return aggregate


# ----------------------------------------------------------------------
# Merged-directory output
# ----------------------------------------------------------------------


def _render_merged_metrics(
    kinds: dict[str, str], metrics: dict[str, dict[tuple, float]]
) -> str:
    """Merged samples back in exposition format (stable order)."""

    def base_name(sample: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            stem = sample[: -len(suffix)] if sample.endswith(suffix) else None
            if stem and kinds.get(stem) == "histogram":
                return stem
        return sample

    def le_rank(labels: tuple) -> tuple:
        le = dict(labels).get("le")
        if le is None:
            return (0, 0.0)
        return (1, float("inf") if le == "+Inf" else float(le))

    by_base: dict[str, list[tuple[str, tuple, float]]] = {}
    for sample, entries in metrics.items():
        for labels, value in entries.items():
            by_base.setdefault(base_name(sample), []).append(
                (sample, labels, value)
            )

    lines: list[str] = []
    for base in sorted(by_base):
        kind = kinds.get(base)
        if kind is not None:
            lines.append(f"# TYPE {base} {kind}")
        suffix_rank = {base: 0, f"{base}_bucket": 1, f"{base}_sum": 2,
                       f"{base}_count": 3}
        for sample, labels, value in sorted(
            by_base[base],
            key=lambda entry: (
                suffix_rank.get(entry[0], 9),
                tuple((k, v) for k, v in entry[1] if k != "le"),
                le_rank(entry[1]),
            ),
        ):
            body = ",".join(f'{k}="{_escape(str(v))}"' for k, v in labels)
            rendered = "{" + body + "}" if body else ""
            lines.append(f"{sample}{rendered} {_render_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_merged(
    aggregate: RunAggregate, out_dir: str | Path
) -> dict[str, Path]:
    """Persist an aggregate as a merged telemetry directory.

    Writes ``events.jsonl`` (the ordered run log), ``metrics.prom``
    (summed snapshot), and ``run_windows.csv`` (all window records
    with ``run`` / ``worker`` / ``context`` provenance columns). The
    result is itself a valid input to :func:`aggregate_run`,
    :func:`chrome_trace`, :func:`diff_runs`, and ``telemetry report``.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths: dict[str, Path] = {}

    events_text = "".join(
        json.dumps(event, sort_keys=True, default=str) + "\n"
        for event in aggregate.events
    )
    paths["events"] = atomic_write_text(out_dir / EVENTS_FILE, events_text)

    paths["metrics"] = atomic_write_text(
        out_dir / METRICS_FILE,
        _render_merged_metrics(aggregate.metric_kinds, aggregate.metrics),
    )

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["run", "worker", "context"] + list(CSV_COLUMNS + WINDOW_FIELDS)
    )
    for row in aggregate.windows:
        writer.writerow(
            [row.run, row.worker, row.context, row.record.index,
             row.record.start_refs, row.record.end_refs, row.record.level]
            + [getattr(row.record, f) for f in WINDOW_FIELDS]
        )
    paths["windows"] = atomic_write_text(
        out_dir / MERGED_WINDOWS_FILE, buffer.getvalue()
    )

    if aggregate.profiles:
        profile_text = "".join(
            json.dumps(record, sort_keys=True, default=str) + "\n"
            for record in aggregate.profiles
        )
        paths["profile"] = atomic_write_text(
            out_dir / PROFILE_FILE, profile_text
        )
    return paths


def summary_from_aggregate(aggregate: RunAggregate) -> TelemetrySummary:
    """A merged-view :class:`TelemetrySummary` (for ``telemetry report``).

    Window stages merge by context across workers; engine digests come
    from the merged metrics and ``engine_selected`` events.
    """
    summary = TelemetrySummary(directory=aggregate.root)
    engine_events: list[dict] = []
    for event in aggregate.events:
        kind = str(event.get("kind", "event"))
        summary.events_by_kind[kind] = summary.events_by_kind.get(kind, 0) + 1
        if kind == "engine_selected":
            engine_events.append(event)
    summary.spans = aggregate.span_digests()

    by_context: dict[str, list[WindowRecord]] = {}
    for row in aggregate.windows:
        by_context.setdefault(row.context, []).append(row.record)
    summary.stages = [
        _digest_windows(context, records)
        for context, records in sorted(by_context.items())
    ]

    metrics_text = _render_merged_metrics(
        aggregate.metric_kinds, aggregate.metrics
    )
    summary.metrics_lines = len(
        [line for line in metrics_text.splitlines() if line.strip()]
    )
    summary.engines = _digest_engines(engine_events, metrics_text)
    summary.supervision = supervision_digest(summary.events_by_kind)
    summary.profile_samples = aggregate.profile_samples()
    summary.hotspots = aggregate.hotspots()
    return summary


def render_run_overview(aggregate: RunAggregate) -> str:
    """The run header ``telemetry report`` prints for multi-worker runs."""
    lines = [f"run overview: {aggregate.root}"]
    lines.append(
        f"  run id: {aggregate.run_id or '(none recorded)'}"
        + (
            f" (+{len(aggregate.run_ids) - 1} earlier resume(s))"
            if len(aggregate.run_ids) > 1 else ""
        )
    )
    lines.append(f"  sources: {', '.join(aggregate.sources)}")
    per_worker: dict[str, dict[str, float]] = {}
    for event in aggregate.events:
        worker = str(event.get("worker", "?"))
        stats = per_worker.setdefault(
            worker, {"events": 0, "span_s": 0.0, "cells": 0}
        )
        stats["events"] += 1
        if event.get("kind") == "span":
            stats["span_s"] += float(event.get("duration_s", 0.0))
        elif event.get("kind") == "cell_finished":
            stats["cells"] += 1
    for worker in aggregate.sources:
        stats = per_worker.get(
            worker, {"events": 0, "span_s": 0.0, "cells": 0}
        )
        lines.append(
            f"    {worker}: {int(stats['events'])} event(s), "
            f"{int(stats['cells'])} cell(s), "
            f"{stats['span_s']:.3f}s in spans"
        )
    counts = aggregate.cell_status_counts()
    if counts:
        tally = ", ".join(
            f"{int(counts[status])} {status}" for status in sorted(counts)
        )
        lines.append(f"  cells: {tally}")
    samples = aggregate.profile_samples_by_worker()
    if samples:
        tally = ", ".join(
            f"{worker}: {samples[worker]}" for worker in sorted(samples)
        )
        lines.append(
            f"  profile samples: {aggregate.profile_samples()} ({tally})"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------

#: Event fields never copied into a trace slice's args.
_TRACE_META_EXCLUDE = frozenset(
    {"ts", "kind", "name", "duration_s", "seq", "run", "worker", "parent"}
)

#: Hottest aggregated stacks injected per worker profile track.
_TRACE_PROFILE_TOP = 80

#: Trace thread id of the per-worker sampled-hotspots track (span and
#: cell slices live on tid 1, counters on tid 0).
_PROFILE_TID = 2


def chrome_trace(aggregate: RunAggregate) -> dict:
    """The merged run as Chrome ``trace_event`` JSON (object format).

    Layout: one *process* (``pid``) per worker, named via metadata
    events; spans as complete (``ph: "X"``) slices reconstructed from
    each span event's end timestamp and duration; sweep cells as async
    (``ph: "b"``/``"e"``) slices so overlapping cells of one worker
    stay distinct; per-window hit rates as counter (``ph: "C"``)
    series; remaining lifecycle events as instants (``ph: "i"``).
    Timestamps are microseconds from the earliest slice start, which
    both ``chrome://tracing`` and Perfetto accept.
    """
    pids = {
        worker: index + 1 for index, worker in enumerate(aggregate.sources)
    }

    def pid_for(event: dict) -> int:
        worker = str(event.get("worker", ROOT_WORKER))
        if worker not in pids:
            pids[worker] = len(pids) + 1
        return pids[worker]

    spans: list[tuple[float, float, int, dict]] = []
    cells: list[tuple[float, float, int, dict]] = []
    instants: list[tuple[float, int, dict]] = []
    counters: list[tuple[float, int, dict]] = []
    origin: float | None = None

    for event in aggregate.events:
        kind = event.get("kind")
        ts = float(event.get("ts", 0.0))
        pid = pid_for(event)
        if kind == "span" and "name" in event:
            duration = float(event.get("duration_s", 0.0))
            begin = ts - duration
            spans.append((begin, duration, pid, event))
            origin = begin if origin is None else min(origin, begin)
        elif kind == "cell_finished":
            duration = float(event.get("duration_s", 0.0))
            begin = ts - duration
            cells.append((begin, duration, pid, event))
            origin = begin if origin is None else min(origin, begin)
        elif kind == "window":
            counters.append((ts, pid, event))
            origin = ts if origin is None else min(origin, ts)
        else:
            instants.append((ts, pid, event))
            origin = ts if origin is None else min(origin, ts)
    origin = origin or 0.0

    def us(seconds: float) -> int:
        return max(0, int(round((seconds - origin) * 1e6)))

    trace_events: list[dict] = []
    for worker, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "ts": 0, "args": {"name": f"{worker}"},
        })

    for begin, duration, pid, event in spans:
        args = {
            k: v for k, v in event.items() if k not in _TRACE_META_EXCLUDE
        }
        trace_events.append({
            "ph": "X", "name": str(event["name"]), "cat": "span",
            "ts": us(begin), "dur": max(0, int(round(duration * 1e6))),
            "pid": pid, "tid": 1, "args": args,
        })

    for index, (begin, duration, pid, event) in enumerate(cells):
        name = f"{event.get('design', '?')}/{event.get('workload', '?')}"
        args = {
            k: v for k, v in event.items() if k not in _TRACE_META_EXCLUDE
        }
        for ph, when in (("b", begin), ("e", begin + duration)):
            trace_events.append({
                "ph": ph, "name": name, "cat": "cell", "id": index + 1,
                "ts": us(when), "pid": pid, "tid": 1,
                "args": args if ph == "b" else {},
            })

    for ts, pid, event in counters:
        levels = event.get("levels")
        if not isinstance(levels, dict):
            continue
        context = str(event.get("context", "?"))
        values = {
            str(level): float(data.get("hit_rate", 0.0))
            for level, data in levels.items()
            if isinstance(data, dict)
        }
        if not values:
            continue
        trace_events.append({
            "ph": "C", "name": f"hit_rate {context}", "ts": us(ts),
            "pid": pid, "tid": 0, "args": values,
        })

    for ts, pid, event in instants:
        args = {
            k: v for k, v in event.items() if k not in _TRACE_META_EXCLUDE
        }
        trace_events.append({
            "ph": "i", "name": str(event.get("kind", "event")),
            "cat": "event", "ts": us(ts), "pid": pid, "tid": 1, "s": "p",
            "args": args,
        })

    trace_events.extend(_profile_trace_events(aggregate, pids))

    other: dict[str, object] = {"source": str(aggregate.root)}
    if aggregate.run_id is not None:
        other["run_id"] = aggregate.run_id
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def _profile_trace_events(
    aggregate: RunAggregate, pids: dict[str, int]
) -> list[dict]:
    """Sampled hotspots as per-worker trace tracks.

    Each worker with profile samples gets a ``sampled hotspots`` thread
    (tid :data:`_PROFILE_TID`) holding its hottest aggregated stacks as
    back-to-back complete slices: the slice name is the leaf frame, the
    duration is ``samples / hz`` (the wall time the sampler attributes
    to that stack), and the full span-path + frame stack rides in the
    args — so Perfetto shows where time went right next to the span
    timeline it went missing from.
    """
    by_worker: dict[str, _TallyCounter] = {}
    hz_by_worker: dict[str, float] = {}
    for record in aggregate.profiles:
        worker = str(record.get("worker", ROOT_WORKER))
        key = tuple(record.get("spans", ())) + tuple(record.get("stack", ()))
        if not key:
            continue
        by_worker.setdefault(worker, _TallyCounter())[key] += int(
            record.get("count", 0)
        )
        hz_by_worker.setdefault(
            worker, float(record.get("hz", DEFAULT_HZ)) or DEFAULT_HZ
        )

    events: list[dict] = []
    for worker in sorted(by_worker, key=lambda w: pids.get(w, len(pids))):
        pid = pids.get(worker)
        if pid is None:
            pid = pids[worker] = len(pids) + 1
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid,
            "tid": _PROFILE_TID, "ts": 0,
            "args": {"name": "sampled hotspots"},
        })
        hz = hz_by_worker[worker]
        cursor = 0
        ranked = sorted(
            by_worker[worker].items(), key=lambda kv: (-kv[1], kv[0])
        )
        for stack, count in ranked[:_TRACE_PROFILE_TOP]:
            if count <= 0:
                continue
            duration_us = max(1, int(round(count / hz * 1e6)))
            events.append({
                "ph": "X", "name": stack[-1], "cat": "profile",
                "ts": cursor, "dur": duration_us, "pid": pid,
                "tid": _PROFILE_TID,
                "args": {"stack": ";".join(stack), "samples": count,
                         "hz": hz},
            })
            cursor += duration_us
    return events


def write_chrome_trace(
    aggregate: RunAggregate, path: str | Path
) -> Path:
    """Write :func:`chrome_trace` output as JSON, atomically."""
    return atomic_write_text(
        path, json.dumps(chrome_trace(aggregate), default=str) + "\n"
    )


# ----------------------------------------------------------------------
# Run-to-run diffing
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DiffThresholds:
    """Regression thresholds for :func:`diff_runs`.

    Attributes:
        span_pct: a span name regresses when its total duration grows
            by more than this percentage *and* by more than
            ``span_min_s`` seconds (both gates, so microsecond spans
            cannot trip a percentage alone).
        span_min_s: absolute floor for span regressions, seconds.
        hit_rate_abs: a level regresses when its overall hit rate
            moves by more than this (either direction — a simulation
            behaviour change, not just a slowdown).
        vector_fraction_abs: a level regresses when the engine's
            vectorized-run fraction *drops* by more than this.
        hotspot_share_abs: a profiled function regresses when its
            inclusive sample share moves by more than this fraction in
            either direction (0.10 = 10 percentage points) — a hotspot
            shifting is a behaviour change whichever way it moves.
        hotspot_min_samples: the hotspot gate only arms when *both*
            runs hold at least this many samples; tiny profiles
            quantize shares too coarsely to compare honestly.
    """

    span_pct: float = 25.0
    span_min_s: float = 0.05
    hit_rate_abs: float = 0.005
    vector_fraction_abs: float = 0.05
    hotspot_share_abs: float = 0.10
    hotspot_min_samples: int = 50

    def validate(self) -> "DiffThresholds":
        """Self with sanity checks applied."""
        if self.span_pct < 0 or self.span_min_s < 0:
            raise TelemetryError("span thresholds must be non-negative")
        if not 0 <= self.hit_rate_abs <= 1:
            raise TelemetryError("hit_rate_abs must be within [0, 1]")
        if not 0 <= self.vector_fraction_abs <= 1:
            raise TelemetryError(
                "vector_fraction_abs must be within [0, 1]"
            )
        if not 0 <= self.hotspot_share_abs <= 1:
            raise TelemetryError(
                "hotspot_share_abs must be within [0, 1]"
            )
        if self.hotspot_min_samples < 0:
            raise TelemetryError(
                "hotspot_min_samples must be non-negative"
            )
        return self


@dataclass(frozen=True)
class DiffEntry:
    """One compared quantity between two runs.

    Attributes:
        kind: ``span`` / ``hit_rate`` / ``vector_fraction`` /
            ``cells`` / ``supervision``.
        name: span name, level name, cell status, or supervision
            counter.
        baseline / candidate: the two values compared.
        regression: whether the delta crossed its threshold.
        detail: human-readable context for the report line.
    """

    kind: str
    name: str
    baseline: float
    candidate: float
    regression: bool
    detail: str = ""

    @property
    def delta(self) -> float:
        """candidate - baseline."""
        return self.candidate - self.baseline


@dataclass
class RunDiff:
    """The outcome of comparing two aggregated runs.

    Attributes:
        baseline / candidate: the aggregates compared.
        thresholds: thresholds applied.
        entries: every compared quantity (regressions and passes).
    """

    baseline: RunAggregate
    candidate: RunAggregate
    thresholds: DiffThresholds
    entries: list[DiffEntry] = field(default_factory=list)

    @property
    def regressions(self) -> list[DiffEntry]:
        """Entries that crossed a threshold."""
        return [e for e in self.entries if e.regression]

    @property
    def ok(self) -> bool:
        """True when no quantity regressed."""
        return not self.regressions


def diff_runs(
    baseline: RunAggregate,
    candidate: RunAggregate,
    thresholds: DiffThresholds | None = None,
) -> RunDiff:
    """Compare two aggregated runs against regression thresholds.

    Two aggregates of the *same* run (or of two identical runs) always
    produce zero regressions: every comparison is a pure function of
    the merged artifacts.
    """
    thresholds = (thresholds or DiffThresholds()).validate()
    diff = RunDiff(baseline=baseline, candidate=candidate,
                   thresholds=thresholds)

    base_spans = {d.name: d for d in baseline.span_digests()}
    cand_spans = {d.name: d for d in candidate.span_digests()}
    for name in sorted(set(base_spans) | set(cand_spans)):
        base_s = base_spans[name].total_s if name in base_spans else 0.0
        cand_s = cand_spans[name].total_s if name in cand_spans else 0.0
        grew_s = cand_s - base_s
        grew_pct = (
            (cand_s / base_s - 1.0) * 100.0 if base_s > 0
            else (float("inf") if cand_s > 0 else 0.0)
        )
        regression = (
            grew_s > thresholds.span_min_s
            and grew_pct > thresholds.span_pct
        )
        diff.entries.append(DiffEntry(
            kind="span", name=name, baseline=base_s, candidate=cand_s,
            regression=regression,
            detail=(
                f"total {base_s:.3f}s -> {cand_s:.3f}s "
                f"({grew_pct:+.1f}%, limit +{thresholds.span_pct:g}% "
                f"and +{thresholds.span_min_s:g}s)"
            ),
        ))

    base_levels = {d.level: d for d in baseline.level_digests()}
    cand_levels = {d.level: d for d in candidate.level_digests()}
    for level in sorted(set(base_levels) | set(cand_levels)):
        base_rate = (
            base_levels[level].hit_rate if level in base_levels else 0.0
        )
        cand_rate = (
            cand_levels[level].hit_rate if level in cand_levels else 0.0
        )
        delta = cand_rate - base_rate
        regression = abs(delta) > thresholds.hit_rate_abs
        diff.entries.append(DiffEntry(
            kind="hit_rate", name=level, baseline=base_rate,
            candidate=cand_rate, regression=regression,
            detail=(
                f"hit rate {base_rate:.4f} -> {cand_rate:.4f} "
                f"({delta:+.4f}, limit ±{thresholds.hit_rate_abs:g})"
            ),
        ))

    base_vec = baseline.vector_fractions()
    cand_vec = candidate.vector_fractions()
    for level in sorted(set(base_vec) | set(cand_vec)):
        base_f = base_vec.get(level, 0.0)
        cand_f = cand_vec.get(level, 0.0)
        drop = base_f - cand_f
        regression = drop > thresholds.vector_fraction_abs
        diff.entries.append(DiffEntry(
            kind="vector_fraction", name=level, baseline=base_f,
            candidate=cand_f, regression=regression,
            detail=(
                f"vector fraction {base_f:.3f} -> {cand_f:.3f} "
                f"(drop limit {thresholds.vector_fraction_abs:g})"
            ),
        ))

    base_cells = baseline.cell_status_counts()
    cand_cells = candidate.cell_status_counts()
    for status in sorted(set(base_cells) | set(cand_cells)):
        base_n = base_cells.get(status, 0.0)
        cand_n = cand_cells.get(status, 0.0)
        bad = status in ("failed", "timed_out", "poisoned")
        regression = bad and cand_n > base_n
        diff.entries.append(DiffEntry(
            kind="cells", name=status, baseline=base_n, candidate=cand_n,
            regression=regression,
            detail=f"{int(base_n)} -> {int(cand_n)} cell(s) {status}",
        ))

    base_total = baseline.profile_samples()
    cand_total = candidate.profile_samples()
    if (
        base_total >= thresholds.hotspot_min_samples
        and cand_total >= thresholds.hotspot_min_samples
        and thresholds.hotspot_min_samples > 0
    ):
        base_shares = baseline.function_shares()
        cand_shares = candidate.function_shares()
        for function in sorted(set(base_shares) | set(cand_shares)):
            base_share = base_shares.get(function, 0.0)
            cand_share = cand_shares.get(function, 0.0)
            delta = cand_share - base_share
            regression = abs(delta) > thresholds.hotspot_share_abs
            # Keep the entry list to material functions: anything that
            # regressed, plus anything holding a threshold-sized share
            # in either run (the hotspots a reader would ask about).
            if not regression and (
                max(base_share, cand_share) < thresholds.hotspot_share_abs
            ):
                continue
            diff.entries.append(DiffEntry(
                kind="hotspot", name=function, baseline=base_share,
                candidate=cand_share, regression=regression,
                detail=(
                    f"inclusive share {base_share:.1%} -> "
                    f"{cand_share:.1%} ({delta * 100:+.1f} points, "
                    f"limit ±{thresholds.hotspot_share_abs * 100:g} "
                    f"points; {base_total} vs {cand_total} samples)"
                ),
            ))

    base_sup = baseline.supervision_counts()
    cand_sup = candidate.supervision_counts()
    for name in sorted(set(base_sup) | set(cand_sup)):
        base_n = base_sup.get(name, 0.0)
        cand_n = cand_sup.get(name, 0.0)
        if base_n == 0.0 and cand_n == 0.0:
            continue  # no supervision activity in either run
        # Poisoned cells and worker restarts gate: more of either means
        # the candidate needed more crash recovery for the same work.
        regression = (
            name in ("poisoned", "restarts") and cand_n > base_n
        )
        diff.entries.append(DiffEntry(
            kind="supervision", name=name, baseline=base_n,
            candidate=cand_n, regression=regression,
            detail=f"{int(base_n)} -> {int(cand_n)} {name}",
        ))

    return diff


def render_diff(diff: RunDiff) -> str:
    """The diff as a plain-text report (regressions first)."""
    lines = [
        "telemetry diff",
        f"  baseline:  {diff.baseline.root} "
        f"(run {diff.baseline.run_id or '?'})",
        f"  candidate: {diff.candidate.root} "
        f"(run {diff.candidate.run_id or '?'})",
    ]
    if diff.regressions:
        lines.append(f"  REGRESSIONS ({len(diff.regressions)}):")
        for entry in diff.regressions:
            lines.append(f"    [{entry.kind}] {entry.name}: {entry.detail}")
    else:
        lines.append("  no regressions")
    compared = {}
    for entry in diff.entries:
        compared[entry.kind] = compared.get(entry.kind, 0) + 1
    summary = ", ".join(
        f"{count} {kind}" for kind, count in sorted(compared.items())
    )
    lines.append(f"  compared: {summary or 'nothing'}")
    return "\n".join(lines)

"""Epoch-windowed time-series of simulation-native signals.

End-of-run :class:`~repro.cache.stats.HierarchyStats` totals hide the
*shape* of a workload: a phase-local kernel and a uniformly random one
can produce the same aggregate hit rate. A :class:`WindowedCollector`
slices a simulation into epochs of N top-level references and records,
per epoch and per hierarchy level, the arriving loads/stores, hit/miss
split, writeback and fill volume, and transferred bits — from which
per-window hit rate and demanded bandwidth (bytes per reference)
follow.

The collector observes a hierarchy through the ``observer`` hook on
:class:`~repro.cache.hierarchy.Hierarchy`: after each processed chunk
the hierarchy calls ``observer.on_refs(n)``, and the collector
snapshots the cumulative per-level counters whenever a window boundary
is crossed. Windows therefore quantize to chunk boundaries (windows
are *at least* ``window_refs`` wide), and because every window is an
exact delta of the cumulative counters, the per-level sums over all
windows equal the final totals **exactly** — the conservation property
the exporter tests assert. When no observer is attached the hook costs
one ``is not None`` check per chunk, which is the provably-negligible
disabled path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import TelemetryError

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.cache.stats import LevelStats

#: Default window width in top-level references.
DEFAULT_WINDOW_REFS: int = 1 << 20

#: The raw per-level counters carried by every window (delta values).
WINDOW_FIELDS: tuple[str, ...] = (
    "loads",
    "stores",
    "load_hits",
    "load_misses",
    "store_hits",
    "store_misses",
    "writebacks",
    "fills",
    "load_bits",
    "store_bits",
)


@dataclass(frozen=True)
class WindowRecord:
    """One hierarchy level's activity during one reference window.

    All counters are deltas over the window, not cumulative values.

    Attributes:
        index: window number, starting at 0.
        start_refs / end_refs: the half-open reference interval
            ``[start_refs, end_refs)`` the window covers.
        level: hierarchy level name.
        loads / stores / load_hits / load_misses / store_hits /
        store_misses / writebacks / fills / load_bits / store_bits:
            the :class:`~repro.cache.stats.LevelStats` counters
            accumulated during the window.
    """

    index: int
    start_refs: int
    end_refs: int
    level: str
    loads: int
    stores: int
    load_hits: int
    load_misses: int
    store_hits: int
    store_misses: int
    writebacks: int
    fills: int
    load_bits: int
    store_bits: int

    @property
    def accesses(self) -> int:
        """Requests arriving at the level during the window."""
        return self.loads + self.stores

    @property
    def hits(self) -> int:
        """Hits during the window."""
        return self.load_hits + self.store_hits

    @property
    def hit_rate(self) -> float:
        """Hit fraction of arriving requests (0.0 for an idle window)."""
        total = self.accesses
        return self.hits / total if total else 0.0

    @property
    def bytes_moved(self) -> int:
        """Bytes arriving at the level during the window."""
        return (self.load_bits + self.store_bits) // 8

    @property
    def demand_bytes_per_ref(self) -> float:
        """Demanded bandwidth: arriving bytes per top-level reference."""
        width = self.end_refs - self.start_refs
        return self.bytes_moved / width if width else 0.0


_Snapshot = dict[str, tuple[int, ...]]


class WindowedCollector:
    """Collects per-level window records from a running simulation.

    Args:
        context: label for the observed stage (becomes part of the CSV
            file name, e.g. ``"upper:CG"`` or ``"design:NMM-PCM-N6:CG"``).
        levels_fn: zero-argument callable returning the current
            per-level :class:`~repro.cache.stats.LevelStats`, top to
            bottom. Called once at construction (baseline) and once per
            window boundary; the level set must stay stable.
        window_refs: window width in top-level references.
        on_window: optional callback ``(collector, new_records)``
            invoked after each emitted window (the telemetry facade
            uses it to stream window events to the JSONL log).
    """

    def __init__(
        self,
        context: str,
        levels_fn: Callable[[], Sequence["LevelStats"]],
        window_refs: int = DEFAULT_WINDOW_REFS,
        on_window: Callable[["WindowedCollector", list[WindowRecord]], None]
        | None = None,
    ) -> None:
        if window_refs <= 0:
            raise TelemetryError(
                f"window_refs must be positive, got {window_refs}"
            )
        self.context = context
        self.window_refs = int(window_refs)
        self.records: list[WindowRecord] = []
        self._levels_fn = levels_fn
        self._on_window = on_window
        self._refs = 0
        self._emitted_refs = 0
        self._index = 0
        self._finished = False
        self._baseline = self._snapshot()
        self._level_order = list(self._baseline)

    # ------------------------------------------------------------------

    def _snapshot(self) -> _Snapshot:
        snap: _Snapshot = {}
        for stats in self._levels_fn():
            if stats.name in snap:
                raise TelemetryError(
                    f"duplicate level name {stats.name!r} in window "
                    f"collector {self.context!r}"
                )
            snap[stats.name] = tuple(
                getattr(stats, field) for field in WINDOW_FIELDS
            )
        return snap

    @property
    def refs(self) -> int:
        """Top-level references observed so far."""
        return self._refs

    def on_refs(self, n: int) -> None:
        """Observer hook: ``n`` more top-level references were simulated."""
        self._refs += n
        if self._refs - self._emitted_refs >= self.window_refs:
            self._emit()

    def _emit(self) -> None:
        current = self._snapshot()
        if list(current) != self._level_order:
            raise TelemetryError(
                f"level set changed under window collector "
                f"{self.context!r}: {self._level_order} -> {list(current)}"
            )
        fresh: list[WindowRecord] = []
        for name in self._level_order:
            before, after = self._baseline[name], current[name]
            fresh.append(
                WindowRecord(
                    index=self._index,
                    start_refs=self._emitted_refs,
                    end_refs=self._refs,
                    level=name,
                    **{
                        field: after[i] - before[i]
                        for i, field in enumerate(WINDOW_FIELDS)
                    },
                )
            )
        self.records.extend(fresh)
        self._baseline = current
        self._emitted_refs = self._refs
        self._index += 1
        if self._on_window is not None:
            self._on_window(self, fresh)

    def finish(self) -> list[WindowRecord]:
        """Emit the final (possibly partial) window and return all records.

        The final window also captures activity that arrives without
        new references — e.g. the writebacks of an end-of-run drain.
        Idempotent: a second call returns the same records.
        """
        if not self._finished:
            if (
                self._refs > self._emitted_refs
                or self._snapshot() != self._baseline
            ):
                self._emit()
            self._finished = True
        return self.records

    # ------------------------------------------------------------------

    def totals(self) -> dict[str, dict[str, int]]:
        """Per-level field sums over all emitted windows.

        After :meth:`finish`, these equal the observed run's final
        counters exactly (conservation).
        """
        out: dict[str, dict[str, int]] = {}
        for record in self.records:
            level = out.setdefault(
                record.level, {field: 0 for field in WINDOW_FIELDS}
            )
            for field in WINDOW_FIELDS:
                level[field] += getattr(record, field)
        return out


def sum_windows(records: Sequence[WindowRecord]) -> dict[str, dict[str, int]]:
    """Per-level field sums of arbitrary window records (e.g. CSV reads)."""
    out: dict[str, dict[str, int]] = {}
    for record in records:
        level = out.setdefault(
            record.level, {field: 0 for field in WINDOW_FIELDS}
        )
        for field in WINDOW_FIELDS:
            level[field] += getattr(record, field)
    return out

"""Observability for the whole pipeline: metrics, spans, time-series.

Simulation results are only trustworthy when the intermediate signals
are inspectable, and long campaigns are only operable when they report
progress while running. This package is that layer:

- :mod:`repro.telemetry.registry` — counters, gauges, fixed-bucket
  histograms (:class:`MetricsRegistry`), with a zero-cost
  :class:`NullRegistry` for the disabled path.
- :mod:`repro.telemetry.core` — the :class:`Telemetry` facade: nesting
  span timers, JSONL events, the process-wide *active* instance
  (:func:`get_active` / :func:`set_active` / :func:`activate`), and
  :data:`NULL_TELEMETRY`.
- :mod:`repro.telemetry.windows` — epoch-windowed per-level
  time-series (:class:`WindowedCollector`) whose window sums equal the
  final :class:`~repro.cache.stats.HierarchyStats` counters exactly.
- :mod:`repro.telemetry.exporters` — atomic JSONL / CSV / Prometheus
  writers and their readers.
- :mod:`repro.telemetry.progress` — live per-cell sweep progress with
  ETA and the ``--resume`` startup summary.
- :mod:`repro.telemetry.report` — ``telemetry report`` directory
  summaries.
- :mod:`repro.telemetry.profiling` — continuous profiling: a sampled
  wall-clock stack profiler attributed to spans/cells (``flame.folded``
  flamegraphs) and tracemalloc memory watermarks.
- :mod:`repro.telemetry.live` — the live observability plane:
  :class:`TelemetryServer` (``telemetry serve`` / ``sweep --serve``)
  with Prometheus ``/metrics``, a resumable ``/events`` SSE stream,
  progress/readiness endpoints, and the :func:`watch` terminal
  dashboard.
"""

from repro.telemetry.core import (
    EVENTS_FILE,
    METRICS_FILE,
    NULL_TELEMETRY,
    NullTelemetry,
    RunContext,
    Span,
    Telemetry,
    activate,
    get_active,
    new_run_id,
    set_active,
    slugify,
)
from repro.telemetry.exporters import (
    JsonlEventLog,
    JsonlTailer,
    atomic_write_text,
    read_jsonl,
    read_windows_csv,
    write_prometheus,
    write_windows_csv,
)
from repro.telemetry.live import (
    DirectoryFollower,
    EventCursor,
    ProgressTracker,
    RunIndex,
    TelemetryServer,
    pool_readiness,
    render_dashboard,
    watch,
)
from repro.telemetry.observatory import (
    MERGED_WINDOWS_FILE,
    TRACE_FILE,
    DiffEntry,
    DiffThresholds,
    RunAggregate,
    RunDiff,
    WindowRow,
    aggregate_run,
    chrome_trace,
    diff_runs,
    discover_sources,
    render_diff,
    render_run_overview,
    summary_from_aggregate,
    worker_index,
    write_chrome_trace,
    write_merged,
)
from repro.telemetry.profiling import (
    DEFAULT_HZ,
    FLAME_FILE,
    MEMORY_FILE,
    PROFILE_FILE,
    HotspotDigest,
    MemoryTracker,
    MemoryWatermark,
    ProfilingSession,
    SamplingProfiler,
    function_shares,
    hotspot_digests,
    merge_records,
    read_memory_csv,
    read_profile,
    render_flame,
    total_samples,
    write_flame,
    write_memory_csv,
)
from repro.telemetry.progress import (
    ProgressReporter,
    format_duration,
    price_eta,
)
from repro.telemetry.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    escape_label_value,
    unescape_label_value,
)
from repro.telemetry.report import (
    TelemetrySummary,
    render_summary,
    summarize_directory,
    summary_to_dict,
)
from repro.telemetry.windows import (
    DEFAULT_WINDOW_REFS,
    WINDOW_FIELDS,
    WindowedCollector,
    WindowRecord,
    sum_windows,
)

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "RunContext",
    "Span",
    "activate",
    "get_active",
    "new_run_id",
    "set_active",
    "slugify",
    "MERGED_WINDOWS_FILE",
    "TRACE_FILE",
    "DiffEntry",
    "DiffThresholds",
    "RunAggregate",
    "RunDiff",
    "WindowRow",
    "aggregate_run",
    "chrome_trace",
    "diff_runs",
    "discover_sources",
    "render_diff",
    "render_run_overview",
    "summary_from_aggregate",
    "worker_index",
    "write_chrome_trace",
    "write_merged",
    "EVENTS_FILE",
    "METRICS_FILE",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "WindowedCollector",
    "WindowRecord",
    "WINDOW_FIELDS",
    "DEFAULT_WINDOW_REFS",
    "sum_windows",
    "JsonlEventLog",
    "JsonlTailer",
    "read_jsonl",
    "read_windows_csv",
    "write_windows_csv",
    "write_prometheus",
    "atomic_write_text",
    "DEFAULT_HZ",
    "FLAME_FILE",
    "MEMORY_FILE",
    "PROFILE_FILE",
    "HotspotDigest",
    "MemoryTracker",
    "MemoryWatermark",
    "ProfilingSession",
    "SamplingProfiler",
    "function_shares",
    "hotspot_digests",
    "merge_records",
    "read_memory_csv",
    "read_profile",
    "render_flame",
    "total_samples",
    "write_flame",
    "write_memory_csv",
    "ProgressReporter",
    "format_duration",
    "price_eta",
    "escape_label_value",
    "unescape_label_value",
    "TelemetrySummary",
    "summarize_directory",
    "render_summary",
    "summary_to_dict",
    "DirectoryFollower",
    "EventCursor",
    "ProgressTracker",
    "RunIndex",
    "TelemetryServer",
    "pool_readiness",
    "render_dashboard",
    "watch",
]

"""NMM: NVM as main memory behind a DRAM page cache.

"this design uses NVM as main memory and DRAM as a cache. This design
aims to decrease DRAM size and hence reduce refresh energy. In
addition, by employing DRAM as a cache, a significant portion of NVM
memory accesses are filtered..." The DRAM capacity / page size sweep is
Table 3; the NVM options are PCM, STT-RAM, and FeRAM.
"""

from __future__ import annotations

from repro.cache.config import CacheConfig
from repro.cache.mainmem import MainMemory
from repro.cache.setassoc import SetAssociativeCache
from repro.designs.base import MemoryDesign, ReferenceSystem
from repro.designs.configs import PAGE_CACHE_ASSOCIATIVITY, NConfig
from repro.errors import ConfigError
from repro.model.bindings import LevelBinding
from repro.tech.params import DRAM, MemoryTechnology


class NMMDesign(MemoryDesign):
    """DRAM page cache + NVM main memory.

    Args:
        nvm_tech: the main-memory technology (PCM/STTRAM/FeRAM, or a
            scaled hypothetical from :mod:`repro.tech.scaling`).
        config: the Table 3 row (DRAM capacity + page size).
        scale: simulation capacity scale.
    """

    DRAM_CACHE_LEVEL = "DRAM$"
    MEMORY_LEVEL = "NVM"

    def __init__(
        self,
        nvm_tech: MemoryTechnology,
        config: NConfig,
        scale: float = 1.0,
        reference: ReferenceSystem | None = None,
        engine: str = "auto",
    ) -> None:
        super().__init__(
            f"NMM-{nvm_tech.name}-{config.name}",
            scale=scale,
            reference=reference,
            engine=engine,
        )
        if config.page_size < self.reference.line_size:
            raise ConfigError("DRAM cache page size must be >= the SRAM line size")
        self.nvm_tech = nvm_tech
        self.config = config

    def sim_key(self) -> str:
        return f"NMM-{self.config.name}"

    def dram_cache_config(self) -> CacheConfig:
        """Full-size DRAM cache configuration.

        Dirty state is tracked per 64 B line (the paper's simulator
        extension), so evicting a dirty page writes back only its dirty
        lines to NVM — essential given NVM's write-energy asymmetry.
        """
        return CacheConfig(
            self.DRAM_CACHE_LEVEL,
            self.config.dram_capacity,
            PAGE_CACHE_ASSOCIATIVITY,
            self.config.page_size,
            sector_size=min(self.reference.line_size, self.config.page_size),
            hashed_sets=True,
        )

    def lower_caches(self) -> list[SetAssociativeCache]:
        return [self.make_cache(self.dram_cache_config().scaled(self.scale))]

    def memory(self) -> MainMemory:
        return MainMemory(self.MEMORY_LEVEL)

    def lower_bindings(self, footprint_bytes: int) -> dict[str, LevelBinding]:
        return {
            # The DRAM cache's refresh power is what the design shrinks:
            # it is charged at the (small) configured capacity instead of
            # the footprint-sized baseline DRAM.
            self.DRAM_CACHE_LEVEL: LevelBinding.from_technology(
                self.DRAM_CACHE_LEVEL, DRAM, self.config.dram_capacity
            ),
            # NVM main memory is footprint-sized; its static power is
            # zero per the paper's assumption.
            self.MEMORY_LEVEL: LevelBinding.from_technology(
                self.MEMORY_LEVEL, self.nvm_tech, footprint_bytes
            ),
        }

"""Configuration tables: Table 2 (EH1–EH8) and Table 3 (N1–N9).

Capacities are per core, full size; the experiment harness scales them
(together with workload footprints) for laptop-size simulation.

Deviation note (see DESIGN.md §5): the published Table 2 lists EH7 and
EH8 with identical parameters (8 MB, 2048 B) — almost certainly a typo,
since every other configuration varies exactly one parameter. We use
EH7 = 8 MB and EH8 = 4 MB at 2048 B pages to complete the capacity
sweep the text implies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import KiB, MiB, format_bytes, is_power_of_two

#: Default capacity scale for laptop-size experiments (DESIGN.md §4).
DEFAULT_SCALE: float = 1.0 / 256.0

#: DRAM partition capacity explored for the NDM design ("For the NDM
#: design we explored a DRAM of size 512MB").
NDM_DRAM_CAPACITY: int = 512 * MiB

#: Associativity used for the page-granularity levels (eDRAM/HMC L4 and
#: the NMM DRAM cache). The paper does not state it; 8 ways keeps the
#: set count a power of two across the whole page-size sweep.
PAGE_CACHE_ASSOCIATIVITY: int = 8


@dataclass(frozen=True)
class EHConfig:
    """One Table 2 row: eDRAM/HMC fourth-level-cache configuration.

    Attributes:
        name: "EH1" … "EH8".
        capacity: eDRAM/HMC capacity in bytes (per core).
        page_size: allocation granularity in bytes.
    """

    name: str
    capacity: int
    page_size: int

    def __post_init__(self) -> None:
        if self.capacity <= 0 or not is_power_of_two(self.page_size):
            raise ConfigError(f"{self.name}: invalid EH configuration")

    def describe(self) -> str:
        """e.g. 'EH1: 16MB / 64B pages'."""
        return (
            f"{self.name}: {format_bytes(self.capacity)} / "
            f"{format_bytes(self.page_size)} pages"
        )


@dataclass(frozen=True)
class NConfig:
    """One Table 3 row: NMM DRAM-cache configuration.

    Attributes:
        name: "N1" … "N9".
        dram_capacity: DRAM cache capacity in bytes (per core).
        page_size: DRAM cache page size in bytes.
    """

    name: str
    dram_capacity: int
    page_size: int

    def __post_init__(self) -> None:
        if self.dram_capacity <= 0 or not is_power_of_two(self.page_size):
            raise ConfigError(f"{self.name}: invalid N configuration")

    def describe(self) -> str:
        """e.g. 'N6: 512MB DRAM / 512B pages'."""
        return (
            f"{self.name}: {format_bytes(self.dram_capacity)} DRAM / "
            f"{format_bytes(self.page_size)} pages"
        )


#: Table 2 — eDRAM/HMC configurations (capacity per core).
EH_CONFIGS: dict[str, EHConfig] = {
    "EH1": EHConfig("EH1", 16 * MiB, 64),
    "EH2": EHConfig("EH2", 16 * MiB, 128),
    "EH3": EHConfig("EH3", 16 * MiB, 256),
    "EH4": EHConfig("EH4", 16 * MiB, 512),
    "EH5": EHConfig("EH5", 16 * MiB, 1024),
    "EH6": EHConfig("EH6", 16 * MiB, 2048),
    "EH7": EHConfig("EH7", 8 * MiB, 2048),
    "EH8": EHConfig("EH8", 4 * MiB, 2048),  # deviation: see module docstring
}

#: Table 3 — NMM configurations (capacity per core).
N_CONFIGS: dict[str, NConfig] = {
    "N1": NConfig("N1", 128 * MiB, 4096),
    "N2": NConfig("N2", 256 * MiB, 4096),
    "N3": NConfig("N3", 512 * MiB, 4096),
    "N4": NConfig("N4", 512 * MiB, 2048),
    "N5": NConfig("N5", 512 * MiB, 1024),
    "N6": NConfig("N6", 512 * MiB, 512),
    "N7": NConfig("N7", 512 * MiB, 256),
    "N8": NConfig("N8", 512 * MiB, 128),
    "N9": NConfig("N9", 512 * MiB, 64),
}

"""The paper's memory-hierarchy designs.

Five design families (Section III.A):

- :class:`~repro.designs.reference.ReferenceDesign` — 3 SRAM caches +
  DRAM (the normalization baseline).
- :class:`~repro.designs.fourlc.FourLCDesign` — eDRAM/HMC fourth-level
  cache in front of DRAM (4LC).
- :class:`~repro.designs.nmm.NMMDesign` — NVM main memory behind a
  DRAM page cache (NMM).
- :class:`~repro.designs.fourlcnvm.FourLCNVMDesign` — eDRAM/HMC cache
  directly over NVM, no DRAM (4LCNVM).
- :class:`~repro.designs.ndm.NDMDesign` — partitioned DRAM+NVM main
  memory (NDM).

:mod:`repro.designs.configs` holds the Table 2 (EH1–EH8) and Table 3
(N1–N9) configuration constants and the capacity-scaling machinery.
"""

from repro.designs.base import MemoryDesign, ReferenceSystem
from repro.designs.reference import ReferenceDesign
from repro.designs.fourlc import FourLCDesign
from repro.designs.nmm import NMMDesign
from repro.designs.fourlcnvm import FourLCNVMDesign
from repro.designs.ndm import NDMDesign
from repro.designs.deephybrid import DeepHybridDesign
from repro.designs.configs import (
    DEFAULT_SCALE,
    EH_CONFIGS,
    N_CONFIGS,
    NDM_DRAM_CAPACITY,
    EHConfig,
    NConfig,
)

__all__ = [
    "MemoryDesign",
    "ReferenceSystem",
    "ReferenceDesign",
    "FourLCDesign",
    "NMMDesign",
    "FourLCNVMDesign",
    "NDMDesign",
    "DeepHybridDesign",
    "EHConfig",
    "NConfig",
    "EH_CONFIGS",
    "N_CONFIGS",
    "NDM_DRAM_CAPACITY",
    "DEFAULT_SCALE",
]

"""NDM: partitioned DRAM+NVM main memory.

"this design uses both NVM and DRAM as a partitioned main memory in
which data objects are placed where they best fit ... as an oracle,
[we] explore the potential benefit of the design for an optimal
partitioning." The placement (which address ranges live in NVM) comes
from :mod:`repro.partition`; this class provides the mechanism.
"""

from __future__ import annotations

from repro.cache.mainmem import MainMemory
from repro.cache.partition import PartitionedMemory, RoutingRule
from repro.cache.setassoc import SetAssociativeCache
from repro.designs.base import MemoryDesign, ReferenceSystem
from repro.designs.configs import NDM_DRAM_CAPACITY
from repro.model.bindings import LevelBinding
from repro.partition.ranges import AddressRange
from repro.tech.params import DRAM, MemoryTechnology


class NDMDesign(MemoryDesign):
    """Partitioned DRAM+NVM main memory behind the SRAM pyramid.

    Args:
        nvm_tech: the NVM technology of the partition.
        nvm_ranges: address ranges placed in NVM (trace address space);
            everything else goes to DRAM.
        dram_capacity: full-size DRAM partition capacity (the paper
            explored 512 MB).
        scale: simulation capacity scale (the SRAM levels only — the
            terminal partition has no capacity behaviour to scale).
    """

    DRAM_LEVEL = "DRAMpart"
    NVM_LEVEL = "NVMpart"

    def __init__(
        self,
        nvm_tech: MemoryTechnology,
        nvm_ranges: list[AddressRange],
        dram_capacity: int = NDM_DRAM_CAPACITY,
        scale: float = 1.0,
        reference: ReferenceSystem | None = None,
        name: str | None = None,
        engine: str = "auto",
    ) -> None:
        super().__init__(
            name or f"NDM-{nvm_tech.name}",
            scale=scale,
            reference=reference,
            engine=engine,
        )
        self.nvm_tech = nvm_tech
        self.nvm_ranges = list(nvm_ranges)
        self.dram_capacity = dram_capacity

    def sim_key(self) -> str:
        ranges = ",".join(f"{r.start:#x}-{r.end:#x}" for r in self.nvm_ranges)
        return f"NDM[{ranges}]"

    def lower_caches(self) -> list[SetAssociativeCache]:
        return []

    def memory(self) -> PartitionedMemory:
        return PartitionedMemory(
            devices=[MainMemory(self.DRAM_LEVEL), MainMemory(self.NVM_LEVEL)],
            rules=[
                RoutingRule(r.start, r.end, device_index=1) for r in self.nvm_ranges
            ],
            default_device=0,
        )

    def lower_bindings(self, footprint_bytes: int) -> dict[str, LevelBinding]:
        return {
            self.DRAM_LEVEL: LevelBinding.from_technology(
                self.DRAM_LEVEL, DRAM, self.dram_capacity
            ),
            self.NVM_LEVEL: LevelBinding.from_technology(
                self.NVM_LEVEL, self.nvm_tech, footprint_bytes
            ),
        }

    def nvm_bytes(self) -> int:
        """Total bytes of address space placed in NVM."""
        return sum(r.size for r in self.nvm_ranges)

"""The 6-level deep hybrid: eDRAM/HMC L4 + DRAM cache + NVM.

The paper evaluates 4LC (fast L4 over DRAM) and NMM (DRAM cache over
NVM) separately and combines them by *removing* DRAM (4LCNVM). The
remaining point of the design space — keep both intermediate levels —
is the natural "have it all" question its conclusions invite: does a
fast L4 in front of the NMM design buy back the NVM latency that
4LCNVM exposes, at the price of retaining (small-)DRAM refresh power?

This design answers it with the same machinery: L1–L3, then an
eDRAM/HMC L4 (Table 2 config), then a DRAM page cache (Table 3
config), then NVM main memory. It is this reproduction's extension,
not a paper result — benchmarked in ``benchmarks/test_extensions.py``.
"""

from __future__ import annotations

from repro.cache.config import CacheConfig
from repro.cache.mainmem import MainMemory
from repro.cache.setassoc import SetAssociativeCache
from repro.designs.base import MemoryDesign, ReferenceSystem
from repro.designs.configs import (
    PAGE_CACHE_ASSOCIATIVITY,
    EHConfig,
    NConfig,
)
from repro.errors import ConfigError
from repro.model.bindings import LevelBinding
from repro.tech.params import DRAM, MemoryTechnology


class DeepHybridDesign(MemoryDesign):
    """eDRAM/HMC L4 + DRAM page cache + NVM main memory (6 levels).

    Args:
        cache_tech: the L4 technology (eDRAM or HMC).
        nvm_tech: the main-memory NVM technology.
        l4_config: Table 2 row for the L4.
        dram_config: Table 3 row for the DRAM cache.
        scale: simulation capacity scale.
    """

    L4_LEVEL = "L4"
    DRAM_CACHE_LEVEL = "DRAM$"
    MEMORY_LEVEL = "NVM"

    def __init__(
        self,
        cache_tech: MemoryTechnology,
        nvm_tech: MemoryTechnology,
        l4_config: EHConfig,
        dram_config: NConfig,
        scale: float = 1.0,
        reference: ReferenceSystem | None = None,
        engine: str = "auto",
    ) -> None:
        super().__init__(
            f"DEEP-{cache_tech.name}-{nvm_tech.name}-"
            f"{l4_config.name}-{dram_config.name}",
            scale=scale,
            reference=reference,
            engine=engine,
        )
        if not cache_tech.volatile:
            raise ConfigError(
                f"the L4 uses a volatile technology, got {cache_tech.name}"
            )
        if l4_config.page_size < self.reference.line_size:
            raise ConfigError("L4 page size must be >= the SRAM line size")
        if dram_config.page_size < l4_config.page_size:
            raise ConfigError(
                "DRAM cache pages must be >= L4 pages (granularity must "
                "not shrink downward)"
            )
        self.cache_tech = cache_tech
        self.nvm_tech = nvm_tech
        self.l4_config_row = l4_config
        self.dram_config_row = dram_config

    def sim_key(self) -> str:
        return f"DEEP-{self.l4_config_row.name}-{self.dram_config_row.name}"

    def lower_caches(self) -> list[SetAssociativeCache]:
        l4 = CacheConfig(
            self.L4_LEVEL,
            self.l4_config_row.capacity,
            PAGE_CACHE_ASSOCIATIVITY,
            self.l4_config_row.page_size,
            sector_size=min(self.reference.line_size, self.l4_config_row.page_size),
            hashed_sets=True,
        )
        dram_cache = CacheConfig(
            self.DRAM_CACHE_LEVEL,
            self.dram_config_row.dram_capacity,
            PAGE_CACHE_ASSOCIATIVITY,
            self.dram_config_row.page_size,
            sector_size=min(
                self.reference.line_size, self.dram_config_row.page_size
            ),
            hashed_sets=True,
        )
        return [
            self.make_cache(l4.scaled(self.scale)),
            self.make_cache(dram_cache.scaled(self.scale)),
        ]

    def memory(self) -> MainMemory:
        return MainMemory(self.MEMORY_LEVEL)

    def lower_bindings(self, footprint_bytes: int) -> dict[str, LevelBinding]:
        return {
            self.L4_LEVEL: LevelBinding.from_technology(
                self.L4_LEVEL, self.cache_tech, self.l4_config_row.capacity
            ),
            self.DRAM_CACHE_LEVEL: LevelBinding.from_technology(
                self.DRAM_CACHE_LEVEL, DRAM, self.dram_config_row.dram_capacity
            ),
            self.MEMORY_LEVEL: LevelBinding.from_technology(
                self.MEMORY_LEVEL, self.nvm_tech, footprint_bytes
            ),
        }

"""Design abstraction and the reference SRAM cache pyramid.

A :class:`MemoryDesign` knows how to build its (scaled) simulation
hierarchy and how to bind every level to technology parameters at full
size. The split between the shared *upper* levels (L1/L2/L3 — identical
in every design) and the design-specific *lower* levels (L4 and/or
memory devices) is what lets the experiment runner simulate the upper
levels once per workload and reuse the post-L3 request stream across
the whole configuration space.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.cache.config import CacheConfig, with_engine
from repro.cache.hierarchy import Hierarchy
from repro.cache.mainmem import MainMemory
from repro.cache.partition import PartitionedMemory
from repro.cache.setassoc import SetAssociativeCache
from repro.errors import ConfigError
from repro.model.bindings import LevelBinding
from repro.tech.minicacti import estimate_sram_cache
from repro.units import KiB, MiB


@dataclass(frozen=True)
class ReferenceSystem:
    """The paper's reference cache pyramid (Sandy Bridge Xeon).

    64 B lines; 32 KB 8-way L1, 256 KB 8-way L2, 20 MB 20-way shared
    L3. Capacities here are always *full size* — scaling happens when
    the simulation hierarchy is built.

    The 20 MB L3 is shared by the chip's 8 cores while every workload
    and capacity in the study is stated *per core*; the single-core
    simulation therefore uses the per-core L3 slice (2.5 MB). This
    interpretation is required for the paper's own Table 2 to make
    sense: a 16 MB per-core eDRAM L4 behind a 20 MB per-core L3 could
    capture almost nothing, yet the paper measures clear 4LC gains.
    """

    l1: CacheConfig
    l2: CacheConfig
    l3: CacheConfig

    #: Cores sharing the L3 on the reference Xeon.
    CORES_SHARING_L3 = 8

    @classmethod
    def sandy_bridge(cls) -> "ReferenceSystem":
        """The configuration used throughout the paper (per-core view)."""
        return cls(
            l1=CacheConfig("L1", 32 * KiB, 8, 64),
            l2=CacheConfig("L2", 256 * KiB, 8, 64),
            l3=CacheConfig("L3", 20 * MiB // cls.CORES_SHARING_L3, 20, 64),
        )

    @property
    def line_size(self) -> int:
        """Cache line size shared by the SRAM levels."""
        return self.l1.block_size

    def configs(self) -> list[CacheConfig]:
        """Full-size configs, top to bottom."""
        return [self.l1, self.l2, self.l3]

    def scaled_configs(self, scale: float) -> list[CacheConfig]:
        """Capacity-scaled configs for simulation.

        L3 (and everything below it, scaled elsewhere) shrinks linearly
        with ``scale`` so footprint:LLC capacity ratios — the quantity
        hit rates depend on — are preserved exactly. The private L1/L2
        shrink only by sqrt(scale): linear scaling would collapse them
        below one set and invert the pyramid (L2 > L3), grossly
        distorting the reference AMAT; square-root scaling keeps the
        capacity ordering L1 < L2 < L3 for every scale down to ~1/4096
        while still shrinking their filtering reach with the problem.
        """
        upper_scale = min(1.0, scale**0.5)
        l3c = self.l3.scaled(scale)
        l2c = self.l2.scaled(upper_scale)
        while l2c.capacity > l3c.capacity // 2 and l2c.capacity > l2c.block_size * l2c.associativity:
            l2c = l2c.scaled(0.5)
        l1c = self.l1.scaled(upper_scale)
        while l1c.capacity > l2c.capacity // 2 and l1c.capacity > l1c.block_size * l1c.associativity:
            l1c = l1c.scaled(0.5)
        return [l1c, l2c, l3c]

    def build_caches(
        self, scale: float, engine: str = "auto"
    ) -> list[SetAssociativeCache]:
        """Fresh (cold) scaled SRAM cache instances.

        Args:
            scale: capacity scale (see :meth:`scaled_configs`).
            engine: simulation engine request applied to every level
                (``"setpar"`` degrades to ``"auto"`` where unsupported;
                both engines are bit-identical, so this never changes
                results — only speed).
        """
        return [
            SetAssociativeCache(with_engine(c, engine))
            for c in self.scaled_configs(scale)
        ]

    def bindings(self) -> dict[str, LevelBinding]:
        """mini-CACTI bindings for the full-size SRAM levels.

        Latency and energy-per-bit are properties of the *physical*
        array, so the shared L3 is characterized at its full 20 MB
        size; leakage is charged as the per-core share (the slice this
        single-core study owns).
        """
        out: dict[str, LevelBinding] = {}
        for config, shared_by in zip(
            self.configs(), (1, 1, self.CORES_SHARING_L3)
        ):
            est = estimate_sram_cache(
                config.capacity * shared_by, config.associativity, config.block_size
            )
            out[config.name] = LevelBinding(
                name=config.name,
                read_ns=est.access_ns,
                write_ns=est.access_ns,
                read_pj_per_bit=est.energy_pj_per_bit,
                write_pj_per_bit=est.energy_pj_per_bit,
                static_w=est.leakage_w / shared_by,
            )
        return out


class MemoryDesign(ABC):
    """One memory-hierarchy design at one configuration point.

    Concrete designs define the levels *below* L3 (``lower_caches`` +
    ``memory``) and their technology bindings; the SRAM pyramid and its
    bindings come from the shared :class:`ReferenceSystem`.

    Args:
        name: configuration label (e.g. ``"NMM-PCM-N6"``).
        scale: capacity scale applied to every simulated cache (see
            DESIGN.md §4); bindings always use full-size capacities.
        reference: the SRAM pyramid (defaults to Sandy Bridge).
        engine: cache simulation engine request (``"auto"``,
            ``"scalar"`` or ``"setpar"``), applied to every level the
            design builds. Engines are bit-identical — this knob only
            affects simulation speed, never statistics — so it is
            deliberately *not* part of :meth:`sim_key`.
    """

    def __init__(
        self,
        name: str,
        scale: float = 1.0,
        reference: ReferenceSystem | None = None,
        engine: str = "auto",
    ) -> None:
        if scale <= 0 or scale > 1:
            raise ConfigError(f"scale must be in (0, 1], got {scale}")
        if engine not in ("auto", "scalar", "setpar"):
            raise ConfigError(
                f"unknown engine {engine!r}; expected 'auto', 'scalar' "
                f"or 'setpar'"
            )
        self.name = name
        self.scale = scale
        self.reference = reference or ReferenceSystem.sandy_bridge()
        self.engine = engine

    # -- design-specific pieces -----------------------------------------

    @abstractmethod
    def lower_caches(self) -> list[SetAssociativeCache]:
        """Fresh scaled cache instances below L3 (may be empty)."""

    @abstractmethod
    def memory(self) -> MainMemory | PartitionedMemory:
        """Fresh terminal memory device(s)."""

    @abstractmethod
    def lower_bindings(self, footprint_bytes: int) -> dict[str, LevelBinding]:
        """Bindings for the lower levels, at full-size capacities.

        Args:
            footprint_bytes: the workload's *full-size* footprint —
                sizes footprint-dependent devices (baseline DRAM, NVM).
        """

    def sim_key(self) -> str:
        """Identity of the design's *simulation behaviour*.

        Two designs with the same sim key produce identical hierarchy
        statistics on the same stream (e.g. NMM with PCM vs STT-RAM —
        the terminal technology changes only the model bindings, not
        the data movement). The experiment runner uses this to share
        simulations across the technology axis of a sweep.
        """
        return self.name

    # -- common machinery -------------------------------------------------

    def make_cache(self, config: CacheConfig) -> SetAssociativeCache:
        """A fresh cache for ``config`` honouring the design's engine.

        ``with_engine`` downgrades an unsupported ``"setpar"`` request
        (sectored or non-LRU levels) back to ``"auto"`` so sectored L4
        page caches keep their scalar loop without the caller caring.
        """
        return SetAssociativeCache(with_engine(config, self.engine))

    def build(self) -> Hierarchy:
        """A fresh, cold, fully-assembled scaled hierarchy."""
        return Hierarchy(
            self.reference.build_caches(self.scale, engine=self.engine)
            + self.lower_caches(),
            self.memory(),
        )

    def bindings(self, footprint_bytes: int) -> dict[str, LevelBinding]:
        """Full binding map: SRAM levels + design-specific levels."""
        out = self.reference.bindings()
        out.update(self.lower_bindings(footprint_bytes))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, scale={self.scale:g})"

"""The reference design: 3 SRAM caches + footprint-sized DRAM.

"...the base case that has 3 on chip SRAM caches followed by a DRAM big
enough to support necessary memory footprint." Every figure in the
paper normalizes against this design.
"""

from __future__ import annotations

from repro.cache.mainmem import MainMemory
from repro.cache.setassoc import SetAssociativeCache
from repro.designs.base import MemoryDesign, ReferenceSystem
from repro.model.bindings import LevelBinding
from repro.tech.params import DRAM


class ReferenceDesign(MemoryDesign):
    """3-level SRAM pyramid over DRAM main memory."""

    #: Name of the terminal memory level.
    MEMORY_LEVEL = "DRAM"

    def __init__(
        self,
        scale: float = 1.0,
        reference: ReferenceSystem | None = None,
        engine: str = "auto",
    ) -> None:
        super().__init__("REF", scale=scale, reference=reference, engine=engine)

    def lower_caches(self) -> list[SetAssociativeCache]:
        return []

    def memory(self) -> MainMemory:
        return MainMemory(self.MEMORY_LEVEL)

    def lower_bindings(self, footprint_bytes: int) -> dict[str, LevelBinding]:
        # The baseline DRAM is sized to the workload footprint, so its
        # background/refresh power grows with the footprint — this is
        # the static-energy cost the NVM designs attack.
        return {
            self.MEMORY_LEVEL: LevelBinding.from_technology(
                self.MEMORY_LEVEL, DRAM, footprint_bytes
            )
        }

"""4LC: eDRAM or HMC fourth-level cache in front of DRAM.

"this design uses eDRAM and Hybrid Memory Cube (HMC) as Last Level
Cache (LLC) ... Missed references in the LLC are simply directed
towards DRAM." The L4 capacity and page size sweep is Table 2.
"""

from __future__ import annotations

from repro.cache.config import CacheConfig
from repro.cache.mainmem import MainMemory
from repro.cache.setassoc import SetAssociativeCache
from repro.designs.base import MemoryDesign, ReferenceSystem
from repro.designs.configs import PAGE_CACHE_ASSOCIATIVITY, EHConfig
from repro.errors import ConfigError
from repro.model.bindings import LevelBinding
from repro.tech.params import DRAM, MemoryTechnology


class FourLCDesign(MemoryDesign):
    """eDRAM/HMC L4 cache + DRAM main memory.

    Args:
        cache_tech: the L4 technology (eDRAM or HMC from Table 1).
        config: the Table 2 row (capacity + page size).
        scale: simulation capacity scale.
    """

    L4_LEVEL = "L4"
    MEMORY_LEVEL = "DRAM"

    def __init__(
        self,
        cache_tech: MemoryTechnology,
        config: EHConfig,
        scale: float = 1.0,
        reference: ReferenceSystem | None = None,
        engine: str = "auto",
    ) -> None:
        super().__init__(
            f"4LC-{cache_tech.name}-{config.name}",
            scale=scale,
            reference=reference,
            engine=engine,
        )
        if not cache_tech.volatile:
            raise ConfigError(
                f"4LC uses a volatile LLC technology, got {cache_tech.name}"
            )
        if config.page_size < self.reference.line_size:
            raise ConfigError("L4 page size must be >= the SRAM line size")
        self.cache_tech = cache_tech
        self.config = config

    def sim_key(self) -> str:
        return f"4LC-{self.config.name}"

    def l4_config(self) -> CacheConfig:
        """Full-size L4 cache configuration (line-granularity dirty
        tracking, page-granularity allocation/fills)."""
        return CacheConfig(
            self.L4_LEVEL,
            self.config.capacity,
            PAGE_CACHE_ASSOCIATIVITY,
            self.config.page_size,
            sector_size=min(self.reference.line_size, self.config.page_size),
            hashed_sets=True,
        )

    def lower_caches(self) -> list[SetAssociativeCache]:
        return [self.make_cache(self.l4_config().scaled(self.scale))]

    def memory(self) -> MainMemory:
        return MainMemory(self.MEMORY_LEVEL)

    def lower_bindings(self, footprint_bytes: int) -> dict[str, LevelBinding]:
        return {
            self.L4_LEVEL: LevelBinding.from_technology(
                self.L4_LEVEL, self.cache_tech, self.config.capacity
            ),
            self.MEMORY_LEVEL: LevelBinding.from_technology(
                self.MEMORY_LEVEL, DRAM, footprint_bytes
            ),
        }

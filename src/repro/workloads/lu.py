"""NPB LU: SSOR relaxation solver.

NPB LU solves the Navier–Stokes equations with symmetric successive
over-relaxation, sweeping lower- then upper-triangular parts of a
7-point-coupled operator over the 3D grid. The memory signature is
plane-wavefront sweeps: each k-plane update reads the neighbouring
plane and streams the 5-component state.

We implement plane-ordered SSOR on a synthetic diagonally-dominant
7-point operator over a 5-component field: a forward (ascending k) and
backward (descending k) sweep per iteration, with an untraced residual
check confirming the relaxation actually converges.

Traced regions: ``lu.u`` (state), ``lu.b`` (right-hand side).
"""

from __future__ import annotations

import numpy as np

from repro.trace.tracer import Tracer
from repro.workloads.base import TraceResult, Workload, WorkloadInfo, rng_for

#: Components per grid point (5 conserved quantities, as in NPB LU).
COMPONENTS: int = 5
#: Bytes per cell: state + rhs, 5 components each, 8 B doubles.
_BYTES_PER_CELL: int = 2 * COMPONENTS * 8

#: Stencil coupling strength (diagonal 1.0; dominance requires 6w < 1).
_COUPLING: float = 0.1
#: SSOR over-relaxation factor.
_OMEGA: float = 1.2


def _apply_operator(u: np.ndarray) -> np.ndarray:
    """The 7-point operator A u (untraced; used for rhs + residuals)."""
    out = u.copy()
    w = _COUPLING
    out[1:] -= w * u[:-1]
    out[:-1] -= w * u[1:]
    out[:, 1:] -= w * u[:, :-1]
    out[:, :-1] -= w * u[:, 1:]
    out[:, :, 1:] -= w * u[:, :, :-1]
    out[:, :, :-1] -= w * u[:, :, 1:]
    return out


class LUWorkload(Workload):
    """NPB LU (class C, per Table 4)."""

    info = WorkloadInfo(
        name="LU",
        suite="NPB",
        footprint_gb=0.8,
        t_ref_s=25.0,
        inputs="Class: C",
        description="SSOR solver with plane-wavefront sweeps",
    )

    def __init__(self, iterations: int = 1) -> None:
        self.iterations = iterations

    def trace(self, scale: float = 1.0 / 256, seed: int = 0) -> TraceResult:
        target = self.scaled_footprint_bytes(scale)
        n = max(6, round((target / _BYTES_PER_CELL) ** (1.0 / 3.0)))
        rng = rng_for(seed)
        tracer = Tracer()

        with tracer.pause():
            u = tracer.array("lu.u", (n, n, n, COMPONENTS))
            b = tracer.array("lu.b", (n, n, n, COMPONENTS))
            u_exact = rng.uniform(-1.0, 1.0, size=(n, n, n, COMPONENTS))
            b.data[:] = _apply_operator(u_exact)
            u.data[:] = 0.0
            residual_before = float(np.linalg.norm(_apply_operator(u.data) - b.data))

        for _ in range(self.iterations):
            self._sweep(u, b, n, forward=True)
            self._sweep(u, b, n, forward=False)

        with tracer.pause():
            residual_after = float(np.linalg.norm(_apply_operator(u.data) - b.data))

        return TraceResult(
            stream=tracer.stream,
            tracer=tracer,
            checks={
                "grid": n,
                "cells": n**3,
                "residual_before": residual_before,
                "residual_after": residual_after,
                "converging": residual_after < residual_before,
            },
        )

    def _sweep(self, u, b, n, forward: bool) -> None:
        """One plane-ordered relaxation sweep (traced).

        For each k-plane in sweep order: read the rhs plane, the plane
        itself, and its already-updated neighbour plane; relax; store
        the updated plane. The per-plane reads/writes are the streaming
        pattern LU's wavefronts produce.
        """
        w = _COUPLING
        ks = range(n) if forward else range(n - 1, -1, -1)
        for k in ks:
            rhs_plane = b[:, :, k, :]
            plane = u[:, :, k, :]
            neighbour_k = k - 1 if forward else k + 1
            acc = rhs_plane.copy()
            if 0 <= neighbour_k < n:
                acc += w * u[:, :, neighbour_k, :]
            other_k = k + 1 if forward else k - 1
            if 0 <= other_k < n:
                # Untraced stale read would misrepresent traffic: the
                # real code reads this plane too.
                acc += w * u[:, :, other_k, :]
            # In-plane couplings use the freshly loaded plane (Jacobi
            # within the plane, Gauss-Seidel across planes).
            acc[1:, :, :] += w * plane[:-1, :, :]
            acc[:-1, :, :] += w * plane[1:, :, :]
            acc[:, 1:, :] += w * plane[:, :-1, :]
            acc[:, :-1, :] += w * plane[:, 1:, :]
            updated = (1.0 - _OMEGA) * plane + _OMEGA * acc
            u[:, :, k, :] = updated

"""NPB problem-class scaling.

The NAS Parallel Benchmarks define problem classes (S, W, A–E) whose
sizes grow roughly 16× per letter from A upward. The paper runs class D
(class C for LU); this module lets any NPB workload be instantiated at
a different class, scaling both the footprint and the reference runtime
consistently (the workloads are memory-bound, so runtime tracks the
footprint to first order).

Usage::

    from repro.workloads.cg import CGWorkload
    from repro.workloads.npb_classes import at_npb_class

    cg_class_b = at_npb_class(CGWorkload(), "B")
"""

from __future__ import annotations

import copy
from dataclasses import replace

from repro.errors import ConfigError
from repro.workloads.base import Workload

#: Footprint factors relative to class D (the published NPB growth is
#: ~16x per class from A to D; S and W are small validation sizes).
CLASS_FACTORS: dict[str, float] = {
    "S": 1.0 / 65536,
    "W": 1.0 / 16384,
    "A": 1.0 / 4096,
    "B": 1.0 / 256,
    "C": 1.0 / 16,
    "D": 1.0,
    "E": 16.0,
}


def class_factor(from_class: str, to_class: str) -> float:
    """Footprint ratio between two NPB classes.

    Raises:
        ConfigError: for unknown class letters.
    """
    for letter in (from_class, to_class):
        if letter not in CLASS_FACTORS:
            raise ConfigError(
                f"unknown NPB class {letter!r}; known: {sorted(CLASS_FACTORS)}"
            )
    return CLASS_FACTORS[to_class] / CLASS_FACTORS[from_class]


def at_npb_class(workload: Workload, npb_class: str) -> Workload:
    """A copy of an NPB workload re-sized to another class.

    The footprint and reference runtime scale by the class factor; the
    inputs string is rewritten. Only meaningful for the NPB workloads
    (whose ``inputs`` is a class designation), but harmless elsewhere.
    """
    current = workload.info.inputs.split(":")[-1].strip() or "D"
    if current not in CLASS_FACTORS:
        raise ConfigError(
            f"{workload.name}: cannot parse NPB class from inputs "
            f"{workload.info.inputs!r}"
        )
    factor = class_factor(current, npb_class)
    clone = copy.copy(workload)
    clone.info = replace(
        workload.info,
        footprint_gb=workload.info.footprint_gb * factor,
        t_ref_s=workload.info.t_ref_s * factor,
        inputs=f"Class: {npb_class}",
    )
    return clone

"""Workload suite registry (Table 4).

``SUITE`` maps workload names to factory callables so experiment code
can enumerate the benchmark set without importing every module
explicitly; :func:`get_workload` builds a fresh instance.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.amg import AMGWorkload
from repro.workloads.base import Workload
from repro.workloads.bt import BTWorkload
from repro.workloads.cg import CGWorkload
from repro.workloads.graph500 import Graph500Workload
from repro.workloads.hashing import HashingWorkload
from repro.workloads.lu import LUWorkload
from repro.workloads.sp import SPWorkload
from repro.workloads.velvet import VelvetWorkload

#: All workloads of the evaluation, keyed by Table 4 name.
SUITE: dict[str, Callable[[], Workload]] = {
    "BT": BTWorkload,
    "SP": SPWorkload,
    "LU": LUWorkload,
    "CG": CGWorkload,
    "AMG2013": AMGWorkload,
    "Graph500": Graph500Workload,
    "Hashing": HashingWorkload,
    "Velvet": VelvetWorkload,
}


def workload_names() -> list[str]:
    """Names of the full suite, in Table 4 order."""
    return list(SUITE)


def get_workload(name: str) -> Workload:
    """Instantiate a workload by name.

    Raises:
        KeyError: for unknown names, listing the suite.
    """
    if name not in SUITE:
        raise KeyError(f"unknown workload {name!r}; suite: {list(SUITE)}")
    return SUITE[name]()

"""CORAL Graph500: BFS on Kronecker graphs.

Graph500 generates a scale-free Kronecker (R-MAT) graph and runs
breadth-first search from random roots. The memory signature is the
canonical irregular workload: per frontier vertex, a burst of
sequential edge-list reads followed by random-access probes and updates
of the visited/parent array.

We implement the real benchmark structure: an R-MAT edge generator
(untraced setup, standard A/B/C/D = 0.57/0.19/0.19/0.05 parameters),
CSR conversion, and traced level-synchronous BFS with parent tracking,
verified by checking the BFS tree is consistent (every reached vertex's
parent is closer to the root).

Traced regions: ``g500.xoff`` (CSR offsets), ``g500.xadj`` (edges),
``g500.parent``, ``g500.frontier``.
"""

from __future__ import annotations

import numpy as np

from repro.trace.tracer import Tracer
from repro.workloads.base import TraceResult, Workload, WorkloadInfo, rng_for

#: R-MAT quadrant probabilities (the Graph500 reference values).
_RMAT_A, _RMAT_B, _RMAT_C = 0.57, 0.19, 0.19
#: Edge factor from the paper's inputs ("-s 22 -e 4").
EDGE_FACTOR: int = 4
#: Bytes per vertex: offsets (8) + parent (8) + frontier slot (8) +
#: 2*edgefactor directed edges * 8 B.
_BYTES_PER_VERTEX: int = 8 + 8 + 8 + 2 * EDGE_FACTOR * 8
#: Fraction of the Table 4 footprint that is the BFS-hot graph. The
#: published inputs "-s 22 -e 4" give 2^22 vertices: CSR offsets
#: (34 MB) + 2×16.8M directed edges (268 MB) + parent/frontier (67 MB)
#: ≈ 370 MB of the 4 GB/core footprint — the remainder is the edge-list
#: staging the generator writes but BFS never revisits. As on the
#: paper's testbed, the hot graph largely fits a 512 MB DRAM cache.
HOT_FRACTION: float = 370.0 / 4096.0


def rmat_edges(scale: int, edge_factor: int, rng: np.random.Generator) -> np.ndarray:
    """Generate R-MAT edges, shape (m, 2), vectorized over bit levels."""
    n_vertices = 1 << scale
    m = n_vertices * edge_factor
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    ab = _RMAT_A + _RMAT_B
    a_norm = _RMAT_A / ab
    c_norm = _RMAT_C / (1.0 - ab)
    for bit in range(scale):
        pick_right = rng.random(m) > ab  # quadrant column
        threshold = np.where(pick_right, c_norm, a_norm)
        pick_down = rng.random(m) > threshold  # quadrant row
        src += pick_right.astype(np.int64) << bit
        dst += pick_down.astype(np.int64) << bit
    # Permute vertex labels so degree is independent of vertex id.
    perm = rng.permutation(n_vertices)
    return np.stack([perm[src], perm[dst]], axis=1)


def edges_to_csr(edges: np.ndarray, n_vertices: int):
    """Undirected CSR (both edge directions), self-loops removed."""
    keep = edges[:, 0] != edges[:, 1]
    edges = edges[keep]
    src = np.concatenate([edges[:, 0], edges[:, 1]])
    dst = np.concatenate([edges[:, 1], edges[:, 0]])
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    xoff = np.zeros(n_vertices + 1, dtype=np.int64)
    np.add.at(xoff, src + 1, 1)
    xoff = np.cumsum(xoff)
    return xoff, dst


class Graph500Workload(Workload):
    """CORAL Graph500 analog."""

    info = WorkloadInfo(
        name="Graph500",
        suite="CORAL",
        footprint_gb=4.0,
        t_ref_s=157.0,
        inputs="-s 22 -e 4",
        description="breadth-first search on Kronecker graphs",
    )

    def __init__(self, n_roots: int = 1) -> None:
        self.n_roots = n_roots

    def trace(self, scale: float = 1.0 / 256, seed: int = 0) -> TraceResult:
        target = int(self.scaled_footprint_bytes(scale) * HOT_FRACTION)
        graph_scale = max(8, round(np.log2(max(2, target // _BYTES_PER_VERTEX))))
        n_vertices = 1 << graph_scale
        rng = rng_for(seed)
        tracer = Tracer()

        with tracer.pause():
            edges = rmat_edges(graph_scale, EDGE_FACTOR, rng)
            xoff_np, xadj_np = edges_to_csr(edges, n_vertices)
            xoff = tracer.array("g500.xoff", xoff_np.shape, dtype=np.int64)
            xoff.data[:] = xoff_np
            xadj = tracer.array("g500.xadj", xadj_np.shape, dtype=np.int64)
            xadj.data[:] = xadj_np
            parent = tracer.array("g500.parent", (n_vertices,), dtype=np.int64)
            frontier = tracer.array("g500.frontier", (n_vertices,), dtype=np.int64)
            # Roots must have at least one edge (benchmark requirement).
            degrees = np.diff(xoff_np)
            candidates = np.flatnonzero(degrees > 0)
            roots = rng.choice(candidates, size=self.n_roots, replace=False)

        reached_counts = []
        level_counts = []
        for root in roots:
            with tracer.pause():
                parent.data[:] = -1
            levels = self._bfs(xoff, xadj, parent, frontier, int(root))
            level_counts.append(levels)
            with tracer.pause():
                reached = int(np.count_nonzero(parent.data >= 0))
                reached_counts.append(reached)
                valid = self._validate_tree(
                    xoff_np, xadj_np, parent.data, int(root)
                )

        return TraceResult(
            stream=tracer.stream,
            tracer=tracer,
            checks={
                "vertices": n_vertices,
                "edges_directed": int(len(xadj_np)),
                "reached": reached_counts,
                "bfs_levels": level_counts,
                "tree_valid": valid,
            },
        )

    # -- traced kernel ------------------------------------------------------

    def _bfs(self, xoff, xadj, parent, frontier, root: int) -> int:
        """Level-synchronous BFS (traced), returns number of levels.

        Per level: read the frontier (sequential), read each frontier
        vertex's offsets (random), stream its adjacency (sequential
        bursts), probe parent[] for every neighbour (random), and write
        parent + next frontier for the newly discovered (random +
        sequential stores). This is exactly the reference
        implementation's traffic.
        """
        parent[root] = root
        frontier[0] = root
        frontier_len = 1
        levels = 0
        while frontier_len > 0:
            levels += 1
            current = frontier[0:frontier_len].astype(np.int64)
            # Offsets of the frontier vertices (random gathers).
            starts = xoff[current]
            ends = xoff[current + 1]
            # Adjacency bursts: build the concatenated neighbour list.
            counts = (ends - starts).astype(np.int64)
            total = int(counts.sum())
            if total == 0:
                break
            # Edge indices: starts[i] .. ends[i] for each frontier vertex.
            offsets = np.arange(total, dtype=np.int64)
            cum = np.concatenate([[0], np.cumsum(counts)[:-1]])
            offsets -= np.repeat(cum, counts)
            edge_idx = np.repeat(starts, counts) + offsets
            neighbours = xadj[edge_idx]
            # Probe visitation state (random gathers into parent).
            neighbour_parents = parent[neighbours]
            undiscovered = neighbour_parents < 0
            if not undiscovered.any():
                frontier_len = 0
                continue
            new_vertices, first_edge = np.unique(
                neighbours[undiscovered], return_index=True
            )
            claiming_parent = np.repeat(current, counts)[undiscovered][first_edge]
            # Claim: write parent (random scatter) + next frontier
            # (sequential store).
            parent[new_vertices] = claiming_parent
            frontier[0 : len(new_vertices)] = new_vertices
            frontier_len = len(new_vertices)
        return levels

    @staticmethod
    def _validate_tree(xoff_np, xadj_np, parent_np, root: int) -> bool:
        """Graph500-style validation: parents are real neighbours and
        the tree has no cycles (walking parents terminates at root)."""
        reached = np.flatnonzero(parent_np >= 0)
        if parent_np[root] != root:
            return False
        sample = reached[:: max(1, len(reached) // 256)]
        for v in sample:
            p = int(parent_np[v])
            if v != root:
                row = xadj_np[xoff_np[v] : xoff_np[v + 1]]
                if p not in row:
                    return False
            # Walk to root with a step bound (cycle detection).
            steps = 0
            node = int(v)
            while node != root:
                node = int(parent_np[node])
                steps += 1
                if steps > len(parent_np):
                    return False
        return True

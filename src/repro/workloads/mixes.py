"""Multiprogrammed workload mixes.

The paper's study is single-core (per-core capacities, per-core
footprints), but its shared-L3 reference system invites the obvious
follow-up: what does a hybrid hierarchy see when several programs share
it? A :class:`MixedWorkload` traces each member, relocates their
address spaces to be disjoint, and interleaves the streams round-robin
— the reference stream a shared cache level observes under
multiprogramming.

Metadata composition: the mix's footprint is the sum of the members'
(all resident at once); its reference runtime is the maximum (the
co-schedule runs as long as its longest member).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.trace.filters import interleave_streams, offset_stream
from repro.trace.tracer import Region, Tracer
from repro.workloads.base import TraceResult, Workload, WorkloadInfo

#: Alignment for each member's relocated address-space slot.
_SLOT_ALIGN: int = 1 << 30  # 1 GiB in trace space — far beyond any slot


class MixedWorkload(Workload):
    """Round-robin interleaving of several workloads' streams.

    Args:
        members: the co-scheduled workloads (at least two).
        granule: consecutive events taken from each member per turn —
            a proxy for the scheduling/interleaving granularity.
    """

    def __init__(self, members: list[Workload], granule: int = 256) -> None:
        if len(members) < 2:
            raise ConfigError("a mix needs at least two workloads")
        if granule <= 0:
            raise ConfigError("granule must be positive")
        self.members = list(members)
        self.granule = granule
        self.info = WorkloadInfo(
            name="+".join(w.name for w in members),
            suite="Mix",
            footprint_gb=sum(w.info.footprint_gb for w in members),
            t_ref_s=max(w.info.t_ref_s for w in members),
            inputs=f"granule={granule}",
            description="multiprogrammed mix of "
            + ", ".join(w.name for w in members),
        )

    def trace(self, scale: float = 1.0 / 256, seed: int = 0) -> TraceResult:
        streams = []
        tracer = Tracer()
        checks: dict = {"members": {}}
        for index, member in enumerate(self.members):
            # Each member's footprint is already scaled by its own
            # Table 4 entry; trace with a distinct seed per member so
            # identical workloads in a mix do not correlate.
            result = member.trace(scale=scale, seed=seed + index)
            stats = result.stream.stats()
            # Relocate into a private 1 GiB-aligned slot, chosen above
            # every member's own heap base so the shift stays
            # non-negative.
            slot_base = (index + 1) * _SLOT_ALIGN
            shift = slot_base - int(stats.min_address)
            if shift < 0:  # pragma: no cover - members stay within slots
                raise ConfigError(
                    f"{member.name}: traced span exceeds the mix slot size"
                )
            streams.append(offset_stream(result.stream, shift))
            # Re-register the member's regions at their new location so
            # the NDM profiler still works on mixes.
            for region in result.tracer.regions:
                tracer.regions.append(
                    Region(
                        name=f"{member.name}.{region.name}",
                        base=region.base + shift,
                        size=region.size,
                    )
                )
            checks["members"][member.name] = result.checks
        mixed = interleave_streams(streams, granule=self.granule)
        tracer.stream = mixed
        checks["events"] = len(mixed)
        return TraceResult(stream=mixed, tracer=tracer, checks=checks)

"""CORAL Hash: integer hashing benchmark.

The CORAL "Hash" benchmark measures integer-op and memory performance
of hash-table construction and probing — the access pattern of
memory-intensive genomics pipelines. Its signature is uniformly random
probes over a table far larger than any cache, with linear-probe bursts
on collisions.

We implement a real open-addressing (linear probing) hash table with
multiplicative hashing: a traced build phase inserting random keys,
then a traced probe phase of hits and misses, verified against NumPy
set-membership ground truth.

Probing is processed in vectorized *rounds*: each round gathers the
resident keys of every still-pending operation (one traced random
gather), resolves matches/claims, and advances the collided remainder
by one slot. The traced address sequence is the same set of probes a
scalar loop would issue, batched per round.

Traced regions: ``hash.keys``, ``hash.values`` (the table arrays),
``hash.input`` (the sequential key stream).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.trace.tracer import Tracer
from repro.workloads.base import TraceResult, Workload, WorkloadInfo, rng_for

#: Fibonacci multiplicative hashing constant (Knuth).
_HASH_MULT = np.uint64(11400714819323198485)
#: Table load factor after the build phase.
_LOAD_FACTOR: float = 0.4
#: Sentinel for an empty slot.
_EMPTY = np.int64(-1)
#: Bytes per table slot: key (8) + value (8).
_BYTES_PER_SLOT: int = 16
#: Fraction of the Table 4 footprint occupied by the hash table itself.
#: The published inputs are "-m 30M": 30M slots × 16 B = 480 MB of the
#: 4 GB/core footprint (the rest is input staging and I/O buffers that
#: the hashing kernel does not re-touch). Sizing the hot table from the
#: real inputs is what makes it — as on the paper's testbed — fit
#: almost entirely inside a 512 MB DRAM cache.
HOT_FRACTION: float = 480.0 / 4096.0


def _hash_slots(keys: np.ndarray, table_bits: int) -> np.ndarray:
    """Multiplicative hash of int64 keys into table slots."""
    h = keys.astype(np.uint64) * _HASH_MULT
    return (h >> np.uint64(64 - table_bits)).astype(np.int64)


class HashingWorkload(Workload):
    """CORAL Hashing-2 analog."""

    info = WorkloadInfo(
        name="Hashing",
        suite="CORAL",
        footprint_gb=4.0,
        t_ref_s=389.6,
        inputs="-m 30M -n 50K",
        description="integer hashing: random table probes",
    )

    def __init__(self, ops_per_slot: float = 0.55, probe_batch: int = 16384) -> None:
        #: Total build+probe operations as a fraction of table slots.
        self.ops_per_slot = ops_per_slot
        self.probe_batch = probe_batch

    def trace(self, scale: float = 1.0 / 256, seed: int = 0) -> TraceResult:
        target = int(self.scaled_footprint_bytes(scale) * HOT_FRACTION)
        table_bits = max(10, round(np.log2(max(2, target // _BYTES_PER_SLOT))))
        n_slots = 1 << table_bits
        n_inserts = int(n_slots * _LOAD_FACTOR)
        n_lookups = max(64, int(n_slots * self.ops_per_slot) - n_inserts)
        rng = rng_for(seed)
        tracer = Tracer()

        with tracer.pause():
            keys = tracer.array("hash.keys", (n_slots,), dtype=np.int64)
            keys.data[:] = _EMPTY
            values = tracer.array("hash.values", (n_slots,), dtype=np.int64)
            # Unique positive keys.
            insert_keys = rng.choice(
                np.int64(2) ** 62, size=n_inserts, replace=False
            ).astype(np.int64)
            # Lookup mix: ~half present, ~half absent.
            present = rng.choice(insert_keys, size=n_lookups // 2, replace=True)
            absent = rng.integers(
                2**62, 2**62 + 2**32, size=n_lookups - n_lookups // 2
            ).astype(np.int64)
            lookup_keys = np.concatenate([present, absent])
            rng.shuffle(lookup_keys)
            input_stream = tracer.array(
                "hash.input",
                (n_inserts + len(lookup_keys),),
                dtype=np.int64,
            )
            input_stream.data[:n_inserts] = insert_keys
            input_stream.data[n_inserts:] = lookup_keys

        inserted = self._insert_phase(keys, values, input_stream, n_inserts, table_bits)
        found = self._probe_phase(
            keys, values, input_stream, n_inserts, len(lookup_keys), table_bits
        )

        with tracer.pause():
            expected_found = int(np.isin(lookup_keys, insert_keys).sum())

        return TraceResult(
            stream=tracer.stream,
            tracer=tracer,
            checks={
                "slots": n_slots,
                "inserted": inserted,
                "lookups": len(lookup_keys),
                "found": found,
                "expected_found": expected_found,
                "correct": found == expected_found and inserted == n_inserts,
            },
        )

    # -- traced kernels -------------------------------------------------------

    def _insert_phase(self, keys, values, input_stream, n_inserts, table_bits) -> int:
        """Linear-probing inserts in vectorized probe rounds."""
        mask = (1 << table_bits) - 1
        inserted = 0
        batch = self.probe_batch
        for start in range(0, n_inserts, batch):
            stop = min(start + batch, n_inserts)
            pending_keys = input_stream[start:stop]  # sequential load
            pending_slots = _hash_slots(pending_keys, table_bits)
            rounds = 0
            while len(pending_keys):
                rounds += 1
                if rounds > mask:  # pragma: no cover - sized for load factor
                    raise SimulationError("hash table unexpectedly full")
                resident = keys[pending_slots]  # traced random gather
                empty = resident == _EMPTY
                # Within a round, only the first claimant of each empty
                # slot wins; losers re-probe the next slot like a scalar
                # loop would after the winner's store.
                claim_positions = np.flatnonzero(empty)
                if len(claim_positions):
                    _, first = np.unique(
                        pending_slots[claim_positions], return_index=True
                    )
                    winners = claim_positions[first]
                    win_slots = pending_slots[winners]
                    win_keys = pending_keys[winners]
                    keys[win_slots] = win_keys  # traced scatter store
                    values[win_slots] = win_keys ^ 0x5A5A  # traced store
                    inserted += len(winners)
                    won = np.zeros(len(pending_keys), dtype=bool)
                    won[winners] = True
                else:
                    won = np.zeros(len(pending_keys), dtype=bool)
                # Done: winners, or keys already present (defensive —
                # insert keys are unique so matches should not happen).
                done = won | (resident == pending_keys)
                pending_keys = pending_keys[~done]
                pending_slots = (pending_slots[~done] + 1) & mask
        return inserted

    def _probe_phase(
        self, keys, values, input_stream, n_inserts, n_lookups, table_bits
    ) -> int:
        """Linear-probing lookups in vectorized rounds; returns hits."""
        mask = (1 << table_bits) - 1
        found = 0
        batch = self.probe_batch
        for start in range(0, n_lookups, batch):
            stop = min(start + batch, n_lookups)
            pending_keys = input_stream[n_inserts + start : n_inserts + stop]
            pending_slots = _hash_slots(pending_keys, table_bits)
            rounds = 0
            while len(pending_keys):
                rounds += 1
                if rounds > mask:  # pragma: no cover
                    break
                resident = keys[pending_slots]  # traced random gather
                hit = resident == pending_keys
                if hit.any():
                    _ = values[pending_slots[hit]]  # traced value loads
                    found += int(hit.sum())
                miss = resident == _EMPTY
                done = hit | miss
                pending_keys = pending_keys[~done]
                pending_slots = (pending_slots[~done] + 1) & mask
        return found

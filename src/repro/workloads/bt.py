"""NPB BT: block-tridiagonal 3D ADI solver.

NPB BT solves 3D Navier–Stokes with alternating-direction-implicit
sweeps: along each dimension, every grid line is an independent
block-tridiagonal system with 5×5 blocks, solved by block Thomas
elimination. The memory signature is long strided sweeps over big
block arrays — unit stride in x, plane-strided in y and z.

We implement the real block Thomas algorithm (forward elimination with
5×5 LU solves, back substitution) over a synthetic diagonally-dominant
block system, tracing the block and RHS arrays.

Traced regions: ``bt.lhsA/lhsB/lhsC`` (the three block diagonals),
``bt.rhs``, ``bt.u`` (solution).
"""

from __future__ import annotations

import numpy as np

from repro.trace.tracer import Tracer
from repro.workloads.base import TraceResult, Workload, WorkloadInfo, rng_for

#: Block rank of the BT systems (5 conserved quantities per cell).
BLOCK: int = 5
#: Bytes per grid cell: 3 diagonals of 5x5 blocks + rhs + solution.
_BYTES_PER_CELL: int = (3 * BLOCK * BLOCK + 2 * BLOCK) * 8


class BTWorkload(Workload):
    """NPB BT (class D analog)."""

    info = WorkloadInfo(
        name="BT",
        suite="NPB",
        footprint_gb=1.69,
        t_ref_s=36.0,
        inputs="Class: D",
        description="block tridiagonal ADI solver (5x5 blocks)",
    )

    def __init__(
        self,
        sweeps: tuple[int, ...] = (0, 1, 2),
        rhs_phase: bool = False,
    ) -> None:
        #: Which dimensions to sweep (0=x contiguous, 1=y, 2=z strided).
        self.sweeps = sweeps
        #: Also trace a compute_rhs-style 7-point stencil pass over the
        #: state before the solves (as the full NPB BT does each step).
        #: Off by default: the published calibration (EXPERIMENTS.md)
        #: was produced without it.
        self.rhs_phase = rhs_phase

    def trace(self, scale: float = 1.0 / 256, seed: int = 0) -> TraceResult:
        target = self.scaled_footprint_bytes(scale)
        n = max(6, round((target / _BYTES_PER_CELL) ** (1.0 / 3.0)))
        rng = rng_for(seed)
        tracer = Tracer()

        with tracer.pause():
            shape = (n, n, n, BLOCK, BLOCK)
            lhs_a = tracer.array("bt.lhsA", shape)
            lhs_b = tracer.array("bt.lhsB", shape)
            lhs_c = tracer.array("bt.lhsC", shape)
            rhs = tracer.array("bt.rhs", (n, n, n, BLOCK))
            u = tracer.array("bt.u", (n, n, n, BLOCK))
            # Diagonally dominant blocks so Thomas elimination is stable.
            lhs_a.data[:] = rng.uniform(-0.1, 0.1, size=shape)
            lhs_c.data[:] = rng.uniform(-0.1, 0.1, size=shape)
            lhs_b.data[:] = rng.uniform(-0.1, 0.1, size=shape)
            eye = np.eye(BLOCK) * (2.0 + BLOCK * 0.2)
            lhs_b.data[...] += eye
            rhs.data[:] = rng.uniform(-1.0, 1.0, size=(n, n, n, BLOCK))
            # Initial state for the (optional) rhs stencil phase; the
            # sweeps overwrite u with the line solutions afterwards.
            u.data[:] = rng.uniform(-1.0, 1.0, size=(n, n, n, BLOCK))
            rhs_original = rhs.data.copy()

        if self.rhs_phase:
            self._compute_rhs(u, rhs, n)
            with tracer.pause():
                rhs_original = rhs.data.copy()

        max_residual = 0.0
        for dim in self.sweeps:
            residual = self._sweep_dimension(
                lhs_a, lhs_b, lhs_c, rhs, u, n, dim, rhs_original
            )
            max_residual = max(max_residual, residual)
            # Each ADI sweep consumes rhs and produces u; the next sweep
            # treats u as its new rhs (untraced copy models the cheap
            # pointer swap of the real code).
            with tracer.pause():
                rhs.data[:] = u.data
                rhs_original = rhs.data.copy()

        return TraceResult(
            stream=tracer.stream,
            tracer=tracer,
            checks={
                "grid": n,
                "cells": n**3,
                "max_residual": max_residual,
                "solved": max_residual < 1e-8,
            },
        )

    # -- traced kernels ------------------------------------------------------

    def _compute_rhs(self, u, rhs, n) -> None:
        """7-point stencil over the 5-component state into rhs (traced).

        Mirrors NPB BT's compute_rhs: plane-by-plane streaming reads of
        the state with neighbour planes, writing the flux divergence.
        """
        for k in range(n):
            centre = rhs[:, :, k, :] * 0.0 + u[:, :, k, :] * (-6.0)
            if k > 0:
                centre += u[:, :, k - 1, :]
            if k + 1 < n:
                centre += u[:, :, k + 1, :]
            plane = u[:, :, k, :]
            centre[1:, :, :] += plane[:-1, :, :]
            centre[:-1, :, :] += plane[1:, :, :]
            centre[:, 1:, :] += plane[:, :-1, :]
            centre[:, :-1, :] += plane[:, 1:, :]
            rhs[:, :, k, :] = centre

    def _sweep_dimension(self, lhs_a, lhs_b, lhs_c, rhs, u, n, dim, rhs_orig):
        """Block-Thomas solve of every grid line along ``dim``.

        Returns the max residual ``|B'x - rhs|`` over sampled lines
        (verified untraced against pristine copies).
        """
        max_residual = 0.0
        # Lines are indexed by the two fixed dimensions.
        for j in range(n):
            for k in range(n):
                idx = self._line_index(dim, j, k, n)
                residual = self._thomas_line(
                    lhs_a, lhs_b, lhs_c, rhs, u, idx, rhs_orig
                )
                max_residual = max(max_residual, residual)
        return max_residual

    @staticmethod
    def _line_index(dim, j, k, n):
        """Index tuples selecting the cells of one grid line."""
        line = np.arange(n)
        if dim == 0:
            return (np.full(n, j), np.full(n, k), line)
        if dim == 1:
            return (np.full(n, j), line, np.full(n, k))
        return (line, np.full(n, j), np.full(n, k))

    def _thomas_line(self, lhs_a, lhs_b, lhs_c, rhs, u, idx, rhs_orig) -> float:
        """Block Thomas elimination along one line (traced)."""
        i0, i1, i2 = idx
        n = len(i0)
        # Forward elimination: load the full line's blocks (the traced
        # loads happen in line order, matching the sweep direction's
        # stride), then eliminate in place.
        a = lhs_a[i0, i1, i2].reshape(n, BLOCK, BLOCK)
        b = lhs_b[i0, i1, i2].reshape(n, BLOCK, BLOCK)
        c = lhs_c[i0, i1, i2].reshape(n, BLOCK, BLOCK)
        d = rhs[i0, i1, i2].reshape(n, BLOCK)

        b_mod = b.copy()
        d_mod = d.copy()
        c_mod = c.copy()
        for cell in range(1, n):
            # factor = a_cell @ inv(b'_{cell-1})
            factor = a[cell] @ np.linalg.inv(b_mod[cell - 1])
            b_mod[cell] = b[cell] - factor @ c_mod[cell - 1]
            d_mod[cell] = d[cell] - factor @ d_mod[cell - 1]
        # The eliminated diagonal and rhs are written back (traced
        # stores at line stride).
        rhs[i0, i1, i2] = d_mod.reshape(d.shape)

        # Back substitution (traced stores into u).
        x = np.empty_like(d_mod)
        x[n - 1] = np.linalg.solve(b_mod[n - 1], d_mod[n - 1])
        for cell in range(n - 2, -1, -1):
            x[cell] = np.linalg.solve(
                b_mod[cell], d_mod[cell] - c_mod[cell] @ x[cell + 1]
            )
        u[i0, i1, i2] = x.reshape(d.shape)

        # Untraced verification on this line: the block-tridiagonal
        # operator applied to x must reproduce the original rhs.
        recon = np.einsum("nij,nj->ni", b, x)
        recon[1:] += np.einsum("nij,nj->ni", a[1:], x[:-1])
        recon[:-1] += np.einsum("nij,nj->ni", c[:-1], x[1:])
        orig = rhs_orig[i0, i1, i2].reshape(n, BLOCK)
        return float(np.max(np.abs(recon - orig)))

"""HPC and data-intensive workload kernels (the paper's Table 4).

Every workload is a real, tested implementation of its benchmark's core
algorithm, instrumented with :class:`~repro.trace.TracedArray` so its
execution emits the address stream the simulator consumes:

- NPB: :mod:`~repro.workloads.cg` (conjugate gradient),
  :mod:`~repro.workloads.bt` (block tridiagonal),
  :mod:`~repro.workloads.sp` (scalar pentadiagonal),
  :mod:`~repro.workloads.lu` (SSOR).
- CORAL: :mod:`~repro.workloads.amg` (algebraic multigrid),
  :mod:`~repro.workloads.graph500` (Kronecker BFS),
  :mod:`~repro.workloads.hashing` (integer hashing).
- Applications: :mod:`~repro.workloads.velvet` (de Bruijn assembly).

Workloads are scale-aware: ``trace(scale)`` shrinks the problem so the
traced footprint is ``scale`` × the Table 4 footprint, matching the
capacity scaling of the hierarchy configs (DESIGN.md §4).
"""

from repro.workloads.base import TraceResult, Workload, WorkloadInfo
from repro.workloads.registry import (
    SUITE,
    get_workload,
    workload_names,
)
from repro.workloads.mixes import MixedWorkload
from repro.workloads.npb_classes import at_npb_class
from repro.workloads.synthetic import SyntheticWorkload

__all__ = [
    "Workload",
    "WorkloadInfo",
    "TraceResult",
    "SUITE",
    "get_workload",
    "workload_names",
    "MixedWorkload",
    "SyntheticWorkload",
    "at_npb_class",
]

"""NPB CG: conjugate gradient with irregular sparse matrix access.

The NAS CG benchmark solves a sparse symmetric positive-definite system
with unpreconditioned conjugate gradient; its signature memory
behaviour is the CSR sparse matrix-vector product whose column gathers
scatter across the solution vector. We implement exactly that: a
random SPD matrix in CSR form, real CG iterations (traced), and
convergence checks on the residual.

Traced data structures (each its own region, for NDM profiling):
``rowptr``, ``colidx``, ``values`` (the matrix), and the CG vectors
``x``, ``r``, ``p``, ``q``.
"""

from __future__ import annotations

import numpy as np

from repro.trace.tracer import Tracer
from repro.workloads.base import TraceResult, Workload, WorkloadInfo, rng_for

#: Average nonzeros per row (NPB class D CG has ~21; we keep the same
#: order so the gather:vector-op ratio is representative).
NNZ_PER_ROW: int = 16
#: Bytes per row of the traced footprint (matrix + vectors), used to
#: size the problem from the target footprint:
#: nnz*(8B value + 4B colidx) + 8B rowptr + 4 vectors * 8B.
_BYTES_PER_ROW: int = NNZ_PER_ROW * 12 + 8 + 4 * 8

#: Column indices are 4-byte ints, as in the Fortran benchmark.
COLIDX_DTYPE = np.int32


def _build_spd_csr(n: int, rng: np.random.Generator):
    """Random sparse SPD matrix in CSR: strictly diagonally dominant."""
    nnz_off = NNZ_PER_ROW - 1
    cols = rng.integers(0, n, size=(n, nnz_off), dtype=np.int64)
    # Deduplicate against the diagonal to keep structure clean.
    rows = np.repeat(np.arange(n, dtype=np.int64), nnz_off)
    cols_flat = cols.ravel()
    mask = cols_flat != rows
    rows, cols_flat = rows[mask], cols_flat[mask]
    vals = rng.uniform(-1.0, 1.0, size=len(rows))
    # Append the dominant diagonal.
    diag_rows = np.arange(n, dtype=np.int64)
    # Row sums of absolute off-diagonals guarantee dominance.
    row_abs = np.zeros(n)
    np.add.at(row_abs, rows, np.abs(vals))
    all_rows = np.concatenate([rows, diag_rows])
    all_cols = np.concatenate([cols_flat, diag_rows])
    all_vals = np.concatenate([vals, row_abs + 1.0])
    order = np.lexsort((all_cols, all_rows))
    all_rows, all_cols, all_vals = all_rows[order], all_cols[order], all_vals[order]
    rowptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(rowptr, all_rows + 1, 1)
    rowptr = np.cumsum(rowptr)
    return rowptr, all_cols, all_vals


class CGWorkload(Workload):
    """NPB CG (class D analog)."""

    info = WorkloadInfo(
        name="CG",
        suite="NPB",
        footprint_gb=1.5,
        t_ref_s=54.8,
        inputs="Class: D",
        description="conjugate gradient solver with irregular memory access",
    )

    def __init__(self, iterations: int = 2, row_batch: int = 256) -> None:
        self.iterations = iterations
        self.row_batch = row_batch

    def trace(self, scale: float = 1.0 / 256, seed: int = 0) -> TraceResult:
        target = self.scaled_footprint_bytes(scale)
        n = max(256, target // _BYTES_PER_ROW)
        rng = rng_for(seed)
        tracer = Tracer()

        with tracer.pause():
            rowptr_np, colidx_np, values_np = _build_spd_csr(n, rng)
            b = rng.uniform(0.0, 1.0, size=n)
            rowptr = tracer.array("cg.rowptr", rowptr_np.shape, dtype=np.int64)
            rowptr.data[:] = rowptr_np
            colidx = tracer.array("cg.colidx", colidx_np.shape, dtype=COLIDX_DTYPE)
            colidx.data[:] = colidx_np
            values = tracer.array("cg.values", values_np.shape)
            values.data[:] = values_np
            x = tracer.array("cg.x", (n,))
            r = tracer.array("cg.r", (n,))
            p = tracer.array("cg.p", (n,))
            q = tracer.array("cg.q", (n,))
            r.data[:] = b
            p.data[:] = b

        residuals = [float(np.linalg.norm(r.data))]
        rho = self._dot(r, r)
        for _ in range(self.iterations):
            self._matvec(rowptr, colidx, values, p, q, n)
            alpha = rho / self._dot(p, q)
            self._axpy(x, alpha, p)
            self._axpy(r, -alpha, q)
            rho_new = self._dot(r, r)
            beta = rho_new / rho
            rho = rho_new
            self._xpay(p, beta, r)
            residuals.append(float(np.sqrt(rho_new)))

        # Untraced verification: CG on an SPD system must reduce the
        # residual monotonically.
        return TraceResult(
            stream=tracer.stream,
            tracer=tracer,
            checks={
                "n": n,
                "nnz": int(len(values_np)),
                "residuals": residuals,
                "converging": residuals[-1] < residuals[0],
            },
        )

    # -- traced kernels ---------------------------------------------------

    def _matvec(self, rowptr, colidx, values, src, dst, n) -> None:
        """q = A @ p with CSR gathers, traced row-batch at a time.

        Batching keeps instrumentation overhead sane while preserving
        the access order a row-loop produces: row pointers, then the
        column/value streams, then the irregular gathers into ``src``.
        """
        batch = self.row_batch
        for start in range(0, n, batch):
            stop = min(start + batch, n)
            ptrs = rowptr[start : stop + 1]
            lo, hi = int(ptrs[0]), int(ptrs[-1])
            cols = colidx[lo:hi]
            vals = values[lo:hi]
            gathered = src[cols]  # irregular gather — CG's signature
            products = vals * gathered
            sums = np.add.reduceat(
                products, (ptrs[:-1] - lo).astype(np.int64)
            ) if hi > lo else np.zeros(stop - start)
            # Rows with zero entries would corrupt reduceat; dominance
            # construction guarantees >= 1 nnz (the diagonal).
            dst[start:stop] = sums

    def _dot(self, a, b) -> float:
        """Traced dot product (two sequential sweeps)."""
        return float(np.dot(a[:], b[:]))

    def _axpy(self, y, alpha: float, x) -> None:
        """y += alpha * x (traced load+store of y, load of x)."""
        vals = y[:] + alpha * x[:]
        y[:] = vals

    def _xpay(self, p, beta: float, r) -> None:
        """p = r + beta * p."""
        vals = r[:] + beta * p[:]
        p[:] = vals

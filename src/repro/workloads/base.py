"""Workload abstraction.

A workload couples Table 4 metadata (full-size footprint, reference
runtime, canonical inputs) with a scale-aware traced kernel run. The
``trace`` contract: run the algorithm at a problem size whose traced
footprint is approximately ``scale × footprint``, recording only the
algorithm phase (setup runs under ``tracer.pause()``, mirroring how the
paper's instrumentation skips initialization).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.model.evaluate import WorkloadMeta
from repro.trace.stream import AddressStream
from repro.trace.tracer import Tracer
from repro.units import GiB


@dataclass(frozen=True)
class WorkloadInfo:
    """Table 4 row for one workload.

    Attributes:
        name: workload name.
        suite: "NPB", "CORAL", or "Application".
        footprint_gb: full-size memory footprint per core, GB.
        t_ref_s: wall-clock seconds on the reference system.
        inputs: the published run parameters.
        description: one-line characterization.
    """

    name: str
    suite: str
    footprint_gb: float
    t_ref_s: float
    inputs: str
    description: str

    @property
    def footprint_bytes(self) -> int:
        """Full-size footprint in bytes."""
        return int(self.footprint_gb * GiB)

    def meta(self) -> WorkloadMeta:
        """The model-facing metadata record."""
        return WorkloadMeta(
            name=self.name,
            footprint_bytes=self.footprint_bytes,
            t_ref_s=self.t_ref_s,
        )


@dataclass
class TraceResult:
    """Output of a traced workload run.

    Attributes:
        stream: the recorded address stream.
        tracer: the tracer (carries the region map for NDM profiling).
        checks: workload-specific correctness facts (e.g. converged
            residual, BFS reachable count) so tests can verify the
            *algorithm* did real work, not just touch memory.
    """

    stream: AddressStream
    tracer: Tracer
    checks: dict


class Workload(ABC):
    """One benchmark: metadata + scale-aware traced kernel."""

    #: Table 4 metadata; concrete classes set this.
    info: WorkloadInfo

    @abstractmethod
    def trace(self, scale: float = 1.0 / 256, seed: int = 0) -> TraceResult:
        """Run the instrumented kernel at the given footprint scale.

        Args:
            scale: traced footprint ≈ scale × Table 4 footprint.
            seed: RNG seed for synthetic inputs (determinism).
        """

    def scaled_footprint_bytes(self, scale: float) -> int:
        """Target traced footprint at a scale."""
        if scale <= 0 or scale > 1:
            raise ConfigError(f"scale must be in (0, 1], got {scale}")
        return int(self.info.footprint_bytes * scale)

    @property
    def name(self) -> str:
        """Workload name (Table 4)."""
        return self.info.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.info.name!r})"


def rng_for(seed: int) -> np.random.Generator:
    """Shared deterministic RNG construction for workload inputs."""
    return np.random.default_rng(seed)

"""NPB SP: scalar pentadiagonal 3D ADI solver.

NPB SP factors the implicit operator into scalar pentadiagonal systems
along each dimension — like BT but with scalar (not 5×5 block)
couplings, making it lighter in flops per byte and even more
bandwidth-bound. We implement the real pentadiagonal Gaussian
elimination (two-ahead forward sweep, two-back substitution) over
synthetic diagonally-dominant lines, sweeping all three dimensions with
their characteristic strides.

Traced regions: the five diagonals ``sp.d{mm,m,0,p,pp}``, ``sp.rhs``
and ``sp.u``.
"""

from __future__ import annotations

import numpy as np

from repro.trace.tracer import Tracer
from repro.workloads.base import TraceResult, Workload, WorkloadInfo, rng_for

#: Bytes per grid cell: 5 diagonals + rhs + solution, 8 B doubles.
_BYTES_PER_CELL: int = 7 * 8


class SPWorkload(Workload):
    """NPB SP (class D analog).

    Table 4 note: the published table omits SP's row (it lists the
    figures' workload set inconsistently); footprint and runtime here
    are the class-D values from the NPB documentation scaled to the
    reference system, flagged as a documented deviation in DESIGN.md.
    """

    info = WorkloadInfo(
        name="SP",
        suite="NPB",
        footprint_gb=1.3,
        t_ref_s=30.0,
        inputs="Class: D",
        description="scalar pentadiagonal ADI solver",
    )

    def __init__(
        self,
        sweeps: tuple[int, ...] = (0, 1, 2),
        rhs_phase: bool = False,
    ) -> None:
        self.sweeps = sweeps
        #: Also trace a compute_rhs-style stencil pass before the solves
        #: (as the full NPB SP does each step). Off by default — the
        #: published calibration was produced without it.
        self.rhs_phase = rhs_phase

    def trace(self, scale: float = 1.0 / 256, seed: int = 0) -> TraceResult:
        target = self.scaled_footprint_bytes(scale)
        n = max(8, round((target / _BYTES_PER_CELL) ** (1.0 / 3.0)))
        rng = rng_for(seed)
        tracer = Tracer()

        with tracer.pause():
            shape = (n, n, n)
            dmm = tracer.array("sp.dmm", shape)
            dm = tracer.array("sp.dm", shape)
            d0 = tracer.array("sp.d0", shape)
            dp = tracer.array("sp.dp", shape)
            dpp = tracer.array("sp.dpp", shape)
            rhs = tracer.array("sp.rhs", shape)
            u = tracer.array("sp.u", shape)
            for arr in (dmm, dm, dp, dpp):
                arr.data[:] = rng.uniform(-0.2, 0.2, size=shape)
            d0.data[:] = rng.uniform(2.0, 3.0, size=shape)
            rhs.data[:] = rng.uniform(-1.0, 1.0, size=shape)
            u.data[:] = rng.uniform(-1.0, 1.0, size=shape)
            rhs_original = rhs.data.copy()

        if self.rhs_phase:
            self._compute_rhs(u, rhs, n)
            with tracer.pause():
                rhs_original = rhs.data.copy()

        max_residual = 0.0
        for dim in self.sweeps:
            residual = self._sweep_dimension(
                dmm, dm, d0, dp, dpp, rhs, u, n, dim, rhs_original
            )
            max_residual = max(max_residual, residual)
            with tracer.pause():
                rhs.data[:] = u.data
                rhs_original = rhs.data.copy()

        return TraceResult(
            stream=tracer.stream,
            tracer=tracer,
            checks={
                "grid": n,
                "cells": n**3,
                "max_residual": max_residual,
                "solved": max_residual < 1e-8,
            },
        )

    def _compute_rhs(self, u, rhs, n) -> None:
        """7-point stencil of the state into rhs (traced, k-planes)."""
        for k in range(n):
            plane = u[:, :, k]
            centre = plane * (-6.0)
            if k > 0:
                centre = centre + u[:, :, k - 1]
            if k + 1 < n:
                centre = centre + u[:, :, k + 1]
            centre[1:, :] += plane[:-1, :]
            centre[:-1, :] += plane[1:, :]
            centre[:, 1:] += plane[:, :-1]
            centre[:, :-1] += plane[:, 1:]
            rhs[:, :, k] = centre

    def _sweep_dimension(self, dmm, dm, d0, dp, dpp, rhs, u, n, dim, rhs_orig):
        """Pentadiagonal solve of every line along ``dim``.

        Lines are batched per fixed-j so trace overhead stays low while
        the per-line access order is preserved.
        """
        max_residual = 0.0
        for j in range(n):
            for k in range(n):
                idx = self._line_index(dim, j, k, n)
                residual = self._penta_line(
                    dmm, dm, d0, dp, dpp, rhs, u, idx, rhs_orig
                )
                max_residual = max(max_residual, residual)
        return max_residual

    @staticmethod
    def _line_index(dim, j, k, n):
        line = np.arange(n)
        if dim == 0:
            return (np.full(n, j), np.full(n, k), line)
        if dim == 1:
            return (np.full(n, j), line, np.full(n, k))
        return (line, np.full(n, j), np.full(n, k))

    def _penta_line(self, dmm, dm, d0, dp, dpp, rhs, u, idx, rhs_orig) -> float:
        """Gaussian elimination on one pentadiagonal line (traced)."""
        i0, i1, i2 = idx
        n = len(i0)
        # Traced line loads, in sweep order.
        a2 = dmm[i0, i1, i2]
        a1 = dm[i0, i1, i2]
        b = d0[i0, i1, i2].copy()
        c1 = dp[i0, i1, i2].copy()
        c2 = dpp[i0, i1, i2].copy()
        d = rhs[i0, i1, i2].copy()

        # Forward elimination (two sub-diagonals).
        for i in range(1, n):
            m1 = a1[i] / b[i - 1]
            b[i] -= m1 * c1[i - 1]
            c1[i] -= m1 * c2[i - 1]
            d[i] -= m1 * d[i - 1]
            if i + 1 < n:
                m2 = a2[i + 1] / b[i - 1]
                a1[i + 1] -= m2 * c1[i - 1]
                b[i + 1] -= m2 * c2[i - 1]
                d[i + 1] -= m2 * d[i - 1]
        rhs[i0, i1, i2] = d  # traced store of the eliminated rhs

        # Back substitution.
        x = np.empty(n)
        x[n - 1] = d[n - 1] / b[n - 1]
        if n >= 2:
            x[n - 2] = (d[n - 2] - c1[n - 2] * x[n - 1]) / b[n - 2]
        for i in range(n - 3, -1, -1):
            x[i] = (d[i] - c1[i] * x[i + 1] - c2[i] * x[i + 2]) / b[i]
        u[i0, i1, i2] = x  # traced store of the solution

        # Untraced verification: pentadiagonal operator applied to x.
        orig_a2 = dmm.data[i0, i1, i2]
        orig_a1 = dm.data[i0, i1, i2]
        orig_b = d0.data[i0, i1, i2]
        orig_c1 = dp.data[i0, i1, i2]
        orig_c2 = dpp.data[i0, i1, i2]
        recon = orig_b * x
        recon[1:] += orig_a1[1:] * x[:-1]
        recon[2:] += orig_a2[2:] * x[:-2]
        recon[:-1] += orig_c1[:-1] * x[1:]
        recon[:-2] += orig_c2[:-2] * x[2:]
        return float(np.max(np.abs(recon - rhs_orig[i0, i1, i2])))

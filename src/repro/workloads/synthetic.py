"""Synthetic workload adapter.

Wraps any :mod:`repro.trace.synthetic` generator (or a user callable)
as a full :class:`~repro.workloads.base.Workload`, so the experiment
runner, figures, and the oracle accept it exactly like the benchmark
suite. Used for controlled studies (e.g. "how does the NMM sweep look
for pure pointer chasing?") and by the test suite.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.trace.stream import AddressStream
from repro.trace.tracer import Tracer
from repro.workloads.base import TraceResult, Workload, WorkloadInfo

#: Signature of a stream generator usable by :class:`SyntheticWorkload`:
#: (n_events, footprint_bytes, seed) -> AddressStream.
StreamFactory = Callable[[int, int, int], AddressStream]


class SyntheticWorkload(Workload):
    """A Workload backed by a synthetic stream generator.

    Args:
        name: workload label.
        factory: stream generator ``(n_events, footprint_bytes, seed)``.
        footprint_gb: pretend full-size footprint (drives static power).
        t_ref_s: pretend reference runtime (drives Eq. 1 and energy).
        events_per_byte: traced events per footprint byte at any scale
            (controls trace length; 0.25 ≈ one 8 B access per 32 B).
        description: one-line characterization.
    """

    def __init__(
        self,
        name: str,
        factory: StreamFactory,
        *,
        footprint_gb: float = 2.0,
        t_ref_s: float = 60.0,
        events_per_byte: float = 0.25,
        description: str = "synthetic stream",
    ) -> None:
        if events_per_byte <= 0:
            raise ConfigError("events_per_byte must be positive")
        self.info = WorkloadInfo(
            name=name,
            suite="Synthetic",
            footprint_gb=footprint_gb,
            t_ref_s=t_ref_s,
            inputs=f"{events_per_byte:g} events/B",
            description=description,
        )
        self._factory = factory
        self._events_per_byte = events_per_byte

    def trace(self, scale: float = 1.0 / 256, seed: int = 0) -> TraceResult:
        footprint = self.scaled_footprint_bytes(scale)
        n_events = max(1024, int(footprint * self._events_per_byte))
        stream = self._factory(n_events, footprint, seed)
        # Register the stream's span as one region so NDM profiling and
        # feasibility accounting work on synthetic workloads too.
        tracer = Tracer()
        stats = stream.stats()
        if stats.events:
            span = max(64, stats.max_address - stats.min_address + 64)
            # The tracer's allocator is bypassed: the stream dictated
            # its own addresses; record the region directly.
            from repro.trace.tracer import Region

            tracer.regions.append(
                Region(name=f"{self.info.name}.data",
                       base=int(stats.min_address), size=int(span))
            )
        tracer.stream = stream
        return TraceResult(
            stream=stream,
            tracer=tracer,
            checks={"events": len(stream), "synthetic": True},
        )


def uniform_random_workload(
    footprint_gb: float = 2.0, t_ref_s: float = 60.0
) -> SyntheticWorkload:
    """Uniform random accesses — the pure capacity-stress workload."""
    from repro.trace.synthetic import random_stream

    return SyntheticWorkload(
        "RandomUniform",
        lambda n, fp, seed: random_stream(
            n, footprint_bytes=fp, store_fraction=0.3, seed=seed
        ),
        footprint_gb=footprint_gb,
        t_ref_s=t_ref_s,
        description="uniform random capacity stress",
    )


def pointer_chase_workload(
    footprint_gb: float = 2.0, t_ref_s: float = 60.0
) -> SyntheticWorkload:
    """Dependent pointer chasing — the pure latency-stress workload."""
    from repro.trace.synthetic import pointer_chase_stream

    return SyntheticWorkload(
        "PointerChase",
        lambda n, fp, seed: pointer_chase_stream(
            min(n, 500_000), footprint_bytes=fp, seed=seed
        ),
        footprint_gb=footprint_gb,
        t_ref_s=t_ref_s,
        events_per_byte=0.05,
        description="serial pointer chase latency stress",
    )


def streaming_workload(
    footprint_gb: float = 2.0, t_ref_s: float = 60.0
) -> SyntheticWorkload:
    """Sequential streaming — the pure bandwidth-style workload."""
    from repro.trace.synthetic import sequential_stream

    return SyntheticWorkload(
        "Streaming",
        lambda n, fp, seed: sequential_stream(
            n, store_fraction=0.25, seed=seed
        ),
        footprint_gb=footprint_gb,
        t_ref_s=t_ref_s,
        description="unit-stride streaming",
    )

"""CORAL AMG2013: algebraic multigrid V-cycle.

AMG2013 is a parallel algebraic multigrid solver for unstructured-grid
linear systems. Its memory behaviour is a stack of CSR sparse matrices
of geometrically shrinking size, traversed by smoothing (sparse
matvec), restriction, and prolongation in a V-cycle.

We implement a real AMG: aggregation-based coarsening builds the
operator hierarchy (Galerkin triple products, computed untraced as
setup), and the traced solve phase runs damped-Jacobi-smoothed V-cycles
that verifiably reduce the residual of a 7-point-like SPD system.

Traced regions per level ``i``: ``amg.L{i}.rowptr/colidx/values`` and
the level vectors ``amg.L{i}.x/b/r``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.tracer import Tracer
from repro.trace.traced_array import TracedArray
from repro.workloads.base import TraceResult, Workload, WorkloadInfo, rng_for

#: Aggregate size of the coarsening (each coarse point absorbs ~4 fine).
_AGGREGATE: int = 4
#: Damped-Jacobi weight.
_JACOBI_OMEGA: float = 0.7
#: Stop coarsening below this many rows.
_COARSEST: int = 64
#: Average nonzeros per fine row (unstructured-mesh-like).
_NNZ_PER_ROW: int = 9
#: Traced bytes per fine row, measured: fine CSR (values 8 B + colidx
#: 4 B per nnz, ~11 realized nnz/row) + vectors, times ~4/3 for the
#: coarse-level hierarchy.
_BYTES_PER_ROW: int = 340


@dataclass
class _Level:
    """One level of the AMG hierarchy (traced arrays + aggregate map)."""

    rowptr: TracedArray
    colidx: TracedArray
    values: TracedArray
    x: TracedArray
    b: TracedArray
    diag: np.ndarray  # untraced cached diagonal for Jacobi
    aggregate_of: np.ndarray | None  # fine index -> coarse aggregate


def _stencil_csr(n: int, rng: np.random.Generator):
    """SPD matrix: ring 7-point-like stencil + random long-range links."""
    offsets = np.array([-3, -2, -1, 1, 2, 3], dtype=np.int64)
    rows = np.repeat(np.arange(n, dtype=np.int64), len(offsets))
    cols = (rows + np.tile(offsets, n)) % n
    vals = np.full(len(rows), -0.5)
    # Random long-range couplings make the graph unstructured.
    extra = max(1, (_NNZ_PER_ROW - 7) * n)
    er = rng.integers(0, n, size=extra, dtype=np.int64)
    ec = rng.integers(0, n, size=extra, dtype=np.int64)
    keep = er != ec
    er, ec = er[keep], ec[keep]
    ev = np.full(len(er), -0.25)
    rows = np.concatenate([rows, er, ec])
    cols = np.concatenate([cols, ec, er])
    vals = np.concatenate([vals, ev, ev])
    # Diagonal = row sum of |off-diagonals| + 1 (strict dominance -> SPD).
    row_abs = np.zeros(n)
    np.add.at(row_abs, rows, np.abs(vals))
    rows = np.concatenate([rows, np.arange(n, dtype=np.int64)])
    cols = np.concatenate([cols, np.arange(n, dtype=np.int64)])
    vals = np.concatenate([vals, row_abs + 1.0])
    return _to_csr(n, rows, cols, vals)


def _to_csr(n, rows, cols, vals):
    """COO -> CSR with duplicate summation."""
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    # Sum duplicates.
    key_change = np.empty(len(rows), dtype=bool)
    key_change[0] = True
    key_change[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
    idx = np.flatnonzero(key_change)
    rows_u, cols_u = rows[idx], cols[idx]
    sums = np.add.reduceat(vals, idx)
    rowptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(rowptr, rows_u + 1, 1)
    rowptr = np.cumsum(rowptr)
    return rowptr, cols_u, sums


def _galerkin_coarse(rowptr, colidx, values, n, aggregate_of, n_coarse):
    """Coarse operator A_c = P^T A P for piecewise-constant P."""
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(rowptr))
    coarse_rows = aggregate_of[rows]
    coarse_cols = aggregate_of[colidx]
    return _to_csr(n_coarse, coarse_rows, coarse_cols, values.copy())


class AMGWorkload(Workload):
    """CORAL AMG2013 analog."""

    info = WorkloadInfo(
        name="AMG2013",
        suite="CORAL",
        footprint_gb=3.0,
        t_ref_s=156.3,
        inputs="-r 72 72 72 -P 1 1 1 -pooldist 1",
        description="algebraic multigrid V-cycle solver",
    )

    def __init__(self, cycles: int = 1, row_batch: int = 512) -> None:
        self.cycles = cycles
        self.row_batch = row_batch

    def trace(self, scale: float = 1.0 / 256, seed: int = 0) -> TraceResult:
        target = self.scaled_footprint_bytes(scale)
        n = max(512, target // _BYTES_PER_ROW)
        rng = rng_for(seed)
        tracer = Tracer()

        with tracer.pause():
            levels = self._setup_hierarchy(tracer, n, rng)
            b_fine = rng.uniform(-1.0, 1.0, size=n)
            levels[0].b.data[:] = b_fine
            levels[0].x.data[:] = 0.0
            res0 = float(np.linalg.norm(b_fine))

        for _ in range(self.cycles):
            self._v_cycle(levels, 0)

        with tracer.pause():
            fine = levels[0]
            res1 = float(
                np.linalg.norm(
                    fine.b.data
                    - self._matvec_untraced(fine, fine.x.data)
                )
            )

        return TraceResult(
            stream=tracer.stream,
            tracer=tracer,
            checks={
                "rows": n,
                "levels": len(levels),
                "residual_before": res0,
                "residual_after": res1,
                "converging": res1 < res0,
            },
        )

    # -- setup (untraced) ---------------------------------------------------

    def _setup_hierarchy(self, tracer: Tracer, n: int, rng) -> list[_Level]:
        rowptr_np, colidx_np, values_np = _stencil_csr(n, rng)
        levels: list[_Level] = []
        depth = 0
        while True:
            level = self._make_level(tracer, depth, n, rowptr_np, colidx_np, values_np)
            levels.append(level)
            if n <= _COARSEST:
                break
            n_coarse = (n + _AGGREGATE - 1) // _AGGREGATE
            aggregate_of = (
                np.arange(n, dtype=np.int64) // _AGGREGATE
            )  # contiguous aggregation
            level.aggregate_of = aggregate_of
            rowptr_np, colidx_np, values_np = _galerkin_coarse(
                rowptr_np, colidx_np, values_np, n, aggregate_of, n_coarse
            )
            n = n_coarse
            depth += 1
        return levels

    def _make_level(self, tracer, depth, n, rowptr_np, colidx_np, values_np):
        prefix = f"amg.L{depth}"
        rowptr = tracer.array(f"{prefix}.rowptr", rowptr_np.shape, dtype=np.int64)
        rowptr.data[:] = rowptr_np
        colidx = tracer.array(f"{prefix}.colidx", colidx_np.shape, dtype=np.int32)
        colidx.data[:] = colidx_np
        values = tracer.array(f"{prefix}.values", values_np.shape)
        values.data[:] = values_np
        diag = np.zeros(n)
        rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(rowptr_np))
        diag_mask = rows == colidx_np
        diag[rows[diag_mask]] = values_np[diag_mask]
        return _Level(
            rowptr=rowptr,
            colidx=colidx,
            values=values,
            x=tracer.array(f"{prefix}.x", (n,)),
            b=tracer.array(f"{prefix}.b", (n,)),
            diag=diag,
            aggregate_of=None,
        )

    # -- traced solve ---------------------------------------------------------

    def _v_cycle(self, levels: list[_Level], depth: int) -> None:
        level = levels[depth]
        if depth == len(levels) - 1:
            # Coarsest level: relax hard (cheap — few rows).
            for _ in range(8):
                self._jacobi(level)
            return
        self._jacobi(level)  # pre-smooth
        residual = self._residual(level)
        # Restrict: coarse b = P^T r (aggregate sums — traced scatter).
        coarse = levels[depth + 1]
        self._restrict(level, coarse, residual)
        coarse.x[:] = 0.0
        self._v_cycle(levels, depth + 1)
        # Prolong: fine x += P coarse.x (aggregate broadcast).
        self._prolong(level, coarse)
        self._jacobi(level)  # post-smooth

    def _jacobi(self, level: _Level) -> None:
        """x += omega * D^-1 (b - A x), traced."""
        ax = self._matvec_traced(level)
        b = level.b[:]
        x_old = level.x[:]
        level.x[:] = x_old + _JACOBI_OMEGA * (b - ax) / level.diag

    def _residual(self, level: _Level) -> np.ndarray:
        """r = b - A x (traced matvec + vector ops)."""
        ax = self._matvec_traced(level)
        return level.b[:] - ax

    def _restrict(self, level: _Level, coarse: _Level, residual: np.ndarray) -> None:
        n_coarse = coarse.x.size
        sums = np.zeros(n_coarse)
        np.add.at(sums, level.aggregate_of, residual)
        coarse.b[:] = sums

    def _prolong(self, level: _Level, coarse: _Level) -> None:
        correction = coarse.x[:][level.aggregate_of]
        level.x.accumulate(slice(None), correction)

    def _matvec_traced(self, level: _Level) -> np.ndarray:
        """CSR matvec with batched traced gathers (like CG's)."""
        n = level.x.size
        out = np.empty(n)
        batch = self.row_batch
        for start in range(0, n, batch):
            stop = min(start + batch, n)
            ptrs = level.rowptr[start : stop + 1]
            lo, hi = int(ptrs[0]), int(ptrs[-1])
            cols = level.colidx[lo:hi]
            vals = level.values[lo:hi]
            gathered = level.x[cols]
            out[start:stop] = np.add.reduceat(
                vals * gathered, (ptrs[:-1] - lo).astype(np.int64)
            )
        return out

    def _matvec_untraced(self, level: _Level, x: np.ndarray) -> np.ndarray:
        rowptr = level.rowptr.data
        out = np.add.reduceat(
            level.values.data * x[level.colidx.data], rowptr[:-1]
        )
        return out

"""Velvet: de novo short-read assembly via de Bruijn graphs.

Velvet (Zerbino & Birney 2008) assembles genomes by hashing every
k-mer of every read into a de Bruijn graph node table, recording
(k+1)-mer adjacencies, then walking unambiguous paths to emit contigs.
Memory-wise it is a genomics-flavoured hash workload: sequential read
scans feeding random k-mer table probes/updates, followed by
pointer-chase-like graph walks.

We implement the real pipeline on synthetic reads sampled (with errors)
from a random reference genome: 2-bit-packed k-mer rolling extraction,
open-addressing k-mer table with occurrence counts and in/out edge
bits, and a traced simplification walk that reconstructs unambiguous
contigs. Verified by checking that walking recovers contigs whose
k-mers all exist in the reference.

Traced regions: ``velvet.reads`` (packed bases), ``velvet.kmer_keys``,
``velvet.kmer_meta`` (counts + adjacency), ``velvet.contigs``.
"""

from __future__ import annotations

import numpy as np

from repro.trace.tracer import Tracer
from repro.workloads.base import TraceResult, Workload, WorkloadInfo, rng_for

#: k-mer length (Velvet's default hash length is 21; we keep it odd).
K: int = 21
#: Read length in bases.
READ_LEN: int = 64
#: Reference-genome coverage by reads (kept low so the traced event
#: count stays proportional to the footprint; the table, not the read
#: set, dominates Velvet's memory behaviour).
COVERAGE: float = 2.0
#: Bytes per k-mer table slot: key (8) + metadata (8).
_BYTES_PER_SLOT: int = 16
#: Table slots per reference base (load factor headroom).
_SLOTS_PER_BASE: float = 1.0 / 0.4
#: Fraction of the Table 4 footprint that is assembly-hot (the k-mer
#: node table + packed reads). Velvet's sequence/roadmap buffers —
#: written once during read-in — account for most of the 4 GB; the
#: resident de Bruijn node table of a default run is several hundred
#: MB. Estimate (the paper gives no breakdown) — documented in
#: DESIGN.md §5.
HOT_FRACTION: float = 640.0 / 4096.0

_HASH_MULT = np.uint64(11400714819323198485)
_EMPTY = np.int64(-1)


def _pack_kmers(bases: np.ndarray, k: int) -> np.ndarray:
    """All rolling k-mers of a 2-bit base sequence, packed to int64.

    Accepts a 1-D sequence or a 2-D batch of reads (packs each row).
    """
    n = bases.shape[-1] - k + 1
    if n <= 0:
        return np.empty(bases.shape[:-1] + (0,), dtype=np.int64)
    packed = np.zeros(bases.shape[:-1] + (n,), dtype=np.int64)
    for i in range(k):
        packed = (packed << 2) | bases[..., i : i + n].astype(np.int64)
    return packed


def _hash_slots(keys: np.ndarray, table_bits: int) -> np.ndarray:
    h = keys.astype(np.uint64) * _HASH_MULT
    return (h >> np.uint64(64 - table_bits)).astype(np.int64)


class VelvetWorkload(Workload):
    """Velvet de novo assembler analog."""

    info = WorkloadInfo(
        name="Velvet",
        suite="Application",
        footprint_gb=4.0,
        t_ref_s=116.5,
        inputs="Default",
        description="de Bruijn graph short-read assembly",
    )

    def __init__(self, read_batch: int = 512, error_rate: float = 0.0) -> None:
        self.read_batch = read_batch
        #: Per-base sequencing-error probability. Errors create novel
        #: k-mers (up to k per error), inflating the node table exactly
        #: as real read errors inflate Velvet's graph. Default 0 — the
        #: published calibration used error-free reads.
        if not 0.0 <= error_rate < 1.0:
            from repro.errors import ConfigError

            raise ConfigError("error_rate must be in [0, 1)")
        self.error_rate = error_rate

    def trace(self, scale: float = 1.0 / 256, seed: int = 0) -> TraceResult:
        target = int(self.scaled_footprint_bytes(scale) * HOT_FRACTION)
        # The hot footprint is the k-mer table + packed reads.
        genome_len = max(
            4096,
            int(target / (_SLOTS_PER_BASE * _BYTES_PER_SLOT + COVERAGE)),
        )
        rng = rng_for(seed)
        tracer = Tracer()

        with tracer.pause():
            genome = rng.integers(0, 4, size=genome_len, dtype=np.int8)
            n_reads = int(genome_len * COVERAGE / READ_LEN)
            starts = rng.integers(0, genome_len - READ_LEN, size=n_reads)
            reads_np = np.stack(
                [genome[s : s + READ_LEN] for s in starts]
            ).astype(np.int8)
            if self.error_rate > 0.0:
                # Substitution errors: flip bases to a different letter.
                mask = rng.random(reads_np.shape) < self.error_rate
                shifts = rng.integers(1, 4, size=reads_np.shape)
                reads_np = np.where(
                    mask, (reads_np + shifts) % 4, reads_np
                ).astype(np.int8)
            reads = tracer.array("velvet.reads", reads_np.shape, dtype=np.int8)
            reads.data[:] = reads_np
            table_bits = max(
                12, int(np.ceil(np.log2(genome_len * _SLOTS_PER_BASE)))
            )
            n_slots = 1 << table_bits
            kmer_keys = tracer.array("velvet.kmer_keys", (n_slots,), dtype=np.int64)
            kmer_keys.data[:] = _EMPTY
            # Metadata word: count (low 32) | out-edge bits (bits 32-35)
            # | ambiguity flag (bit 36).
            kmer_meta = tracer.array("velvet.kmer_meta", (n_slots,), dtype=np.int64)
            contigs = tracer.array(
                "velvet.contigs", (genome_len + READ_LEN,), dtype=np.int64
            )

        distinct = self._build_graph(
            reads, kmer_keys, kmer_meta, n_reads, table_bits
        )
        contig_stats = self._walk_contigs(
            kmer_keys, kmer_meta, contigs, table_bits
        )

        with tracer.pause():
            # Ground truth: distinct k-mers of all reads.
            all_kmers = set(np.unique(_pack_kmers(reads_np, K)).tolist())
            genome_kmers = set(_pack_kmers(genome.astype(np.int8), K).tolist())

        return TraceResult(
            stream=tracer.stream,
            tracer=tracer,
            checks={
                "genome_len": genome_len,
                "reads": n_reads,
                "distinct_kmers": distinct,
                "expected_distinct": len(all_kmers),
                "kmers_correct": distinct == len(all_kmers),
                "contig_kmers": contig_stats["kmers_walked"],
                "contigs": contig_stats["contigs"],
                "genome_kmer_count": len(genome_kmers),
            },
        )

    # -- traced kernels -------------------------------------------------------

    def _build_graph(self, reads, kmer_keys, kmer_meta, n_reads, table_bits) -> int:
        """Hash every read's k-mers into the node table (traced).

        Per read batch: sequential base loads, rolling k-mer packing,
        then vectorized linear-probe insert rounds recording counts and
        successor-edge bits (the de Bruijn adjacency).
        """
        mask = (1 << table_bits) - 1
        distinct = 0
        batch = self.read_batch
        for start in range(0, n_reads, batch):
            stop = min(start + batch, n_reads)
            block = reads[start:stop, :]  # traced sequential loads
            kmers2d = _pack_kmers(block, K)
            next2d = np.full(kmers2d.shape, -1, dtype=np.int64)
            next2d[:, :-1] = block[:, K:].astype(np.int64)
            pending_keys = kmers2d.ravel()
            pending_next = next2d.ravel()
            pending_slots = _hash_slots(pending_keys, table_bits)
            while len(pending_keys):
                resident = kmer_keys[pending_slots]  # traced gather
                match = resident == pending_keys
                empty = resident == _EMPTY
                claim_positions = np.flatnonzero(empty)
                won = np.zeros(len(pending_keys), dtype=bool)
                if len(claim_positions):
                    _, first = np.unique(
                        pending_slots[claim_positions], return_index=True
                    )
                    winners = claim_positions[first]
                    kmer_keys[pending_slots[winners]] = pending_keys[winners]
                    distinct += len(winners)
                    won[winners] = True
                settle = match | won
                if settle.any():
                    slots = pending_slots[settle]
                    meta = kmer_meta[slots]  # traced read-modify-write
                    meta = meta + 1  # bump count
                    nb = pending_next[settle]
                    has_next = nb >= 0
                    edge_bits = np.where(
                        has_next, np.int64(1) << (np.int64(32) + nb), 0
                    )
                    new_edge = edge_bits & ~meta
                    meta = meta | edge_bits
                    # Ambiguity: more than one distinct out-edge bit set.
                    out = (meta >> np.int64(32)) & np.int64(0xF)
                    multi = (out & (out - 1)) != 0
                    meta = np.where(
                        multi, meta | (np.int64(1) << np.int64(36)), meta
                    )
                    del new_edge
                    kmer_meta[slots] = meta
                # Advance only entries that saw an occupied slot holding
                # a *different* key. Entries that saw empty but lost the
                # claim race stay put: in scalar order they would probe
                # the same slot after the winner's store (and match it
                # if the winner inserted their key).
                keep = ~settle
                advance = (~empty & ~match)[keep].astype(np.int64)
                pending_keys = pending_keys[keep]
                pending_next = pending_next[keep]
                pending_slots = (pending_slots[keep] + advance) & mask
        return distinct

    def _walk_contigs(self, kmer_keys, kmer_meta, contigs, table_bits) -> dict:
        """Simplification: follow unambiguous out-edges to emit contigs.

        The walk is the pointer-chase phase: each step hashes the
        successor k-mer and probes the table for it (traced random
        loads), writing the walked k-mers out sequentially (traced
        stores into ``contigs``).
        """
        mask = (1 << table_bits) - 1
        kmer_mask = (np.int64(1) << np.int64(2 * K)) - np.int64(1)
        with_meta = kmer_meta.data  # untraced scan to pick start nodes
        occupied = np.flatnonzero(kmer_keys.data != _EMPTY)
        # Start from unambiguous nodes, bounded sample (the walk issues
        # scalar traced probes, so it is deliberately capped; real
        # Velvet's simplification is likewise a small fraction of the
        # hashing phase's traffic).
        sample = occupied[:: max(1, len(occupied) // 256)]
        written = 0
        contigs_emitted = 0
        capacity = contigs.size
        for slot in sample.tolist():
            meta = int(with_meta[slot])
            if meta & (1 << 36):  # ambiguous
                continue
            kmer = int(kmer_keys[slot])  # traced load
            steps = 0
            while written < capacity and steps < 128:
                contigs[written] = kmer  # traced sequential store
                written += 1
                steps += 1
                meta = int(kmer_meta[np.int64(slot)])  # traced load
                out = (meta >> 32) & 0xF
                if meta & (1 << 36) or out == 0:
                    break
                base = int(out).bit_length() - 1
                kmer = int(((np.int64(kmer) << np.int64(2)) | np.int64(base)) & kmer_mask)
                # Probe for the successor (traced linear probing).
                slot = int(_hash_slots(np.array([kmer], dtype=np.int64), table_bits)[0])
                probes = 0
                while probes <= mask:
                    resident = int(kmer_keys[slot])
                    if resident == kmer or resident == _EMPTY:
                        break
                    slot = (slot + 1) & mask
                    probes += 1
                if resident != kmer:
                    break
            contigs_emitted += 1
            if written >= capacity:
                break
        return {"kmers_walked": written, "contigs": contigs_emitted}

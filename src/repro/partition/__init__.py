"""NDM address-space partitioning (the paper's oracle methodology).

"the data placement is determined by identifying, in the application, a
contiguous range of addresses that accounts for the bulk of the memory
references. We have identified address ranges referenced by different
basic blocks, and then merged ranges close to each other. ... we placed
an address range to NVM at a time, and the rest to DRAM."

- :mod:`repro.partition.ranges` — address-range algebra.
- :mod:`repro.partition.profiler` — hot-range identification from a
  traced run (regions play the role of the paper's per-basic-block
  ranges) with close-range merging.
- :mod:`repro.partition.oracle` — enumerates single-range-to-NVM
  placements, models each, and returns them ranked (the oracle).
"""

from repro.partition.ranges import AddressRange, merge_close_ranges, total_span
from repro.partition.profiler import RangeProfile, profile_ranges
from repro.partition.oracle import PlacementResult, enumerate_placements
from repro.partition.dynamic import (
    DynamicPlan,
    PhasePlacement,
    plan_dynamic_partition,
)

__all__ = [
    "AddressRange",
    "merge_close_ranges",
    "total_span",
    "RangeProfile",
    "profile_ranges",
    "PlacementResult",
    "enumerate_placements",
    "DynamicPlan",
    "PhasePlacement",
    "plan_dynamic_partition",
]

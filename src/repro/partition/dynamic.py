"""Phase-aware dynamic partitioning — the paper's stated future work.

"Further investigation should explore dynamic partitioning, that may
change between computation phases, and take access patterns into
account." (Section VI.)

This module implements that investigation over the same substrate:

1. the post-L3 memory request stream is split into equal *phases*;
2. each phase is profiled per candidate range (loads, stores, bits);
3. per phase, a greedy knapsack places the ranges with the highest
   traffic density (accesses per byte) into the DRAM partition until
   its capacity is exhausted — "frequently accessed and updated objects
   are stored in DRAM, while the rest are stored in NVM";
4. ranges that switch device between phases pay a migration cost (a
   full read from the old device + write to the new one);
5. the dynamic plan's memory-subsystem time/energy is compared against
   the best *static* plan chosen by the same greedy rule over the whole
   stream.

The evaluation is analytic over the phase profiles (the routing of a
terminal partition does not change hit rates upstream, so no
re-simulation is needed — the same property the NDM oracle exploits).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.partition.profiler import RangeProfile, _count_range_traffic
from repro.partition.ranges import AddressRange
from repro.tech.params import MemoryTechnology
from repro.trace.filters import split_windows
from repro.trace.stream import AddressStream


@dataclass(frozen=True)
class PhasePlacement:
    """Placement decision for one phase.

    Attributes:
        phase: phase index.
        dram_ranges: ranges resident in DRAM during the phase.
        nvm_ranges: ranges resident in NVM.
        time_ns: modeled memory access time of the phase's traffic.
        energy_pj: modeled dynamic energy of the phase's traffic.
        migrated_bytes: bytes moved to realize this placement from the
            previous phase's.
    """

    phase: int
    dram_ranges: tuple[AddressRange, ...]
    nvm_ranges: tuple[AddressRange, ...]
    time_ns: float
    energy_pj: float
    migrated_bytes: int


@dataclass
class DynamicPlan:
    """Result of a dynamic-partitioning analysis.

    Attributes:
        phases: per-phase placements (with migration accounting).
        static_time_ns / static_energy_pj: the best static placement's
            totals over the same stream, for comparison.
        dynamic_time_ns / dynamic_energy_pj: the dynamic plan's totals,
            including migration costs.
    """

    phases: list[PhasePlacement] = field(default_factory=list)
    static_time_ns: float = 0.0
    static_energy_pj: float = 0.0
    dynamic_time_ns: float = 0.0
    dynamic_energy_pj: float = 0.0

    @property
    def time_gain(self) -> float:
        """static/dynamic time ratio (>1 = dynamic wins)."""
        return (
            self.static_time_ns / self.dynamic_time_ns
            if self.dynamic_time_ns
            else 1.0
        )

    @property
    def energy_gain(self) -> float:
        """static/dynamic energy ratio (>1 = dynamic wins)."""
        return (
            self.static_energy_pj / self.dynamic_energy_pj
            if self.dynamic_energy_pj
            else 1.0
        )


def _traffic_cost(
    profile: RangeProfile, tech: MemoryTechnology
) -> tuple[float, float]:
    """(time_ns, energy_pj) of serving a profile from one technology."""
    time_ns = (
        profile.loads * tech.read_delay_ns + profile.stores * tech.write_delay_ns
    )
    energy_pj = (
        profile.load_bytes * 8 * tech.read_energy_pj_per_bit
        + profile.store_bytes * 8 * tech.write_energy_pj_per_bit
    )
    return time_ns, energy_pj


def _greedy_placement(
    profiles: list[RangeProfile], dram_capacity: int
) -> tuple[tuple[AddressRange, ...], tuple[AddressRange, ...]]:
    """Greedy knapsack: hottest-per-byte ranges into DRAM first."""
    order = sorted(
        profiles,
        key=lambda p: p.references / max(1, p.range.size),
        reverse=True,
    )
    dram: list[AddressRange] = []
    nvm: list[AddressRange] = []
    used = 0
    for profile in order:
        if used + profile.range.size <= dram_capacity:
            dram.append(profile.range)
            used += profile.range.size
        else:
            nvm.append(profile.range)
    return tuple(dram), tuple(nvm)


def _placement_cost(
    profiles: list[RangeProfile],
    dram_ranges: tuple[AddressRange, ...],
    dram_tech: MemoryTechnology,
    nvm_tech: MemoryTechnology,
) -> tuple[float, float]:
    dram_set = set(dram_ranges)
    time_ns = energy_pj = 0.0
    for profile in profiles:
        tech = dram_tech if profile.range in dram_set else nvm_tech
        t, e = _traffic_cost(profile, tech)
        time_ns += t
        energy_pj += e
    return time_ns, energy_pj


def _migration_cost(
    moved: list[AddressRange],
    src: MemoryTechnology,
    dst: MemoryTechnology,
    line_size: int,
) -> tuple[float, float, int]:
    """Cost of copying ranges: read every line from src, write to dst."""
    time_ns = energy_pj = 0.0
    total_bytes = 0
    for r in moved:
        lines = (r.size + line_size - 1) // line_size
        total_bytes += r.size
        time_ns += lines * (src.read_delay_ns + dst.write_delay_ns)
        energy_pj += r.size * 8 * (
            src.read_energy_pj_per_bit + dst.write_energy_pj_per_bit
        )
    return time_ns, energy_pj, total_bytes


def plan_dynamic_partition(
    memory_stream: AddressStream,
    candidates: list[AddressRange],
    *,
    dram_tech: MemoryTechnology,
    nvm_tech: MemoryTechnology,
    dram_capacity: int,
    n_phases: int = 4,
    line_size: int = 64,
) -> DynamicPlan:
    """Build and evaluate a phase-aware placement plan.

    Args:
        memory_stream: requests reaching main memory (post-L3 stream).
        candidates: placement-unit ranges (e.g. from
            :func:`repro.partition.profiler.profile_ranges`).
        dram_tech / nvm_tech: the partition technologies.
        dram_capacity: DRAM partition capacity in bytes (same address
            scale as the stream).
        n_phases: number of equal phases.
        line_size: migration copy granularity.

    Returns:
        The :class:`DynamicPlan` with the static baseline included.
    """
    if not candidates:
        raise ConfigError("dynamic partitioning needs candidate ranges")
    if n_phases <= 0:
        raise ConfigError("n_phases must be positive")

    # Static baseline: greedy over the whole stream.
    whole_profiles = _count_range_traffic(memory_stream, candidates)
    static_dram, _ = _greedy_placement(whole_profiles, dram_capacity)
    static_time, static_energy = _placement_cost(
        whole_profiles, static_dram, dram_tech, nvm_tech
    )

    plan = DynamicPlan(
        static_time_ns=static_time, static_energy_pj=static_energy
    )

    previous_dram: set[AddressRange] = set(static_dram)
    total_time = total_energy = 0.0
    for phase, window in enumerate(split_windows(memory_stream, n_phases)):
        profiles = _count_range_traffic(window, candidates)
        dram_ranges, nvm_ranges = _greedy_placement(profiles, dram_capacity)
        time_ns, energy_pj = _placement_cost(
            profiles, dram_ranges, dram_tech, nvm_tech
        )
        # Migration: ranges entering DRAM copy NVM->DRAM and vice versa.
        entering = [r for r in dram_ranges if r not in previous_dram]
        leaving = [r for r in previous_dram if r not in set(dram_ranges)]
        t_in, e_in, b_in = _migration_cost(entering, nvm_tech, dram_tech, line_size)
        t_out, e_out, b_out = _migration_cost(leaving, dram_tech, nvm_tech, line_size)
        plan.phases.append(
            PhasePlacement(
                phase=phase,
                dram_ranges=dram_ranges,
                nvm_ranges=nvm_ranges,
                time_ns=time_ns + t_in + t_out,
                energy_pj=energy_pj + e_in + e_out,
                migrated_bytes=b_in + b_out,
            )
        )
        total_time += time_ns + t_in + t_out
        total_energy += energy_pj + e_in + e_out
        previous_dram = set(dram_ranges)

    plan.dynamic_time_ns = total_time
    plan.dynamic_energy_pj = total_energy
    return plan

"""Hot address-range identification from a traced run.

Maps the paper's methodology onto our instrumentation: each traced
region (one logical data structure) plays the role of a "range
referenced by different basic blocks". The profiler measures each
region's share of the memory references, keeps the ranges that together
account for the bulk of them, and merges ranges that are close in the
address space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.partition.ranges import AddressRange, merge_close_ranges
from repro.trace.stream import AddressStream
from repro.trace.tracer import REGION_ALIGN, Tracer

#: Minimum gap the bump allocator leaves between regions (one guard page).
REGION_GUARD_GAP: int = REGION_ALIGN


@dataclass(frozen=True)
class RangeProfile:
    """Reference traffic attributed to one candidate range.

    Attributes:
        range: the address range.
        loads / stores: accesses that fell inside the range.
        load_bytes / store_bytes: byte volumes of those accesses.
    """

    range: AddressRange
    loads: int
    stores: int
    load_bytes: int
    store_bytes: int

    @property
    def references(self) -> int:
        """Total accesses inside the range."""
        return self.loads + self.stores

    @property
    def store_fraction(self) -> float:
        """Store share of the range's accesses (write-hotness)."""
        return self.stores / self.references if self.references else 0.0


def _count_range_traffic(
    stream: AddressStream, ranges: list[AddressRange]
) -> list[RangeProfile]:
    """One pass over the stream accumulating per-range counters."""
    n = len(ranges)
    loads = np.zeros(n, dtype=np.int64)
    stores = np.zeros(n, dtype=np.int64)
    load_bytes = np.zeros(n, dtype=np.int64)
    store_bytes = np.zeros(n, dtype=np.int64)
    starts = np.array([r.start for r in ranges], dtype=np.uint64)
    ends = np.array([r.end for r in ranges], dtype=np.uint64)
    for chunk in stream.chunks():
        addr = chunk.addresses
        is_store = chunk.is_store != 0
        sizes = chunk.sizes.astype(np.int64)
        for i in range(n):
            mask = (addr >= starts[i]) & (addr < ends[i])
            if not mask.any():
                continue
            sm = mask & is_store
            lm = mask & ~is_store
            loads[i] += int(np.count_nonzero(lm))
            stores[i] += int(np.count_nonzero(sm))
            load_bytes[i] += int(sizes[lm].sum())
            store_bytes[i] += int(sizes[sm].sum())
    return [
        RangeProfile(
            range=ranges[i],
            loads=int(loads[i]),
            stores=int(stores[i]),
            load_bytes=int(load_bytes[i]),
            store_bytes=int(store_bytes[i]),
        )
        for i in range(n)
    ]


def profile_ranges(
    stream: AddressStream,
    tracer: Tracer,
    *,
    coverage: float = 0.95,
    merge_gap: int = REGION_GUARD_GAP - 1,
    max_ranges: int = 8,
) -> list[RangeProfile]:
    """Identify the candidate placement ranges of a traced run.

    Args:
        stream: the traced address stream.
        tracer: the tracer that ran the workload (provides the region
            map — the paper's per-basic-block address ranges).
        coverage: keep the fewest hottest regions covering at least this
            fraction of all references before merging.
        merge_gap: merge surviving ranges closer than this many bytes
            ("merged ranges close to each other"). The default is just
            below the allocator's guard-page gap, so each logical data
            structure stays its own placement candidate; pass a larger
            gap to coalesce structures allocated together.
        max_ranges: hard cap on the number of candidate ranges (the
            paper typically found 2–3 per workload).

    Returns:
        Profiles of the merged candidate ranges, hottest first.
    """
    if not 0 < coverage <= 1:
        raise ConfigError("coverage must be in (0, 1]")
    if max_ranges < 1:
        raise ConfigError("max_ranges must be at least 1")
    if not tracer.regions:
        return []
    region_ranges = [
        AddressRange(region.base, region.end, region.name)
        for region in tracer.regions
    ]
    profiles = _count_range_traffic(stream, region_ranges)
    total = sum(p.references for p in profiles)
    if total == 0:
        return []
    # Keep the hottest regions until the coverage target is met.
    profiles.sort(key=lambda p: p.references, reverse=True)
    kept: list[RangeProfile] = []
    covered = 0
    for profile in profiles:
        if covered >= coverage * total and kept:
            break
        if profile.references == 0:
            break
        kept.append(profile)
        covered += profile.references
    # Merge close ranges, then re-profile the merged ranges so their
    # traffic counters include everything the merged span covers.
    merged = merge_close_ranges([p.range for p in kept], merge_gap)
    merged = merged[:max_ranges]
    result = _count_range_traffic(stream, merged)
    result.sort(key=lambda p: p.references, reverse=True)
    return result

"""The NDM placement oracle.

The paper evaluates the NDM design under an oracle that statically
partitions the address space: "we placed an address range to NVM at a
time, and the rest to DRAM. Among the permutations tested..." — i.e.
single-range placements are enumerated and each is evaluated with the
full performance/energy model.

:func:`enumerate_placements` reproduces that procedure. It is agnostic
of the evaluation machinery: the caller supplies an ``evaluate``
callable (the experiment runner wires it to the shared post-L3 stream
and the model), and the oracle handles enumeration, capacity
feasibility, and ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Sequence

from repro.errors import ConfigError
from repro.model.evaluate import Evaluation
from repro.partition.profiler import RangeProfile
from repro.partition.ranges import AddressRange, total_span


@dataclass(frozen=True)
class PlacementResult:
    """One evaluated placement of ranges into NVM.

    Attributes:
        nvm_ranges: the ranges placed in NVM (empty = all-DRAM).
        evaluation: model results for the placement.
        dram_bytes_required: footprint bytes left to the DRAM partition.
        feasible: True iff the DRAM partition can hold the non-NVM data.
    """

    nvm_ranges: tuple[AddressRange, ...]
    evaluation: Evaluation
    dram_bytes_required: int
    feasible: bool

    @property
    def label(self) -> str:
        """Human-readable placement description."""
        if not self.nvm_ranges:
            return "all-DRAM"
        return "NVM<-{" + ", ".join(r.label or hex(r.start) for r in self.nvm_ranges) + "}"


def enumerate_placements(
    candidates: Sequence[RangeProfile],
    evaluate: Callable[[list[AddressRange]], Evaluation],
    *,
    footprint_bytes: int,
    dram_capacity_bytes: int,
    max_ranges_per_placement: int = 1,
    include_all_nvm: bool = True,
    objective: str = "edp",
) -> list[PlacementResult]:
    """Enumerate and rank placements of candidate ranges into NVM.

    Args:
        candidates: profiled candidate ranges (hottest first, from
            :func:`repro.partition.profiler.profile_ranges`).
        evaluate: maps a list of NVM ranges to a model
            :class:`~repro.model.evaluate.Evaluation`.
        footprint_bytes: the traced run's footprint — used with the
            range sizes to compute the DRAM-partition requirement.
        dram_capacity_bytes: DRAM partition capacity (same address
            scale as the trace).
        max_ranges_per_placement: enumerate subsets of up to this many
            ranges (1 reproduces the paper's one-range-at-a-time
            procedure).
        include_all_nvm: also evaluate placing *all* candidates in NVM
            (the capacity-maximizing extreme).
        objective: "edp", "time", or "energy" — ranking key among
            feasible placements (infeasible ones sort last).

    Returns:
        Placements sorted best-first by the objective.
    """
    if objective not in ("edp", "time", "energy"):
        raise ConfigError(f"unknown objective {objective!r}")
    if max_ranges_per_placement < 1:
        raise ConfigError("max_ranges_per_placement must be >= 1")

    placements: list[tuple[AddressRange, ...]] = []
    ranges = [c.range for c in candidates]
    for k in range(1, min(max_ranges_per_placement, len(ranges)) + 1):
        placements.extend(tuple(combo) for combo in combinations(ranges, k))
    if include_all_nvm and len(ranges) > max_ranges_per_placement:
        placements.append(tuple(ranges))

    results: list[PlacementResult] = []
    for placement in placements:
        nvm_bytes = total_span(list(placement))
        dram_required = max(0, footprint_bytes - nvm_bytes)
        results.append(
            PlacementResult(
                nvm_ranges=placement,
                evaluation=evaluate(list(placement)),
                dram_bytes_required=dram_required,
                feasible=dram_required <= dram_capacity_bytes,
            )
        )

    key = {
        "edp": lambda r: r.evaluation.edp_js,
        "time": lambda r: r.evaluation.time_s,
        "energy": lambda r: r.evaluation.energy_j,
    }[objective]
    results.sort(key=lambda r: (not r.feasible, key(r)))
    return results

"""Address-range algebra for partitioned memory placement."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class AddressRange:
    """A half-open byte-address interval ``[start, end)``.

    Attributes:
        start: first byte address.
        end: one past the last byte address.
        label: human-readable provenance (e.g. region names merged into
            this range).
    """

    start: int
    end: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigError(f"empty address range [{self.start}, {self.end})")

    @property
    def size(self) -> int:
        """Range size in bytes."""
        return self.end - self.start

    def contains(self, address: int) -> bool:
        """True iff ``address`` is inside the range."""
        return self.start <= address < self.end

    def overlaps(self, other: "AddressRange") -> bool:
        """True iff the two ranges share any address."""
        return self.start < other.end and other.start < self.end

    def gap_to(self, other: "AddressRange") -> int:
        """Bytes between the two ranges (0 if adjacent or overlapping)."""
        if self.overlaps(other):
            return 0
        if self.end <= other.start:
            return other.start - self.end
        return self.start - other.end

    def merge(self, other: "AddressRange") -> "AddressRange":
        """Smallest range covering both (labels joined with '+')."""
        label = "+".join(part for part in (self.label, other.label) if part)
        return AddressRange(
            min(self.start, other.start), max(self.end, other.end), label
        )


def merge_close_ranges(
    ranges: list[AddressRange], max_gap: int
) -> list[AddressRange]:
    """Merge ranges whose gap is at most ``max_gap`` bytes.

    This is the paper's "merged ranges close to each other" step: data
    structures allocated back-to-back behave as one placement unit.

    Args:
        ranges: input ranges in any order.
        max_gap: maximum gap (bytes) across which to merge.

    Returns:
        Non-overlapping ranges sorted by start address.
    """
    if max_gap < 0:
        raise ConfigError("max_gap must be non-negative")
    if not ranges:
        return []
    ordered = sorted(ranges, key=lambda r: r.start)
    merged = [ordered[0]]
    for current in ordered[1:]:
        if merged[-1].gap_to(current) <= max_gap:
            merged[-1] = merged[-1].merge(current)
        else:
            merged.append(current)
    return merged


def total_span(ranges: list[AddressRange]) -> int:
    """Total bytes covered by a list of non-overlapping ranges."""
    return sum(r.size for r in ranges)

"""repro — trace-driven evaluation of emerging memory technologies.

A reproduction of "Evaluation of emerging memory technologies for HPC,
data intensive applications" (Suresh, Cicotti, Carrington — CLUSTER 2014).

The package models 5-level hybrid memory hierarchies (eDRAM/HMC as a
fourth-level cache, PCM/STT-RAM/FeRAM as main memory, and a partitioned
DRAM+NVM main memory) and evaluates them on instrumented HPC and
data-intensive workload kernels via AMAT-based runtime scaling and a
dynamic+static energy model.

Top-level convenience re-exports cover the most common entry points;
see the subpackages for the full API:

- :mod:`repro.trace`       address-stream capture (PEBIL analog)
- :mod:`repro.cache`       multi-level cache simulator
- :mod:`repro.tech`        memory-technology characterization
- :mod:`repro.model`       AMAT / runtime / energy / EDP models
- :mod:`repro.designs`     the paper's four designs + reference system
- :mod:`repro.partition`   NDM address-space partitioning oracle
- :mod:`repro.workloads`   NPB / CORAL / Velvet workload kernels
- :mod:`repro.experiments` harness regenerating every table and figure
"""

import logging

from repro._version import __version__
from repro.errors import (
    ReproError,
    ConfigError,
    TraceError,
    TraceIntegrityError,
    SimulationError,
    ModelError,
    TelemetryError,
    SweepError,
)

# Library-safe logging: every module logs under the "repro" namespace,
# and a NullHandler here guarantees silence-by-default without the
# "No handlers could be found" warning. Applications opt in with e.g.
# ``logging.getLogger("repro").setLevel(logging.INFO)`` plus a handler.
logging.getLogger("repro").addHandler(logging.NullHandler())

__all__ = [
    "__version__",
    "ReproError",
    "ConfigError",
    "TraceError",
    "TraceIntegrityError",
    "SimulationError",
    "ModelError",
    "TelemetryError",
    "SweepError",
]

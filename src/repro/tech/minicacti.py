"""mini-CACTI: analytical SRAM cache latency / energy / leakage model.

The paper obtains L1/L2/L3 (and DRAM/eDRAM) parameters from CACTI 6.0.
CACTI itself is a large C++ circuit model; what its users consume are
three scalars per cache — access latency, dynamic energy per access,
and leakage power. This module provides an analytical fit with CACTI's
qualitative structure:

- Latency grows with the square root of capacity (H-tree wire delay
  dominates large arrays) plus a small associativity term (wider tag
  comparison and way muxing).
- Dynamic energy per access grows sub-linearly with capacity (bigger
  arrays drive longer bit/word lines but are partitioned into banks)
  and linearly with associativity (all ways of a set are read in a
  conventional parallel-access cache).
- Leakage is proportional to capacity.

Coefficients are fit to published CACTI 6.0 numbers for a 32 nm node so
the classic pyramid emerges (32 KB L1 ≈ 1 ns, 256 KB L2 ≈ 2–3 ns,
20 MB L3 ≈ 8–10 ns), consistent with the Sandy Bridge reference system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import MiB

# Fit coefficients (32 nm, single bank-optimized organization).
_LAT_BASE_NS = 0.65  # decoder + sense amp floor
_LAT_WIRE_NS_PER_SQRT_MB = 1.75  # H-tree wire term
_LAT_ASSOC_NS = 0.02  # per-way comparison/mux term

_ENERGY_BASE_PJ_PER_BIT = 0.05  # sense + IO floor
_ENERGY_CAP_PJ_PER_BIT = 0.30  # capacity term coefficient
_ENERGY_CAP_EXPONENT = 0.30  # sub-linear growth (banking)
_ENERGY_ASSOC_PJ_PER_BIT = 0.012  # parallel way-read term

_LEAKAGE_MW_PER_MB = 40.0  # 32 nm high-performance SRAM leakage density


@dataclass(frozen=True)
class CactiEstimate:
    """The three scalars a CACTI run yields for one cache.

    Attributes:
        access_ns: access latency (applies to both reads and writes;
            SRAM is symmetric).
        energy_pj_per_bit: dynamic energy per bit transferred.
        leakage_w: total leakage power of the array.
    """

    access_ns: float
    energy_pj_per_bit: float
    leakage_w: float


def estimate_sram_cache(
    capacity_bytes: int,
    associativity: int,
    line_size: int = 64,
) -> CactiEstimate:
    """Estimate latency/energy/leakage of an SRAM cache.

    Args:
        capacity_bytes: total capacity.
        associativity: ways per set (drives parallel way-read energy).
        line_size: line size in bytes (only sanity-checked; the per-bit
            energy formulation already normalizes transfer width).

    Returns:
        A :class:`CactiEstimate`.
    """
    if capacity_bytes <= 0:
        raise ConfigError("capacity must be positive")
    if associativity <= 0:
        raise ConfigError("associativity must be positive")
    if line_size <= 0:
        raise ConfigError("line size must be positive")
    capacity_mb = capacity_bytes / MiB
    access_ns = (
        _LAT_BASE_NS
        + _LAT_WIRE_NS_PER_SQRT_MB * math.sqrt(capacity_mb)
        + _LAT_ASSOC_NS * associativity
    )
    energy = (
        _ENERGY_BASE_PJ_PER_BIT
        + _ENERGY_CAP_PJ_PER_BIT * capacity_mb**_ENERGY_CAP_EXPONENT
        + _ENERGY_ASSOC_PJ_PER_BIT * associativity
    )
    leakage_w = _LEAKAGE_MW_PER_MB * capacity_mb / 1000.0
    return CactiEstimate(
        access_ns=access_ns,
        energy_pj_per_bit=energy,
        leakage_w=leakage_w,
    )

"""Memory-system cost modeling (the paper's deferred TCO factor).

"We have not factored in the cost (e.g. total cost of ownership)" —
Section VI. This module adds a first-order version:

- capital cost: $/GB per technology (2014-era street/projected prices;
  NVM's density advantage is its entire value proposition);
- operating cost: energy drawn over a service life at a $/kWh rate;
- per-design totals from the design's level capacities and the model's
  energy estimate.

Prices are config data, not physics — override ``PRICE_PER_GB`` entries
to study other price points (e.g. projected PCM cost crossover).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ModelError
from repro.units import GiB

if TYPE_CHECKING:  # avoid a tech <-> model import cycle at runtime
    from repro.model.evaluate import Evaluation

#: 2014-era planning prices, $ per GB. DRAM/NAND were market prices;
#: PCM/STT-RAM/FeRAM are the contemporaneous projections used in
#: cost studies (PCM between NAND and DRAM; STT-RAM/FeRAM at low
#: volume far above DRAM); eDRAM/HMC carry an integration premium.
PRICE_PER_GB: dict[str, float] = {
    "DRAM": 8.0,
    "PCM": 4.0,
    "STTRAM": 40.0,
    "FeRAM": 60.0,
    "eDRAM": 80.0,
    "HMC": 30.0,
}

#: Default electricity price, $ per kWh (US industrial, ~2014).
DOLLARS_PER_KWH: float = 0.10

_J_PER_KWH: float = 3.6e6


@dataclass(frozen=True)
class CostEstimate:
    """Capital + energy cost of one design running one workload mix.

    Attributes:
        capital_dollars: memory purchase cost of the design.
        energy_dollars: electricity for the modeled runs over the
            amortization window.
        total_dollars: capital + energy.
        cost_performance: total dollars × normalized runtime (lower is
            better; an EDP-like blended figure of merit).
    """

    capital_dollars: float
    energy_dollars: float
    total_dollars: float
    cost_performance: float


def memory_capital_cost(capacities_gb: dict[str, float]) -> float:
    """Capital cost of a set of memory devices.

    Args:
        capacities_gb: technology name -> capacity in GB.

    Raises:
        ModelError: for unknown technologies (so typos never price at
            zero silently).
    """
    total = 0.0
    for name, capacity_gb in capacities_gb.items():
        if capacity_gb < 0:
            raise ModelError(f"negative capacity for {name}")
        key = _price_key(name)
        total += PRICE_PER_GB[key] * capacity_gb
    return total


def _price_key(name: str) -> str:
    for key in PRICE_PER_GB:
        if key.lower() == name.lower():
            return key
    raise ModelError(
        f"no price for technology {name!r}; known: {sorted(PRICE_PER_GB)}"
    )


def estimate_cost(
    evaluation: Evaluation,
    capacities_gb: dict[str, float],
    *,
    runs_amortized: float = 1e6,
    dollars_per_kwh: float = DOLLARS_PER_KWH,
) -> CostEstimate:
    """Blend a design's capital cost with its modeled energy cost.

    Args:
        evaluation: the model's absolute energy/runtime for one run.
        capacities_gb: the design's device capacities by technology.
        runs_amortized: number of workload runs to amortize the capital
            cost over (a service-life proxy).
        dollars_per_kwh: electricity price.
    """
    if runs_amortized <= 0:
        raise ModelError("runs_amortized must be positive")
    capital = memory_capital_cost(capacities_gb)
    energy_dollars = (
        evaluation.energy_j * runs_amortized / _J_PER_KWH * dollars_per_kwh
    )
    total = capital + energy_dollars
    return CostEstimate(
        capital_dollars=capital,
        energy_dollars=energy_dollars,
        total_dollars=total,
        cost_performance=total * evaluation.time_norm,
    )


def design_capacities_gb(design, footprint_bytes: int) -> dict[str, float]:
    """Device capacities (GB) of a design instance, for costing.

    Uses the same full-size capacities the static-power model charges:
    footprint-sized main memories, configured cache/partition sizes.
    """
    from repro.designs.fourlc import FourLCDesign
    from repro.designs.fourlcnvm import FourLCNVMDesign
    from repro.designs.ndm import NDMDesign
    from repro.designs.nmm import NMMDesign
    from repro.designs.reference import ReferenceDesign

    footprint_gb = footprint_bytes / GiB
    if isinstance(design, ReferenceDesign):
        return {"DRAM": footprint_gb}
    if isinstance(design, FourLCDesign):
        return {
            design.cache_tech.name: design.config.capacity / GiB,
            "DRAM": footprint_gb,
        }
    if isinstance(design, NMMDesign):
        return {
            "DRAM": design.config.dram_capacity / GiB,
            design.nvm_tech.name: footprint_gb,
        }
    if isinstance(design, FourLCNVMDesign):
        return {
            design.cache_tech.name: design.config.capacity / GiB,
            design.nvm_tech.name: footprint_gb,
        }
    if isinstance(design, NDMDesign):
        return {
            "DRAM": design.dram_capacity / GiB,
            design.nvm_tech.name: footprint_gb,
        }
    raise ModelError(f"no costing rule for design type {type(design).__name__}")

"""Hypothetical technologies by parameter scaling.

Figures 9 and 10 of the paper generalize the study: instead of one
named technology, main-memory read/write latency and energy are swept
as multiples of DRAM's, producing heat maps of runtime and energy.
:func:`scaled_technology` builds those hypothetical technology points.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import ConfigError
from repro.tech.params import MemoryTechnology


def scaled_technology(
    base: MemoryTechnology,
    *,
    read_latency_x: float = 1.0,
    write_latency_x: float = 1.0,
    read_energy_x: float = 1.0,
    write_energy_x: float = 1.0,
    static_x: float = 1.0,
    name: str | None = None,
) -> MemoryTechnology:
    """A copy of ``base`` with parameters multiplied by the given factors.

    Args:
        base: technology to scale (the heat maps scale DRAM).
        read_latency_x / write_latency_x: latency multipliers.
        read_energy_x / write_energy_x: per-bit energy multipliers.
        static_x: static power density multiplier (the heat maps model
            NVM, so they pass 0 to zero out refresh).
        name: optional label; defaults to an annotated base name.

    Returns:
        The scaled :class:`~repro.tech.params.MemoryTechnology`.
    """
    for label, factor in (
        ("read_latency_x", read_latency_x),
        ("write_latency_x", write_latency_x),
        ("read_energy_x", read_energy_x),
        ("write_energy_x", write_energy_x),
        ("static_x", static_x),
    ):
        if factor < 0:
            raise ConfigError(f"{label} must be non-negative, got {factor}")
    label = name or (
        f"{base.name}[rl×{read_latency_x:g},wl×{write_latency_x:g},"
        f"re×{read_energy_x:g},we×{write_energy_x:g}]"
    )
    return replace(
        base,
        name=label,
        read_delay_ns=base.read_delay_ns * read_latency_x,
        write_delay_ns=base.write_delay_ns * write_latency_x,
        read_energy_pj_per_bit=base.read_energy_pj_per_bit * read_energy_x,
        write_energy_pj_per_bit=base.write_energy_pj_per_bit * write_energy_x,
        static_mw_per_mb=base.static_mw_per_mb * static_x,
        volatile=base.volatile if static_x > 0 else False,
    )

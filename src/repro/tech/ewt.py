"""Early write termination (EWT) for NVM writes.

The paper's reference [17] (Zhou et al., ICCAD 2009) observes that most
NVM bit-writes are *redundant* — the cell already holds the value being
written — and that terminating those writes early recovers most of
their energy. This module models EWT as a technology transform:

    write_energy' = write_energy * (1 - redundancy * efficiency)

- ``redundancy``: fraction of written bits that are redundant. Zhou et
  al. measure ~85% on SPEC-class workloads for PCM (silent stores plus
  bit-level redundancy); a conservative default of 0.6 is used here.
- ``efficiency``: fraction of a redundant bit-write's energy EWT
  actually saves (the comparison read costs something): default 0.9.

Write *latency* is unchanged — EWT terminates the energy delivery, but
the array timing still allots the full write pulse window.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import ConfigError
from repro.tech.params import MemoryTechnology

#: Conservative default redundant-bit fraction (Zhou et al. report ~85%
#: for PCM on SPEC-class workloads; data-intensive writes are fresher).
DEFAULT_REDUNDANCY: float = 0.6
#: Energy recovered per redundant bit (the termination comparator and
#: the partial pulse still cost ~10%).
DEFAULT_EFFICIENCY: float = 0.9


def with_early_write_termination(
    tech: MemoryTechnology,
    redundancy: float = DEFAULT_REDUNDANCY,
    efficiency: float = DEFAULT_EFFICIENCY,
) -> MemoryTechnology:
    """A copy of ``tech`` with EWT-reduced write energy.

    Args:
        tech: the NVM technology (volatile technologies are rejected —
            EWT exploits non-volatile cells retaining their value).
        redundancy: redundant-bit fraction in [0, 1].
        efficiency: energy saved per redundant bit in [0, 1].

    Returns:
        The transformed technology, renamed ``<name>+EWT``.
    """
    if tech.volatile:
        raise ConfigError(
            f"early write termination applies to NVM, not {tech.name}"
        )
    for label, value in (("redundancy", redundancy), ("efficiency", efficiency)):
        if not 0.0 <= value <= 1.0:
            raise ConfigError(f"{label} must be in [0, 1], got {value}")
    saving = redundancy * efficiency
    return replace(
        tech,
        name=f"{tech.name}+EWT",
        write_energy_pj_per_bit=tech.write_energy_pj_per_bit * (1.0 - saving),
    )

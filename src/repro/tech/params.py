"""Technology parameters — the paper's Table 1.

Read/write delays and per-bit access energies are the published values
(CACTI for DRAM/eDRAM, an HMC prototype, ITRS 2013 for PCM/STT-RAM,
ISSCC FeRAM literature). The static/refresh power column of Table 1 is
referenced by the text but its values are not legible in the published
copy, so static power densities are derived in
:mod:`repro.tech.dram_power` (DRAM-family refresh/background) and set to
zero for the non-volatile technologies, as the paper states ("we assume
that the NVM memory technologies do not have any static power").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError


@dataclass(frozen=True)
class MemoryTechnology:
    """Characterization of one memory technology.

    Attributes:
        name: technology label as used in the paper.
        read_delay_ns: latency of a read access, nanoseconds.
        write_delay_ns: latency of a write access, nanoseconds.
        read_energy_pj_per_bit: dynamic energy per bit read.
        write_energy_pj_per_bit: dynamic energy per bit written.
        static_mw_per_mb: static (background + refresh) power density.
            Zero for non-volatile technologies per the paper.
        volatile: True for DRAM-family technologies needing refresh.
    """

    name: str
    read_delay_ns: float
    write_delay_ns: float
    read_energy_pj_per_bit: float
    write_energy_pj_per_bit: float
    static_mw_per_mb: float
    volatile: bool

    def __post_init__(self) -> None:
        for field_name in (
            "read_delay_ns",
            "write_delay_ns",
            "read_energy_pj_per_bit",
            "write_energy_pj_per_bit",
            "static_mw_per_mb",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigError(f"{self.name}: {field_name} must be non-negative")

    @property
    def write_read_latency_ratio(self) -> float:
        """Write/read latency asymmetry (1.0 = symmetric)."""
        return self.write_delay_ns / self.read_delay_ns if self.read_delay_ns else 1.0

    @property
    def write_read_energy_ratio(self) -> float:
        """Write/read energy asymmetry (1.0 = symmetric)."""
        if not self.read_energy_pj_per_bit:
            return 1.0
        return self.write_energy_pj_per_bit / self.read_energy_pj_per_bit

    def static_power_w(self, capacity_bytes: int) -> float:
        """Static power of a device of the given capacity, watts."""
        return self.static_mw_per_mb * (capacity_bytes / (1024 * 1024)) / 1000.0

    def with_static_density(self, static_mw_per_mb: float) -> "MemoryTechnology":
        """Copy with a different static power density."""
        return replace(self, static_mw_per_mb=static_mw_per_mb)


# ---------------------------------------------------------------------------
# Table 1 — Characteristics of different memory technologies
# (delays in ns, energies in pJ/bit, verbatim from the paper)
# ---------------------------------------------------------------------------

# Static densities: see repro.tech.dram_power for the derivations of the
# DRAM-family values (Micron power-calculator methodology).
_DRAM_STATIC_MW_PER_MB = 1.0  # ~1 W/GB background + refresh (DDR3 RDIMM)
_EDRAM_STATIC_MW_PER_MB = 1.0  # on-die eDRAM: short retention, dense refresh
_HMC_STATIC_MW_PER_MB = 1.0  # stacked DRAM: refresh + always-on logic base

DRAM = MemoryTechnology(
    name="DRAM",
    read_delay_ns=10.0,
    write_delay_ns=10.0,
    read_energy_pj_per_bit=10.0,
    write_energy_pj_per_bit=10.0,
    static_mw_per_mb=_DRAM_STATIC_MW_PER_MB,
    volatile=True,
)

PCM = MemoryTechnology(
    name="PCM",
    read_delay_ns=21.0,
    write_delay_ns=100.0,
    read_energy_pj_per_bit=12.4,
    write_energy_pj_per_bit=210.3,
    static_mw_per_mb=0.0,
    volatile=False,
)

STTRAM = MemoryTechnology(
    name="STTRAM",
    read_delay_ns=35.0,
    write_delay_ns=35.0,
    read_energy_pj_per_bit=58.5,
    write_energy_pj_per_bit=67.7,
    static_mw_per_mb=0.0,
    volatile=False,
)

FERAM = MemoryTechnology(
    name="FeRAM",
    read_delay_ns=40.0,
    write_delay_ns=65.0,
    read_energy_pj_per_bit=12.4,
    write_energy_pj_per_bit=210.0,
    static_mw_per_mb=0.0,
    volatile=False,
)

EDRAM = MemoryTechnology(
    name="eDRAM",
    read_delay_ns=4.4,
    write_delay_ns=4.4,
    read_energy_pj_per_bit=3.11,
    write_energy_pj_per_bit=3.09,
    static_mw_per_mb=_EDRAM_STATIC_MW_PER_MB,
    volatile=True,
)

HMC = MemoryTechnology(
    name="HMC",
    read_delay_ns=0.18,
    write_delay_ns=0.18,
    read_energy_pj_per_bit=0.48,
    write_energy_pj_per_bit=10.48,
    static_mw_per_mb=_HMC_STATIC_MW_PER_MB,
    volatile=True,
)

#: All Table 1 technologies, keyed by lower-case name.
TECHNOLOGIES: dict[str, MemoryTechnology] = {
    tech.name.lower(): tech for tech in (DRAM, PCM, STTRAM, FERAM, EDRAM, HMC)
}


def get_technology(name: str) -> MemoryTechnology:
    """Look up a technology by (case-insensitive) name.

    Raises:
        KeyError: for unknown technologies, listing the known ones.
    """
    key = name.lower()
    if key not in TECHNOLOGIES:
        raise KeyError(
            f"unknown technology {name!r}; known: {sorted(TECHNOLOGIES)}"
        )
    return TECHNOLOGIES[key]


def nvm_technologies() -> list[MemoryTechnology]:
    """The non-volatile main-memory candidates evaluated by the paper."""
    return [PCM, STTRAM, FERAM]


def volatile_cache_technologies() -> list[MemoryTechnology]:
    """The volatile fourth-level-cache candidates."""
    return [EDRAM, HMC]

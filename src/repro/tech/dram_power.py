"""DRAM-family background + refresh power (Micron-calculator style).

The paper cites Micron's System Power Calculators for DRAM background
(static) power. The calculator's structure for an idle, powered-up
DDR3 device is::

    P_background = IDD2N * VDD        (precharge standby)
    P_refresh    = (IDD5 - IDD2N) * VDD * tRFC / tREFI

Per 4 Gb (512 MB) DDR3-1600 device at VDD = 1.5 V with typical datasheet
currents (IDD2N ≈ 65 mA, IDD5 ≈ 215 mA, tRFC = 260 ns, tREFI = 7.8 µs):

    P_background ≈ 97.5 mW,  P_refresh ≈ 7.5 mW  →  ~105 mW / 512 MB
    ≈ 0.21 W/GB for the bare devices. A populated 2014-era registered
    DDR3 DIMM additionally pays ODT termination, the register/PLL, and
    periodic ZQ calibration; the planning number for server RDIMMs of
    that generation is ~1 W/GB idle, which is the density used here
    (1.0 mW/MB). This matches the paper's observation that
    large-footprint workloads are dominated by DRAM static energy.

eDRAM retention is two to three orders of magnitude shorter than
commodity DRAM (microseconds versus 64 ms), so although the cells are
on-die and low-voltage, refresh energy per MB is substantially higher;
we use 1.0 mW/MB. The same density is used for HMC's stacked DRAM
layers plus always-on logic base.

These functions exist so every static-power density in the models is
derived in one audited place; :mod:`repro.tech.params` embeds the
resulting densities in the technology records.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.units import MiB

#: Planning density for registered DDR3 DRAM, mW per MB (≈1 W/GB).
DDR3_STATIC_MW_PER_MB: float = 1.0
#: Density for on-die eDRAM (fast-retention refresh), mW per MB.
EDRAM_STATIC_MW_PER_MB: float = 1.0
#: Density for HMC stacked DRAM + logic base, mW per MB.
HMC_STATIC_MW_PER_MB: float = 1.0


def dram_static_power_w(capacity_bytes: int) -> float:
    """Background + refresh power of a DDR3 DRAM of the given capacity.

    Args:
        capacity_bytes: DRAM capacity in bytes.

    Returns:
        Static power in watts.
    """
    if capacity_bytes < 0:
        raise ConfigError("capacity must be non-negative")
    return DDR3_STATIC_MW_PER_MB * (capacity_bytes / MiB) / 1000.0


def edram_refresh_power_w(capacity_bytes: int) -> float:
    """Refresh + standby power of an eDRAM array of the given capacity."""
    if capacity_bytes < 0:
        raise ConfigError("capacity must be non-negative")
    return EDRAM_STATIC_MW_PER_MB * (capacity_bytes / MiB) / 1000.0


def refresh_energy_j(capacity_bytes: int, duration_s: float, density_mw_per_mb: float = DDR3_STATIC_MW_PER_MB) -> float:
    """Static energy over a run: capacity × density × time.

    Args:
        capacity_bytes: device capacity.
        duration_s: run duration in seconds.
        density_mw_per_mb: power density to apply.
    """
    if duration_s < 0:
        raise ConfigError("duration must be non-negative")
    return density_mw_per_mb * (capacity_bytes / MiB) / 1000.0 * duration_s

"""Memory-technology characterization substrate.

Provides the scalar parameters the models consume, from three sources
mirroring the paper's methodology (Section III.A):

- :mod:`repro.tech.params` — the paper's Table 1 verbatim (DRAM, PCM,
  STT-RAM, FeRAM, eDRAM, HMC), plus static/refresh power parameters.
- :mod:`repro.tech.minicacti` — an analytical CACTI-style model for the
  on-chip SRAM levels (L1/L2/L3 latency, energy/bit, leakage).
- :mod:`repro.tech.dram_power` — a Micron-power-calculator-style model
  of DRAM background + refresh power vs capacity.

:mod:`repro.tech.scaling` derives hypothetical technologies by scaling
latency/energy, as used by the Figure 9–10 heat maps.
"""

from repro.tech.params import (
    DRAM,
    EDRAM,
    FERAM,
    HMC,
    PCM,
    STTRAM,
    TECHNOLOGIES,
    MemoryTechnology,
    get_technology,
    nvm_technologies,
    volatile_cache_technologies,
)
from repro.tech.minicacti import CactiEstimate, estimate_sram_cache
from repro.tech.dram_power import dram_static_power_w, edram_refresh_power_w
from repro.tech.scaling import scaled_technology
from repro.tech.ewt import with_early_write_termination
from repro.tech.cost import (
    PRICE_PER_GB,
    CostEstimate,
    design_capacities_gb,
    estimate_cost,
    memory_capital_cost,
)

__all__ = [
    "with_early_write_termination",
    "PRICE_PER_GB",
    "CostEstimate",
    "estimate_cost",
    "memory_capital_cost",
    "design_capacities_gb",
    "MemoryTechnology",
    "TECHNOLOGIES",
    "DRAM",
    "PCM",
    "STTRAM",
    "FERAM",
    "EDRAM",
    "HMC",
    "get_technology",
    "nvm_technologies",
    "volatile_cache_technologies",
    "CactiEstimate",
    "estimate_sram_cache",
    "dram_static_power_w",
    "edram_refresh_power_w",
    "scaled_technology",
]

"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch package-level failures with a
single except clause while still letting programming errors (TypeError,
IndexError, ...) propagate unchanged.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError, ValueError):
    """An invalid cache, design, or experiment configuration.

    Also a ValueError so that generic validation call-sites behave
    idiomatically.
    """


class TraceError(ReproError):
    """A problem while recording or manipulating an address stream."""


class SimulationError(ReproError):
    """A problem during cache-hierarchy simulation."""


class ModelError(ReproError):
    """A problem while evaluating the performance or energy models."""

"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch package-level failures with a
single except clause while still letting programming errors (TypeError,
IndexError, ...) propagate unchanged.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError, ValueError):
    """An invalid cache, design, or experiment configuration.

    Also a ValueError so that generic validation call-sites behave
    idiomatically.
    """


class TraceError(ReproError):
    """A problem while recording or manipulating an address stream."""


class TraceIntegrityError(TraceError):
    """A persisted trace artifact failed its integrity check.

    The message names the offending file. Remediation: delete that
    file (and its ``.sha256`` sidecar) and re-run the workload so the
    trace is regenerated; cached artifacts are never repaired in place.
    """


class SimulationError(ReproError):
    """A problem during cache-hierarchy simulation."""


class ModelError(ReproError):
    """A problem while evaluating the performance or energy models."""


class TelemetryError(ReproError):
    """A problem while recording or exporting telemetry.

    Raised for invalid metric/window configuration and for corrupt
    telemetry artifacts (event logs, window CSVs). Remediation for
    artifact corruption: the telemetry directory is disposable —
    delete it and re-run with ``--telemetry`` to regenerate.
    """


class SweepError(ReproError):
    """A problem while executing or resuming a sweep campaign.

    Remediation: inspect the result journal named in the message; a
    corrupt journal can be deleted to restart the campaign from
    scratch, and per-cell failures are reproducible from the recorded
    (seed, cell key) pair.
    """

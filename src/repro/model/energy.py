"""Energy models — the paper's Equations (3) and (4).

Dynamic energy (Eq. 3) charges every load/store at every level its
technology's per-bit energy times the bits it moved::

    E_dyn = Σ_i ( E_load_i · Loads_i + E_store_i · Stores_i )

with our per-bit formulation ``E_load_i · Loads_i`` becomes
``read_pj_per_bit_i × load_bits_i`` (the simulator tracks the exact bit
volumes, so page-size effects — "less bits will be accessed" — fall out
naturally).

Static energy (Eq. 4) is time × the summed static power of every level
(SRAM leakage, DRAM/eDRAM background + refresh; zero for NVM)::

    E_static = T · Σ_i P_static_i
"""

from __future__ import annotations

from repro.cache.stats import HierarchyStats
from repro.errors import ModelError
from repro.model.bindings import LevelBinding


def dynamic_energy_breakdown_pj(
    stats: HierarchyStats,
    bindings: dict[str, LevelBinding],
) -> dict[str, float]:
    """Eq. (3) numerator split per level, in picojoules (traced run)."""
    breakdown: dict[str, float] = {}
    for level in stats.levels:
        try:
            binding = bindings[level.name]
        except KeyError:
            raise ModelError(
                f"no technology binding for hierarchy level {level.name!r}"
            ) from None
        breakdown[level.name] = (
            binding.read_pj_per_bit * level.load_bits
            + binding.write_pj_per_bit * level.store_bits
        )
    return breakdown


def dynamic_energy_pj(
    stats: HierarchyStats,
    bindings: dict[str, LevelBinding],
) -> float:
    """Eq. (3): total dynamic energy of the traced run, picojoules."""
    return sum(dynamic_energy_breakdown_pj(stats, bindings).values())


def total_static_power_w(bindings: dict[str, LevelBinding]) -> float:
    """Σ P_static over all bound levels, watts."""
    return sum(b.static_w for b in bindings.values())


def static_energy_j(duration_s: float, bindings: dict[str, LevelBinding]) -> float:
    """Eq. (4): static energy over the run, joules."""
    if duration_s < 0:
        raise ModelError("duration must be non-negative")
    return duration_s * total_static_power_w(bindings)

"""Binding hierarchy levels to technology parameters.

A :class:`LevelBinding` holds the five scalars the models need for one
*instance* of a level: read/write access time, read/write energy per
bit, and absolute static power (density × the instance's capacity).
Designs produce a ``dict[level_name, LevelBinding]`` covering every
level of their hierarchy plus the terminal memory device(s).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.tech.params import MemoryTechnology


@dataclass(frozen=True)
class LevelBinding:
    """Technology scalars bound to one hierarchy level instance.

    Attributes:
        name: hierarchy level name this binding applies to.
        read_ns / write_ns: per-access latency.
        read_pj_per_bit / write_pj_per_bit: dynamic energy densities.
        static_w: absolute static power of this level instance
            (already multiplied by the instance's capacity).
    """

    name: str
    read_ns: float
    write_ns: float
    read_pj_per_bit: float
    write_pj_per_bit: float
    static_w: float

    def __post_init__(self) -> None:
        for field_name in (
            "read_ns",
            "write_ns",
            "read_pj_per_bit",
            "write_pj_per_bit",
            "static_w",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigError(f"{self.name}: {field_name} must be non-negative")

    @classmethod
    def from_technology(
        cls,
        name: str,
        tech: MemoryTechnology,
        capacity_bytes: int,
    ) -> "LevelBinding":
        """Bind a Table 1 technology at a given instance capacity."""
        return cls(
            name=name,
            read_ns=tech.read_delay_ns,
            write_ns=tech.write_delay_ns,
            read_pj_per_bit=tech.read_energy_pj_per_bit,
            write_pj_per_bit=tech.write_energy_pj_per_bit,
            static_w=tech.static_power_w(capacity_bytes),
        )

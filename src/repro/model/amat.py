"""Average memory access time — the paper's Equation (2).

::

    AMAT = Σ_i ( LoadTime_i · Loads_i + StoreTime_i · Stores_i )
           ─────────────────────────────────────────────────────
                        total number of references

where ``Loads_i`` / ``Stores_i`` are the loads and stores *arriving at*
level i (every reference pays L1; L1 misses additionally pay L2; and so
on), and the denominator is the program's reference count.
"""

from __future__ import annotations

from repro.cache.stats import HierarchyStats
from repro.errors import ModelError
from repro.model.bindings import LevelBinding


def _binding_for(level_name: str, bindings: dict[str, LevelBinding]) -> LevelBinding:
    try:
        return bindings[level_name]
    except KeyError:
        raise ModelError(
            f"no technology binding for hierarchy level {level_name!r}; "
            f"bound levels: {sorted(bindings)}"
        ) from None


def level_time_breakdown_ns(
    stats: HierarchyStats,
    bindings: dict[str, LevelBinding],
) -> dict[str, float]:
    """Total access time spent at each level, in nanoseconds.

    The numerator of Eq. (2), split per level — useful for attributing
    where a design's time goes.
    """
    breakdown: dict[str, float] = {}
    for level in stats.levels:
        binding = _binding_for(level.name, bindings)
        breakdown[level.name] = (
            binding.read_ns * level.loads + binding.write_ns * level.stores
        )
    return breakdown


def amat_ns(stats: HierarchyStats, bindings: dict[str, LevelBinding]) -> float:
    """Eq. (2): average memory access time in nanoseconds.

    Raises:
        ModelError: if the run saw no references, or a level has no
            binding.
    """
    if stats.references <= 0:
        raise ModelError("cannot compute AMAT of a run with zero references")
    total_ns = sum(level_time_breakdown_ns(stats, bindings).values())
    return total_ns / stats.references

"""End-to-end evaluation of a design on a workload.

The pipeline is two-stage, mirroring the paper's methodology:

1. :func:`evaluate_stats` reduces a hierarchy run to a
   :class:`RawEvaluation` — AMAT, traced dynamic energy, static power.
   These depend only on the design and the traced stream.
2. :func:`finalize` joins a raw evaluation with the *reference system's*
   raw evaluation of the same stream and the workload's Table 4
   metadata, producing absolute runtime (Eq. 1), full-run dynamic
   energy, static energy (Eq. 4), total energy, and EDP — plus the
   normalized ratios the paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.stats import HierarchyStats
from repro.errors import ModelError
from repro.model.amat import amat_ns
from repro.model.bindings import LevelBinding
from repro.model.edp import energy_delay_product
from repro.model.energy import (
    dynamic_energy_pj,
    total_static_power_w,
)
from repro.model.runtime import full_run_references, scaled_runtime_s
from repro.telemetry.core import get_active
from repro.units import J_PER_PJ


@dataclass(frozen=True)
class WorkloadMeta:
    """Workload metadata consumed by the models (the paper's Table 4).

    Attributes:
        name: workload name.
        footprint_bytes: full-size memory footprint per core (sizes the
            baseline DRAM and the NVM main memory for static power).
        t_ref_s: measured wall-clock time on the reference system.
    """

    name: str
    footprint_bytes: int
    t_ref_s: float

    def __post_init__(self) -> None:
        if self.footprint_bytes <= 0:
            raise ModelError(f"{self.name}: footprint must be positive")
        if self.t_ref_s <= 0:
            raise ModelError(f"{self.name}: reference time must be positive")


@dataclass(frozen=True)
class RawEvaluation:
    """Stream-dependent model outputs for one (design, workload) pair.

    Attributes:
        design_name: label of the evaluated design/configuration.
        stats: the hierarchy run statistics.
        amat_ns: Eq. (2) result.
        dynamic_pj_traced: Eq. (3) over the *traced* run only.
        static_power_w: Σ static power of the design's levels.
    """

    design_name: str
    stats: HierarchyStats
    amat_ns: float
    dynamic_pj_traced: float
    static_power_w: float


@dataclass(frozen=True)
class Evaluation:
    """Final absolute + normalized results for one design on one workload.

    Attributes:
        design_name / workload: labels.
        time_s: Eq. (1) estimated runtime.
        dynamic_j: full-run dynamic energy (traced energy upscaled by
            the full-run:traced reference-count ratio).
        static_j: Eq. (4).
        energy_j: dynamic + static.
        edp_js: energy × time.
        amat_ns: the design's AMAT.
        time_norm / energy_norm / dynamic_norm / static_norm / edp_norm:
            ratios against the reference system (1.0 = parity; the
            quantities the paper's Figures 1–8 plot).
    """

    design_name: str
    workload: str
    time_s: float
    dynamic_j: float
    static_j: float
    energy_j: float
    edp_js: float
    amat_ns: float
    time_norm: float
    energy_norm: float
    dynamic_norm: float
    static_norm: float
    edp_norm: float

    @property
    def time_overhead_pct(self) -> float:
        """Runtime overhead vs reference, percent (negative = faster)."""
        return (self.time_norm - 1.0) * 100.0

    @property
    def energy_saving_pct(self) -> float:
        """Energy saving vs reference, percent (negative = overhead)."""
        return (1.0 - self.energy_norm) * 100.0


def evaluate_stats(
    design_name: str,
    stats: HierarchyStats,
    bindings: dict[str, LevelBinding],
) -> RawEvaluation:
    """Stage 1: reduce a hierarchy run to model quantities."""
    with get_active().span("model.evaluate_stats", design=design_name):
        return RawEvaluation(
            design_name=design_name,
            stats=stats,
            amat_ns=amat_ns(stats, bindings),
            dynamic_pj_traced=dynamic_energy_pj(stats, bindings),
            static_power_w=total_static_power_w(bindings),
        )


def finalize(
    raw: RawEvaluation,
    ref: RawEvaluation,
    meta: WorkloadMeta,
) -> Evaluation:
    """Stage 2: absolute runtime/energy and normalization vs reference.

    Args:
        raw: the design's raw evaluation.
        ref: the *reference system's* raw evaluation of the same traced
            stream (pass the same object twice to evaluate the reference
            itself).
        meta: workload Table 4 metadata.
    """
    with get_active().span(
        "model.finalize", design=raw.design_name, workload=meta.name
    ):
        return _finalize(raw, ref, meta)


def _finalize(
    raw: RawEvaluation,
    ref: RawEvaluation,
    meta: WorkloadMeta,
) -> Evaluation:
    if raw.stats.references != ref.stats.references:
        raise ModelError(
            "design and reference were evaluated on different streams: "
            f"{raw.stats.references} vs {ref.stats.references} references"
        )
    time_s = scaled_runtime_s(meta.t_ref_s, raw.amat_ns, ref.amat_ns)
    n_full = full_run_references(meta.t_ref_s, ref.amat_ns)
    upscale = n_full / raw.stats.references
    dynamic_j = raw.dynamic_pj_traced * upscale * J_PER_PJ
    static_j = time_s * raw.static_power_w
    energy_j = dynamic_j + static_j

    # Reference absolute quantities (for normalization).
    ref_time_s = meta.t_ref_s
    ref_dynamic_j = ref.dynamic_pj_traced * upscale * J_PER_PJ
    ref_static_j = ref_time_s * ref.static_power_w
    ref_energy_j = ref_dynamic_j + ref_static_j

    def ratio(x: float, y: float) -> float:
        return x / y if y > 0 else float("inf") if x > 0 else 1.0

    return Evaluation(
        design_name=raw.design_name,
        workload=meta.name,
        time_s=time_s,
        dynamic_j=dynamic_j,
        static_j=static_j,
        energy_j=energy_j,
        edp_js=energy_delay_product(energy_j, time_s),
        amat_ns=raw.amat_ns,
        time_norm=ratio(time_s, ref_time_s),
        energy_norm=ratio(energy_j, ref_energy_j),
        dynamic_norm=ratio(dynamic_j, ref_dynamic_j),
        static_norm=ratio(static_j, ref_static_j),
        edp_norm=ratio(
            energy_delay_product(energy_j, time_s),
            energy_delay_product(ref_energy_j, ref_time_s),
        ),
    )

"""Bandwidth-aware timing extension (the paper's "improving the
modeling" future work).

Equation (2) charges every access a flat device latency, which is
accurate while queues are empty but optimistic for bandwidth-saturated
levels (page fills move kilobytes per access). This extension adds a
transfer term per request::

    access_time = latency + bytes / bandwidth

and a saturation diagnostic: the *demanded* bandwidth of a level
(bytes moved / modeled runtime) against its peak. It deliberately stays
an additive serial model — no queuing theory — so results remain
directly comparable with the paper's Eq. (2) (set bandwidths to None or
infinity to recover it exactly).

Representative peak bandwidths ship in :data:`DEFAULT_BANDWIDTHS`
(2014-era parts: DDR3-1600 channel, HMC gen2 links, on-die eDRAM ring,
first-generation PCM/STT-RAM/FeRAM arrays).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.stats import HierarchyStats
from repro.errors import ModelError
from repro.model.bindings import LevelBinding

#: Peak bandwidths in GB/s for the technologies, by level-binding name
#: conventions used in the designs. None = not bandwidth-limited.
DEFAULT_BANDWIDTHS: dict[str, float] = {
    "L1": 100.0,
    "L2": 60.0,
    "L3": 40.0,
    "L4": 80.0,  # eDRAM/HMC-class
    "DRAM": 12.8,  # one DDR3-1600 channel
    "DRAM$": 12.8,
    "NVM": 2.0,  # first-generation PCM-class array
    "DRAMpart": 12.8,
    "NVMpart": 2.0,
}

_NS_PER_BYTE_PER_GBS = 1.0  # 1 GB/s == 1 B/ns


@dataclass(frozen=True)
class BandwidthReport:
    """Per-level bandwidth demand diagnostic.

    Attributes:
        level: level name.
        demanded_gbs: bytes moved / runtime.
        peak_gbs: configured peak (None = unconstrained).
        utilization: demanded / peak (0.0 when unconstrained).
    """

    level: str
    demanded_gbs: float
    peak_gbs: float | None
    utilization: float


def amat_with_bandwidth_ns(
    stats: HierarchyStats,
    bindings: dict[str, LevelBinding],
    bandwidths: dict[str, float] | None = None,
) -> float:
    """Eq. (2) plus per-request transfer time.

    Args:
        stats: hierarchy run statistics.
        bindings: level latency/energy bindings.
        bandwidths: level name -> peak GB/s (missing/None levels are
            treated as unconstrained). Defaults to
            :data:`DEFAULT_BANDWIDTHS`.

    Returns:
        AMAT in nanoseconds.
    """
    if stats.references <= 0:
        raise ModelError("cannot compute AMAT of a run with zero references")
    peaks = DEFAULT_BANDWIDTHS if bandwidths is None else bandwidths
    total_ns = 0.0
    for level in stats.levels:
        try:
            binding = bindings[level.name]
        except KeyError:
            raise ModelError(
                f"no technology binding for hierarchy level {level.name!r}"
            ) from None
        total_ns += binding.read_ns * level.loads + binding.write_ns * level.stores
        peak = peaks.get(level.name)
        if peak:
            if peak <= 0:
                raise ModelError(f"{level.name}: bandwidth must be positive")
            bytes_moved = (level.load_bits + level.store_bits) / 8.0
            total_ns += bytes_moved / (peak * _NS_PER_BYTE_PER_GBS)
    return total_ns / stats.references


def bandwidth_demand(
    stats: HierarchyStats,
    runtime_s: float,
    bandwidths: dict[str, float] | None = None,
) -> list[BandwidthReport]:
    """Per-level demanded bandwidth over a modeled runtime.

    Flags the levels whose traffic would saturate their peak — the
    situations where the paper's flat-latency model is optimistic.
    """
    if runtime_s <= 0:
        raise ModelError("runtime must be positive")
    peaks = DEFAULT_BANDWIDTHS if bandwidths is None else bandwidths
    reports = []
    for level in stats.levels:
        bytes_moved = (level.load_bits + level.store_bits) / 8.0
        demanded = bytes_moved / runtime_s / 1e9  # GB/s
        peak = peaks.get(level.name)
        reports.append(
            BandwidthReport(
                level=level.name,
                demanded_gbs=demanded,
                peak_gbs=peak,
                utilization=demanded / peak if peak else 0.0,
            )
        )
    return reports

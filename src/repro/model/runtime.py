"""Runtime scaling — the paper's Equation (1).

::

    T_design = T_ref · AMAT_design / AMAT_ref

The model treats the workloads as memory-bound (the paper selects
data-intensive problem sizes for exactly this reason), so wall-clock
time scales with the average memory access time.

A corollary used by the energy model: if the full reference run takes
``T_ref`` at ``AMAT_ref`` per reference, the full run issues

    N_full = T_ref / AMAT_ref

references. Dividing by the traced reference count gives the factor by
which traced dynamic energy must be scaled to a full-run estimate,
keeping dynamic and static energy commensurable.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.units import S_PER_NS


def scaled_runtime_s(t_ref_s: float, amat_design_ns: float, amat_ref_ns: float) -> float:
    """Eq. (1): the design's estimated wall-clock runtime in seconds."""
    if t_ref_s < 0:
        raise ModelError("reference runtime must be non-negative")
    if amat_ref_ns <= 0:
        raise ModelError("reference AMAT must be positive")
    return t_ref_s * (amat_design_ns / amat_ref_ns)


def full_run_references(t_ref_s: float, amat_ref_ns: float) -> float:
    """Number of references the full (untraced) reference run issues."""
    if amat_ref_ns <= 0:
        raise ModelError("reference AMAT must be positive")
    return t_ref_s / (amat_ref_ns * S_PER_NS)

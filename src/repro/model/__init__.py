"""Performance and energy models (the paper's Equations 1–4).

- :mod:`repro.model.bindings` — binds each hierarchy level to the
  scalar parameters of its technology (delays, energies/bit, static W).
- :mod:`repro.model.amat` — Eq. (2): average memory access time.
- :mod:`repro.model.runtime` — Eq. (1): runtime scaling by AMAT ratio.
- :mod:`repro.model.energy` — Eq. (3)/(4): dynamic and static energy.
- :mod:`repro.model.edp` — energy-delay product.
- :mod:`repro.model.evaluate` — joins everything into per-design
  :class:`~repro.model.evaluate.Evaluation` records with normalization
  against the reference system.
"""

from repro.model.bindings import LevelBinding
from repro.model.amat import amat_ns, level_time_breakdown_ns
from repro.model.runtime import scaled_runtime_s, full_run_references
from repro.model.energy import (
    dynamic_energy_pj,
    dynamic_energy_breakdown_pj,
    static_energy_j,
    total_static_power_w,
)
from repro.model.edp import energy_delay_product
from repro.model.evaluate import Evaluation, RawEvaluation, WorkloadMeta, evaluate_stats, finalize
from repro.model.bandwidth import (
    BandwidthReport,
    amat_with_bandwidth_ns,
    bandwidth_demand,
)

__all__ = [
    "BandwidthReport",
    "amat_with_bandwidth_ns",
    "bandwidth_demand",
    "LevelBinding",
    "amat_ns",
    "level_time_breakdown_ns",
    "scaled_runtime_s",
    "full_run_references",
    "dynamic_energy_pj",
    "dynamic_energy_breakdown_pj",
    "static_energy_j",
    "total_static_power_w",
    "energy_delay_product",
    "WorkloadMeta",
    "RawEvaluation",
    "Evaluation",
    "evaluate_stats",
    "finalize",
]

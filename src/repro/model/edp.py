"""Energy-delay product.

The paper compares designs that trade runtime against energy using
EDP = (dynamic + static energy) × runtime: "two configurations would be
equivalent in terms of EDP if one is faster but uses a proportionally
higher amount of energy."
"""

from __future__ import annotations

from repro.errors import ModelError


def energy_delay_product(energy_j: float, time_s: float) -> float:
    """EDP in joule-seconds.

    Raises:
        ModelError: on negative inputs.
    """
    if energy_j < 0 or time_s < 0:
        raise ModelError("energy and time must be non-negative")
    return energy_j * time_s

"""Address-stream capture substrate (our PEBIL analog).

The paper instruments application binaries with PEBIL and feeds the
resulting memory address stream into an online cache simulator. Here the
same role is played by:

- :class:`~repro.trace.tracer.Tracer` — owns a simulated virtual address
  space and the stream being recorded,
- :class:`~repro.trace.traced_array.TracedArray` — an ndarray wrapper
  that records every load/store with exact byte addresses, and
- :class:`~repro.trace.stream.AddressStream` — the chunked, NumPy-backed
  stream container consumed by the cache simulator.

Synthetic stream generators (:mod:`repro.trace.synthetic`) and reuse
distance analysis (:mod:`repro.trace.reuse`) support testing and the
generalization study. For scale-out, :mod:`repro.trace.store` persists
streams in a chunked mmap-ready on-disk format read back zero-copy as
:class:`~repro.trace.store.MappedStream`, and
:mod:`repro.trace.arena` shares one physical trace copy across all
workers of a parallel sweep.
"""

from repro.trace.events import LOAD, STORE, AccessBatch
from repro.trace.stream import AddressStream, StreamStats
from repro.trace.tracer import Region, Tracer
from repro.trace.traced_array import TracedArray
from repro.trace.synthetic import (
    pointer_chase_stream,
    random_stream,
    sequential_stream,
    strided_stream,
    zipf_stream,
)
from repro.trace.reuse import reuse_distances, working_set_curve
from repro.trace.filters import (
    filter_range,
    loads_only,
    sample_stream,
    split_windows,
    stores_only,
)
from repro.trace.io import discard_trace, load_trace, save_trace, verify_artifact
from repro.trace.store import MappedStream, write_store
from repro.trace.arena import SharedStream, TraceArena, TraceHandle

__all__ = [
    "MappedStream",
    "write_store",
    "TraceArena",
    "TraceHandle",
    "SharedStream",
    "split_windows",
    "sample_stream",
    "filter_range",
    "loads_only",
    "stores_only",
    "save_trace",
    "load_trace",
    "discard_trace",
    "verify_artifact",
    "LOAD",
    "STORE",
    "AccessBatch",
    "AddressStream",
    "StreamStats",
    "Region",
    "Tracer",
    "TracedArray",
    "sequential_stream",
    "strided_stream",
    "random_stream",
    "zipf_stream",
    "pointer_chase_stream",
    "reuse_distances",
    "working_set_curve",
]

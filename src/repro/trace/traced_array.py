"""Instrumented arrays: every load/store is recorded with its address.

:class:`TracedArray` wraps a NumPy array allocated inside a tracer's
simulated address space. Element reads and writes through ``[]`` are
recorded as load/store events at exact byte addresses, in the order a
loop nest would touch them (C order of the selection). This is the
workload-facing instrumentation API — the analog of PEBIL's automatic
instrumentation of memory-referencing instructions.

Workload kernels read with ``a[idx]`` and write with ``a[idx] = v``;
both accept the full NumPy indexing language (scalars, slices, fancy
index arrays, boolean masks, multi-dimensional tuples) and the recorded
addresses are always correct because indices are resolved through a
flat index map rather than re-deriving stride arithmetic per case.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.trace.tracer import Region, Tracer


class TracedArray:
    """An ndarray whose element accesses are recorded by a tracer.

    Construct via :meth:`allocate` or :meth:`from_data` (or the
    :meth:`repro.trace.tracer.Tracer.array` convenience).

    Attributes:
        data: the underlying ndarray (access it directly for *untraced*
            reads/writes, e.g. result verification).
        region: the simulated address-space region backing the array.
        tracer: the owning tracer.
    """

    __slots__ = ("data", "region", "tracer", "_index_map")

    def __init__(self, data: np.ndarray, region: Region, tracer: Tracer) -> None:
        if data.nbytes > region.size:
            raise TraceError(
                f"array of {data.nbytes} bytes does not fit region "
                f"{region.name!r} of {region.size} bytes"
            )
        if not data.flags.c_contiguous:
            raise TraceError("TracedArray requires a C-contiguous array")
        self.data = data
        self.region = region
        self.tracer = tracer
        self._index_map: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def allocate(
        cls,
        tracer: Tracer,
        name: str,
        shape,
        dtype=np.float64,
        fill=None,
    ) -> "TracedArray":
        """Allocate a region and a zero/fill-initialized array in it."""
        data = np.zeros(shape, dtype=dtype)
        if fill is not None:
            data[...] = fill
        region = tracer.allocate(name, data.nbytes)
        return cls(data, region, tracer)

    @classmethod
    def from_data(cls, tracer: Tracer, name: str, data: np.ndarray) -> "TracedArray":
        """Wrap a copy of an existing array (contiguous, decoupled from
        the caller's buffer)."""
        data = np.array(data, order="C", copy=True)
        region = tracer.allocate(name, data.nbytes)
        return cls(data, region, tracer)

    # ------------------------------------------------------------------
    # ndarray-ish surface
    # ------------------------------------------------------------------

    @property
    def shape(self):
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def dtype(self):
        """dtype of the underlying array."""
        return self.data.dtype

    @property
    def size(self) -> int:
        """Element count of the underlying array."""
        return self.data.size

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return self.data.itemsize

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TracedArray({self.region.name!r}, shape={self.data.shape}, "
            f"dtype={self.data.dtype}, base=0x{self.region.base:x})"
        )

    # ------------------------------------------------------------------
    # Address resolution
    # ------------------------------------------------------------------

    def _flat_indices(self, key) -> np.ndarray:
        """Flat element indices selected by ``key``, in C order.

        Uses a cached index map so every NumPy indexing form resolves to
        exact flat offsets without reimplementing indexing semantics.
        """
        if self._index_map is None:
            self._index_map = np.arange(self.data.size, dtype=np.int64).reshape(
                self.data.shape
            )
        selected = self._index_map[key]
        return np.atleast_1d(np.asarray(selected)).ravel()

    def addresses_of(self, key) -> np.ndarray:
        """Byte addresses of the elements selected by ``key``."""
        flat = self._flat_indices(key)
        return (
            np.uint64(self.region.base)
            + flat.astype(np.uint64) * np.uint64(self.data.itemsize)
        )

    # ------------------------------------------------------------------
    # Traced access
    # ------------------------------------------------------------------

    def __getitem__(self, key):
        """Traced load: records one load per selected element."""
        if self.tracer.enabled:
            self.tracer.record_loads(self.addresses_of(key), self.data.itemsize)
        return self.data[key]

    def __setitem__(self, key, value) -> None:
        """Traced store: records one store per selected element."""
        if self.tracer.enabled:
            self.tracer.record_stores(self.addresses_of(key), self.data.itemsize)
        self.data[key] = value

    def load(self, key):
        """Alias of ``self[key]`` for call sites where the traced nature
        should be visually explicit."""
        return self[key]

    def store(self, key, value) -> None:
        """Alias of ``self[key] = value``."""
        self[key] = value

    def accumulate(self, key, value) -> None:
        """Traced read-modify-write: ``self[key] += value``.

        Records a load followed by a store per element, which is what
        the corresponding machine code performs.
        """
        if self.tracer.enabled:
            addrs = self.addresses_of(key)
            self.tracer.record_loads(addrs, self.data.itemsize)
            self.tracer.record_stores(addrs, self.data.itemsize)
        self.data[key] += value

    def touch_all(self, is_store: bool = False) -> None:
        """Record a sequential sweep over the whole array (one access per
        element) without moving any data. Useful for modeling phases
        like result write-out."""
        if not self.tracer.enabled:
            return
        flat = np.arange(self.data.size, dtype=np.uint64)
        addrs = np.uint64(self.region.base) + flat * np.uint64(self.data.itemsize)
        self.tracer.record(addrs, self.data.itemsize, int(is_store))

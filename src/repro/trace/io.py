"""Stream and region-map serialization with integrity protection.

Traces are expensive to produce (the workload actually runs), so the
runner can persist them. Two stream formats coexist:

- **v1** — compressed ``.npz`` (struct-of-arrays, loads back
  bit-exact). Compact, but every load decompresses the whole stream
  into private memory and integrity means a second full read to hash
  the file.
- **v2** — the chunked, page-aligned store of
  :mod:`repro.trace.store` (``.rts``). :func:`load_stream` detects it
  by magic and returns a lazy, mmap-backed
  :class:`~repro.trace.store.MappedStream` whose chunks are zero-copy
  views verified incrementally (per-chunk SHA-256 from the header) as
  they are first read.

The tracer's region map is JSON next to the stream. A saved pair is
enough to re-run every design evaluation and the NDM oracle without
re-executing the workload; :func:`load_trace` transparently migrates
v1 cache entries to v2 when asked.

Because long campaigns lean on these artifacts, writes are **atomic**
(temp file in the destination directory + ``os.replace``) and every
artifact gets a SHA-256 sidecar (``<artifact>.sha256``, ``sha256sum``
format). Loading verifies integrity (sidecar for v1, embedded chunk
digests for v2) and re-raises any parse failure as
:class:`~repro.errors.TraceIntegrityError` naming the offending file,
so a half-written or bit-flipped cache entry is detected instead of
silently corrupting an evaluation.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import zipfile
from pathlib import Path

import numpy as np

from repro.errors import TraceError, TraceIntegrityError
from repro.trace.stream import AddressStream
from repro.trace.tracer import Region, Tracer

#: Format marker stored in every stream file.
_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Integrity plumbing
# ----------------------------------------------------------------------


def checksum_path(path: str | Path) -> Path:
    """The SHA-256 sidecar path for an artifact."""
    path = Path(path)
    return path.with_name(path.name + ".sha256")


def compute_checksum(path: str | Path) -> str:
    """SHA-256 hex digest of a file's contents."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via temp file + ``os.replace``.

    Readers never observe a partially written artifact: they see either
    the previous version or the new one.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _write_artifact(path: Path, payload: bytes) -> None:
    """Atomically write an artifact and its SHA-256 sidecar."""
    _atomic_write_bytes(path, payload)
    digest = hashlib.sha256(payload).hexdigest()
    _atomic_write_bytes(
        checksum_path(path), f"{digest}  {path.name}\n".encode()
    )


def verify_artifact(path: str | Path, max_bytes: int | None = None) -> None:
    """Check an artifact against its SHA-256 sidecar.

    Artifacts written before sidecars existed (no ``.sha256`` next to
    them) pass unverified, for backward compatibility.

    Args:
        path: the artifact to verify.
        max_bytes: fast-path knob for callers about to *stream* the
            artifact anyway. Files at or under the limit get the full
            hash as before. Above it, a v2 trace store gets its
            prelude + header digests checked (the chunk payloads then
            verify incrementally as they are read — see
            :class:`~repro.trace.store.MappedStream`), and any other
            format is skipped: the caller accepts deferred detection
            in exchange for not reading a large file twice. ``None``
            (the default) always hashes in full.

    Raises:
        TraceIntegrityError: on digest mismatch or unreadable sidecar.
    """
    path = Path(path)
    if max_bytes is not None:
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        if size > max_bytes:
            from repro.trace.store import is_store_file, verify_store_header

            if is_store_file(path):
                verify_store_header(path)
            return
    sidecar = checksum_path(path)
    if not sidecar.exists():
        return
    try:
        expected = sidecar.read_text().split()[0]
    except (OSError, IndexError) as exc:
        raise TraceIntegrityError(
            f"unreadable checksum sidecar {sidecar}; delete {path} and "
            f"its sidecar, then re-trace"
        ) from exc
    actual = compute_checksum(path)
    if actual != expected:
        raise TraceIntegrityError(
            f"checksum mismatch for {path} (expected {expected[:12]}…, "
            f"got {actual[:12]}…); delete this file and its .sha256 "
            f"sidecar and re-trace the workload"
        )


# ----------------------------------------------------------------------
# Streams
# ----------------------------------------------------------------------


def save_stream(
    stream: AddressStream, path: str | Path, version: int = _FORMAT_VERSION
) -> None:
    """Write a stream to ``path``.

    ``version=1`` (the default, for backward compatibility) writes the
    compressed ``.npz``; ``version=2`` writes the chunked mmap-ready
    store of :mod:`repro.trace.store`. Either way the write is atomic
    (temp file + rename), parent directories are created, and a
    ``.sha256`` sidecar is written alongside.
    """
    if version == 2:
        from repro.trace.store import write_store

        write_store(stream, path)
        return
    if version != _FORMAT_VERSION:
        raise TraceError(f"unsupported stream format version {version}")
    batch = stream.as_batch()
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        version=np.int64(_FORMAT_VERSION),
        addresses=batch.addresses,
        sizes=batch.sizes,
        is_store=batch.is_store,
    )
    _write_artifact(Path(path), buffer.getvalue())


def load_stream(
    path: str | Path, max_verify_bytes: int | None = None
) -> AddressStream:
    """Read a stream written by :func:`save_stream`.

    The format is sniffed from the file's magic, not its name. A v2
    store comes back as a lazy, mmap-backed
    :class:`~repro.trace.store.MappedStream` — zero-copy chunk views,
    per-chunk digests checked as data is first touched (call its
    ``verify()`` to force a full pass up front). A v1 ``.npz`` is
    decompressed into a plain in-memory stream after sidecar
    verification, which ``max_verify_bytes`` can cap (see
    :func:`verify_artifact`).

    Raises:
        TraceError: for missing files or unknown formats.
        TraceIntegrityError: for truncated, bit-flipped, or otherwise
            unparseable files.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no stream file at {path}")
    from repro.trace.store import MappedStream, is_store_file

    if is_store_file(path):
        return MappedStream.open(path)
    verify_artifact(path, max_bytes=max_verify_bytes)
    try:
        with np.load(path) as data:
            version = int(data["version"])
            if version != _FORMAT_VERSION:
                raise TraceError(
                    f"unsupported stream format version {version} in {path}"
                )
            return AddressStream.from_arrays(
                data["addresses"], data["sizes"], data["is_store"]
            )
    except TraceError:
        raise
    except (zipfile.BadZipFile, KeyError, ValueError, OSError, EOFError) as exc:
        raise TraceIntegrityError(
            f"corrupt stream file {path} ({type(exc).__name__}: {exc}); "
            f"delete it and re-trace the workload"
        ) from exc


# ----------------------------------------------------------------------
# Region maps
# ----------------------------------------------------------------------


def save_regions(tracer: Tracer, path: str | Path) -> None:
    """Write a tracer's region map to ``path`` (JSON).

    Atomic (temp file + rename); parent directories are created; a
    ``.sha256`` sidecar is written alongside.
    """
    payload = {
        "version": _FORMAT_VERSION,
        "regions": [
            {"name": r.name, "base": r.base, "size": r.size}
            for r in tracer.regions
        ],
    }
    _write_artifact(Path(path), json.dumps(payload, indent=2).encode())


def load_regions(path: str | Path) -> list[Region]:
    """Read a region map written by :func:`save_regions`.

    Raises:
        TraceError: for missing files or unknown formats.
        TraceIntegrityError: for corrupt/unparseable files.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no region file at {path}")
    verify_artifact(path)
    try:
        payload = json.loads(path.read_text())
        if payload.get("version") != _FORMAT_VERSION:
            raise TraceError(f"unsupported region format in {path}")
        return [
            Region(name=entry["name"], base=entry["base"], size=entry["size"])
            for entry in payload["regions"]
        ]
    except TraceError:
        raise
    except (json.JSONDecodeError, KeyError, TypeError, AttributeError,
            UnicodeDecodeError) as exc:
        raise TraceIntegrityError(
            f"corrupt region file {path} ({type(exc).__name__}: {exc}); "
            f"delete it and re-trace the workload"
        ) from exc


# ----------------------------------------------------------------------
# Paired artifacts
# ----------------------------------------------------------------------


#: Suffix of v2 stream artifacts in a trace pair.
_STREAM_V2 = ".stream.rts"
#: Suffix of v1 stream artifacts in a trace pair.
_STREAM_V1 = ".stream.npz"


def save_trace(stream: AddressStream, tracer: Tracer, directory: str | Path,
               name: str, version: int = 2) -> tuple[Path, Path]:
    """Persist a (stream, regions) pair under ``directory/name.*``.

    Streams default to the v2 mmap-ready store
    (``<name>.stream.rts``); pass ``version=1`` for the legacy
    compressed ``.npz``. A stale stream artifact of the other version
    (and its sidecar) is removed so the pair never becomes ambiguous.

    Returns the two paths written.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if version == 2:
        stream_path = directory / f"{name}{_STREAM_V2}"
        stale = directory / f"{name}{_STREAM_V1}"
    else:
        stream_path = directory / f"{name}{_STREAM_V1}"
        stale = directory / f"{name}{_STREAM_V2}"
    regions_path = directory / f"{name}.regions.json"
    save_stream(stream, stream_path, version=version)
    save_regions(tracer, regions_path)
    for path in (stale, checksum_path(stale)):
        if path.exists():
            path.unlink()
    return stream_path, regions_path


def load_trace(
    directory: str | Path, name: str, migrate: bool = False
) -> tuple[AddressStream, list[Region]]:
    """Load a pair written by :func:`save_trace`.

    Prefers the v2 store when both stream versions exist. With
    ``migrate=True`` a v1-only entry is rewritten as a v2 store on the
    way through (bit-exact event content) and the ``.npz`` plus its
    sidecar are removed, so old caches upgrade themselves the first
    time they are touched.
    """
    directory = Path(directory)
    v2_path = directory / f"{name}{_STREAM_V2}"
    v1_path = directory / f"{name}{_STREAM_V1}"
    stream_path = v2_path if v2_path.exists() else v1_path
    stream = load_stream(stream_path)
    regions = load_regions(directory / f"{name}.regions.json")
    if migrate and stream_path == v1_path:
        from repro.trace.store import MappedStream, write_store

        write_store(stream, v2_path)
        for path in (v1_path, checksum_path(v1_path)):
            if path.exists():
                path.unlink()
        stream = MappedStream.open(v2_path)
    return stream, regions


def discard_trace(directory: str | Path, name: str) -> list[Path]:
    """Delete a saved (stream, regions) pair and sidecars if present.

    Covers both stream versions (``.stream.rts`` and ``.stream.npz``).
    The remediation step for a :class:`TraceIntegrityError`; returns
    the paths actually removed.
    """
    directory = Path(directory)
    removed = []
    for artifact in (
        directory / f"{name}{_STREAM_V2}",
        directory / f"{name}{_STREAM_V1}",
        directory / f"{name}.regions.json",
    ):
        for path in (artifact, checksum_path(artifact)):
            if path.exists():
                path.unlink()
                removed.append(path)
    return removed

"""Stream and region-map serialization with integrity protection.

Traces are expensive to produce (the workload actually runs), so the
runner can persist them: streams as compressed ``.npz`` (struct-of-
arrays, loads back bit-exact) and the tracer's region map as JSON next
to it. A saved pair is enough to re-run every design evaluation and
the NDM oracle without re-executing the workload.

Because long campaigns lean on these artifacts, writes are **atomic**
(temp file in the destination directory + ``os.replace``) and every
artifact gets a SHA-256 sidecar (``<artifact>.sha256``, ``sha256sum``
format). Loading verifies the sidecar and re-raises any parse failure
as :class:`~repro.errors.TraceIntegrityError` naming the offending
file, so a half-written or bit-flipped cache entry is detected instead
of silently corrupting an evaluation.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import zipfile
from pathlib import Path

import numpy as np

from repro.errors import TraceError, TraceIntegrityError
from repro.trace.stream import AddressStream
from repro.trace.tracer import Region, Tracer

#: Format marker stored in every stream file.
_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Integrity plumbing
# ----------------------------------------------------------------------


def checksum_path(path: str | Path) -> Path:
    """The SHA-256 sidecar path for an artifact."""
    path = Path(path)
    return path.with_name(path.name + ".sha256")


def compute_checksum(path: str | Path) -> str:
    """SHA-256 hex digest of a file's contents."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via temp file + ``os.replace``.

    Readers never observe a partially written artifact: they see either
    the previous version or the new one.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _write_artifact(path: Path, payload: bytes) -> None:
    """Atomically write an artifact and its SHA-256 sidecar."""
    _atomic_write_bytes(path, payload)
    digest = hashlib.sha256(payload).hexdigest()
    _atomic_write_bytes(
        checksum_path(path), f"{digest}  {path.name}\n".encode()
    )


def verify_artifact(path: str | Path) -> None:
    """Check an artifact against its SHA-256 sidecar.

    Artifacts written before sidecars existed (no ``.sha256`` next to
    them) pass unverified, for backward compatibility.

    Raises:
        TraceIntegrityError: on digest mismatch or unreadable sidecar.
    """
    path = Path(path)
    sidecar = checksum_path(path)
    if not sidecar.exists():
        return
    try:
        expected = sidecar.read_text().split()[0]
    except (OSError, IndexError) as exc:
        raise TraceIntegrityError(
            f"unreadable checksum sidecar {sidecar}; delete {path} and "
            f"its sidecar, then re-trace"
        ) from exc
    actual = compute_checksum(path)
    if actual != expected:
        raise TraceIntegrityError(
            f"checksum mismatch for {path} (expected {expected[:12]}…, "
            f"got {actual[:12]}…); delete this file and its .sha256 "
            f"sidecar and re-trace the workload"
        )


# ----------------------------------------------------------------------
# Streams
# ----------------------------------------------------------------------


def save_stream(stream: AddressStream, path: str | Path) -> None:
    """Write a stream to ``path`` (.npz, compressed).

    Atomic (temp file + rename); parent directories are created; a
    ``.sha256`` sidecar is written alongside.
    """
    batch = stream.as_batch()
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        version=np.int64(_FORMAT_VERSION),
        addresses=batch.addresses,
        sizes=batch.sizes,
        is_store=batch.is_store,
    )
    _write_artifact(Path(path), buffer.getvalue())


def load_stream(path: str | Path) -> AddressStream:
    """Read a stream written by :func:`save_stream`.

    Raises:
        TraceError: for missing files or unknown formats.
        TraceIntegrityError: for truncated, bit-flipped, or otherwise
            unparseable files (checksum verified when a sidecar exists).
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no stream file at {path}")
    verify_artifact(path)
    try:
        with np.load(path) as data:
            version = int(data["version"])
            if version != _FORMAT_VERSION:
                raise TraceError(
                    f"unsupported stream format version {version} in {path}"
                )
            return AddressStream.from_arrays(
                data["addresses"], data["sizes"], data["is_store"]
            )
    except TraceError:
        raise
    except (zipfile.BadZipFile, KeyError, ValueError, OSError, EOFError) as exc:
        raise TraceIntegrityError(
            f"corrupt stream file {path} ({type(exc).__name__}: {exc}); "
            f"delete it and re-trace the workload"
        ) from exc


# ----------------------------------------------------------------------
# Region maps
# ----------------------------------------------------------------------


def save_regions(tracer: Tracer, path: str | Path) -> None:
    """Write a tracer's region map to ``path`` (JSON).

    Atomic (temp file + rename); parent directories are created; a
    ``.sha256`` sidecar is written alongside.
    """
    payload = {
        "version": _FORMAT_VERSION,
        "regions": [
            {"name": r.name, "base": r.base, "size": r.size}
            for r in tracer.regions
        ],
    }
    _write_artifact(Path(path), json.dumps(payload, indent=2).encode())


def load_regions(path: str | Path) -> list[Region]:
    """Read a region map written by :func:`save_regions`.

    Raises:
        TraceError: for missing files or unknown formats.
        TraceIntegrityError: for corrupt/unparseable files.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no region file at {path}")
    verify_artifact(path)
    try:
        payload = json.loads(path.read_text())
        if payload.get("version") != _FORMAT_VERSION:
            raise TraceError(f"unsupported region format in {path}")
        return [
            Region(name=entry["name"], base=entry["base"], size=entry["size"])
            for entry in payload["regions"]
        ]
    except TraceError:
        raise
    except (json.JSONDecodeError, KeyError, TypeError, AttributeError,
            UnicodeDecodeError) as exc:
        raise TraceIntegrityError(
            f"corrupt region file {path} ({type(exc).__name__}: {exc}); "
            f"delete it and re-trace the workload"
        ) from exc


# ----------------------------------------------------------------------
# Paired artifacts
# ----------------------------------------------------------------------


def save_trace(stream: AddressStream, tracer: Tracer, directory: str | Path,
               name: str) -> tuple[Path, Path]:
    """Persist a (stream, regions) pair under ``directory/name.*``.

    Returns the two paths written.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stream_path = directory / f"{name}.stream.npz"
    regions_path = directory / f"{name}.regions.json"
    save_stream(stream, stream_path)
    save_regions(tracer, regions_path)
    return stream_path, regions_path


def load_trace(directory: str | Path, name: str) -> tuple[AddressStream, list[Region]]:
    """Load a pair written by :func:`save_trace`."""
    directory = Path(directory)
    return (
        load_stream(directory / f"{name}.stream.npz"),
        load_regions(directory / f"{name}.regions.json"),
    )


def discard_trace(directory: str | Path, name: str) -> list[Path]:
    """Delete a saved (stream, regions) pair and sidecars if present.

    The remediation step for a :class:`TraceIntegrityError`; returns
    the paths actually removed.
    """
    directory = Path(directory)
    removed = []
    for artifact in (
        directory / f"{name}.stream.npz",
        directory / f"{name}.regions.json",
    ):
        for path in (artifact, checksum_path(artifact)):
            if path.exists():
                path.unlink()
                removed.append(path)
    return removed

"""Stream and region-map serialization.

Traces are expensive to produce (the workload actually runs), so the
runner can persist them: streams as compressed ``.npz`` (struct-of-
arrays, loads back bit-exact) and the tracer's region map as JSON next
to it. A saved pair is enough to re-run every design evaluation and
the NDM oracle without re-executing the workload.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.trace.stream import AddressStream
from repro.trace.tracer import Region, Tracer

#: Format marker stored in every stream file.
_FORMAT_VERSION = 1


def save_stream(stream: AddressStream, path: str | Path) -> None:
    """Write a stream to ``path`` (.npz, compressed)."""
    batch = stream.as_batch()
    np.savez_compressed(
        Path(path),
        version=np.int64(_FORMAT_VERSION),
        addresses=batch.addresses,
        sizes=batch.sizes,
        is_store=batch.is_store,
    )


def load_stream(path: str | Path) -> AddressStream:
    """Read a stream written by :func:`save_stream`.

    Raises:
        TraceError: for missing files or unknown formats.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no stream file at {path}")
    with np.load(path) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise TraceError(
                f"unsupported stream format version {version} in {path}"
            )
        return AddressStream.from_arrays(
            data["addresses"], data["sizes"], data["is_store"]
        )


def save_regions(tracer: Tracer, path: str | Path) -> None:
    """Write a tracer's region map to ``path`` (JSON)."""
    payload = {
        "version": _FORMAT_VERSION,
        "regions": [
            {"name": r.name, "base": r.base, "size": r.size}
            for r in tracer.regions
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_regions(path: str | Path) -> list[Region]:
    """Read a region map written by :func:`save_regions`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no region file at {path}")
    payload = json.loads(path.read_text())
    if payload.get("version") != _FORMAT_VERSION:
        raise TraceError(f"unsupported region format in {path}")
    return [
        Region(name=entry["name"], base=entry["base"], size=entry["size"])
        for entry in payload["regions"]
    ]


def save_trace(stream: AddressStream, tracer: Tracer, directory: str | Path,
               name: str) -> tuple[Path, Path]:
    """Persist a (stream, regions) pair under ``directory/name.*``.

    Returns the two paths written.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stream_path = directory / f"{name}.stream.npz"
    regions_path = directory / f"{name}.regions.json"
    save_stream(stream, stream_path)
    save_regions(tracer, regions_path)
    return stream_path, regions_path


def load_trace(directory: str | Path, name: str) -> tuple[AddressStream, list[Region]]:
    """Load a pair written by :func:`save_trace`."""
    directory = Path(directory)
    return (
        load_stream(directory / f"{name}.stream.npz"),
        load_regions(directory / f"{name}.regions.json"),
    )

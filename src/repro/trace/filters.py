"""Stream transforms: windowing, sampling, region filtering.

Utilities over :class:`~repro.trace.stream.AddressStream` used by the
phase-aware partitioning study and generally handy when slicing traces.
All transforms preserve event order and are deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.trace.stream import AddressStream


def split_windows(stream: AddressStream, n_windows: int) -> list[AddressStream]:
    """Split a stream into ``n_windows`` equal consecutive windows.

    The last window absorbs the remainder. Empty windows are returned
    as empty streams (a stream shorter than ``n_windows`` yields some).
    """
    if n_windows <= 0:
        raise TraceError("n_windows must be positive")
    total = len(stream)
    window_len = max(1, total // n_windows)
    # Window i covers global event indices [i*len, (i+1)*len), with the
    # final window extended to the end of the stream.
    bounds = [i * window_len for i in range(n_windows)] + [total]
    windows = [AddressStream() for _ in range(n_windows)]
    position = 0
    for chunk in stream.chunks():
        chunk_start, chunk_end = position, position + len(chunk)
        for i in range(n_windows):
            lo = max(bounds[i], chunk_start)
            hi = min(bounds[i + 1], chunk_end)
            if lo < hi:
                sub = chunk.slice(lo - chunk_start, hi - chunk_start)
                windows[i].append(sub.addresses, sub.sizes, sub.is_store)
        position = chunk_end
    return windows


def sample_stream(stream: AddressStream, keep_every: int) -> AddressStream:
    """Keep every ``keep_every``-th event (systematic sampling).

    Useful to bound the cost of expensive analyses (reuse distance) on
    long traces; cache simulation should consume full streams.
    """
    if keep_every <= 0:
        raise TraceError("keep_every must be positive")
    out = AddressStream()
    offset = 0
    for chunk in stream.chunks():
        idx = np.arange((-offset) % keep_every, len(chunk), keep_every)
        if len(idx):
            out.append(
                chunk.addresses[idx], chunk.sizes[idx], chunk.is_store[idx]
            )
        offset = (offset + len(chunk)) % keep_every
    return out


def filter_range(
    stream: AddressStream, start: int, end: int, invert: bool = False
) -> AddressStream:
    """Keep only accesses inside (or, inverted, outside) ``[start, end)``."""
    if end <= start:
        raise TraceError("empty filter range")
    out = AddressStream()
    for chunk in stream.chunks():
        mask = (chunk.addresses >= np.uint64(start)) & (
            chunk.addresses < np.uint64(end)
        )
        if invert:
            mask = ~mask
        if mask.any():
            out.append(
                chunk.addresses[mask], chunk.sizes[mask], chunk.is_store[mask]
            )
    return out


def loads_only(stream: AddressStream) -> AddressStream:
    """Strip stores from a stream."""
    return _filter_kind(stream, 0)


def stores_only(stream: AddressStream) -> AddressStream:
    """Strip loads from a stream."""
    return _filter_kind(stream, 1)


def interleave_streams(
    streams: list[AddressStream], granule: int = 256
) -> AddressStream:
    """Round-robin interleave several streams (multiprogrammed mix).

    Models the reference stream a shared cache level sees when several
    cores run different programs: ``granule`` consecutive events from
    each stream in turn, until all are exhausted. Callers interleaving
    workloads should ensure their address spaces are disjoint (each
    Tracer allocates from the same base) — offset the streams first if
    they are not.
    """
    if not streams:
        raise TraceError("interleave needs at least one stream")
    if granule <= 0:
        raise TraceError("granule must be positive")
    out = AddressStream()
    batches = [s.as_batch() for s in streams]
    positions = [0] * len(streams)
    remaining = sum(len(b) for b in batches)
    while remaining:
        for i, batch in enumerate(batches):
            lo = positions[i]
            if lo >= len(batch):
                continue
            hi = min(lo + granule, len(batch))
            sub = batch.slice(lo, hi)
            out.append(sub.addresses, sub.sizes, sub.is_store)
            positions[i] = hi
            remaining -= hi - lo
    return out


def offset_stream(stream: AddressStream, offset: int) -> AddressStream:
    """Shift every address by ``offset`` bytes (disjoint mixes)."""
    if offset < 0:
        raise TraceError("offset must be non-negative")
    out = AddressStream()
    for chunk in stream.chunks():
        out.append(
            chunk.addresses + np.uint64(offset), chunk.sizes, chunk.is_store
        )
    return out


def _filter_kind(stream: AddressStream, kind: int) -> AddressStream:
    out = AddressStream()
    for chunk in stream.chunks():
        mask = chunk.is_store == kind
        if mask.any():
            out.append(
                chunk.addresses[mask], chunk.sizes[mask], chunk.is_store[mask]
            )
    return out

"""Access-event primitives.

An address stream is a sequence of memory accesses, each described by a
byte address, a size in bytes, and a kind (load or store). For
performance the stream is stored as a struct-of-arrays
(:class:`AccessBatch`), never as per-event Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError

#: Kind code for a load (read) access.
LOAD: int = 0
#: Kind code for a store (write) access.
STORE: int = 1

#: dtype used for byte addresses throughout the package.
ADDR_DTYPE = np.uint64
#: dtype used for access sizes in bytes.
SIZE_DTYPE = np.uint32
#: dtype used for the load/store flag (0 = load, 1 = store).
KIND_DTYPE = np.uint8


@dataclass(frozen=True)
class AccessBatch:
    """A batch of memory accesses in struct-of-arrays layout.

    Attributes:
        addresses: byte addresses, shape ``(n,)``, ``uint64``.
        sizes: access sizes in bytes, shape ``(n,)``, ``uint32``.
        is_store: 1 for stores and 0 for loads, shape ``(n,)``, ``uint8``.
    """

    addresses: np.ndarray
    sizes: np.ndarray
    is_store: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.addresses)
        if len(self.sizes) != n or len(self.is_store) != n:
            raise TraceError(
                "AccessBatch arrays must have equal lengths: "
                f"{n}, {len(self.sizes)}, {len(self.is_store)}"
            )

    def __len__(self) -> int:
        return len(self.addresses)

    @staticmethod
    def empty() -> "AccessBatch":
        """An empty batch."""
        return AccessBatch(
            np.empty(0, dtype=ADDR_DTYPE),
            np.empty(0, dtype=SIZE_DTYPE),
            np.empty(0, dtype=KIND_DTYPE),
        )

    @staticmethod
    def from_lists(addresses, sizes, is_store) -> "AccessBatch":
        """Build a batch from array-likes, coercing dtypes.

        ``sizes`` and ``is_store`` may be scalars, broadcast over all
        addresses.
        """
        addr = np.asarray(addresses, dtype=ADDR_DTYPE)
        size_arr = np.asarray(sizes, dtype=SIZE_DTYPE)
        if size_arr.ndim == 0:
            size_arr = np.full(len(addr), size_arr, dtype=SIZE_DTYPE)
        kind_arr = np.asarray(is_store, dtype=KIND_DTYPE)
        if kind_arr.ndim == 0:
            kind_arr = np.full(len(addr), kind_arr, dtype=KIND_DTYPE)
        return AccessBatch(addr, size_arr, kind_arr)

    def concat(self, other: "AccessBatch") -> "AccessBatch":
        """Concatenate two batches preserving order (self first)."""
        return AccessBatch(
            np.concatenate([self.addresses, other.addresses]),
            np.concatenate([self.sizes, other.sizes]),
            np.concatenate([self.is_store, other.is_store]),
        )

    def slice(self, start: int, stop: int) -> "AccessBatch":
        """A view batch of events ``[start, stop)``."""
        return AccessBatch(
            self.addresses[start:stop],
            self.sizes[start:stop],
            self.is_store[start:stop],
        )

    @property
    def store_count(self) -> int:
        """Number of store events in the batch."""
        return int(np.count_nonzero(self.is_store))

    @property
    def load_count(self) -> int:
        """Number of load events in the batch."""
        return len(self) - self.store_count


def expand_to_lines(batch: AccessBatch, line_size: int) -> tuple[np.ndarray, np.ndarray]:
    """Convert byte accesses into per-cache-line accesses.

    Accesses that span multiple lines (rare: unaligned multi-byte
    accesses) are expanded into one event per touched line, preserving
    stream order.

    Args:
        batch: the byte-granularity accesses.
        line_size: cache line size in bytes (power of two).

    Returns:
        ``(line_addresses, is_store)`` where ``line_addresses`` holds the
        line index (byte address >> log2(line_size)) of every touched
        line in order.
    """
    if len(batch) == 0:
        return (
            np.empty(0, dtype=ADDR_DTYPE),
            np.empty(0, dtype=KIND_DTYPE),
        )
    shift = ADDR_DTYPE.__call__(int(line_size).bit_length() - 1)
    first = batch.addresses >> shift
    # Last byte touched by each access determines the last line touched.
    last_byte = batch.addresses + batch.sizes.astype(ADDR_DTYPE) - ADDR_DTYPE(1)
    last = last_byte >> shift
    spans = (last - first).astype(np.int64)
    if not spans.any():
        return first, batch.is_store
    # General path: repeat each access once per touched line.
    counts = spans + 1
    repeated_first = np.repeat(first, counts)
    # Offsets 0..span within each access.
    total = int(counts.sum())
    offsets = np.arange(total, dtype=np.int64)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    offsets -= np.repeat(starts, counts)
    lines = repeated_first + offsets.astype(ADDR_DTYPE)
    kinds = np.repeat(batch.is_store, counts)
    return lines, kinds

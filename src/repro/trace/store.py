"""The v2 chunked on-disk trace store: mmap-backed, zero-copy reads.

The v1 format (``save_stream``'s compressed ``.npz``) pays for its
compactness three times on every cache hit: the whole file is
decompressed, the decompressed arrays are materialized in private
heap memory, and the integrity sidecar forces a *second* full read
just to hash the bytes. At full-scale (NPB class C/D footprint) trace
lengths that makes the trace layer — not the simulator — the
bottleneck of a sweep campaign.

The v2 store trades disk bytes for time and sharing:

- **Chunked struct-of-arrays layout, uncompressed and page-aligned.**
  Each chunk of the source :class:`~repro.trace.stream.AddressStream`
  is written as three contiguous sections (addresses ``uint64``,
  sizes ``uint32``, kinds ``uint8``) starting on a 4 KiB page
  boundary, so a reader can map them in place.
- **Lazy mmap-backed reads.** :meth:`MappedStream.open` maps the file
  and yields zero-copy NumPy views per chunk; nothing is decompressed
  and no private copy is made. N processes mapping the same store
  share one physical copy through the page cache — the degenerate
  "trace arena" that makes ``--workers N`` sweeps stop paying N× the
  trace footprint (see :mod:`repro.trace.arena`).
- **Incremental integrity.** The header records a SHA-256 per chunk
  (and is itself covered by a digest in the fixed prelude), so
  verification happens chunk-by-chunk as data is first touched — one
  pass over bytes the reader was loading anyway, instead of the
  separate full-file hash ``verify_artifact`` performs on v1
  artifacts. A corrupt chunk raises
  :class:`~repro.errors.TraceIntegrityError` naming the chunk.

File layout::

    [prelude: 64 bytes]
        magic "REPROTRC" | version u32 | flags u32
        | header_offset u64 | header_len u64 | header_sha256 (32 raw)
    [page pad]
    [chunk 0: addresses | sizes | kinds]   (page-aligned)
    [page pad]
    [chunk 1: ...]
    ...
    [header: JSON]                          (at header_offset)

The header lands at the *end* of the file so chunk offsets are known
before it is serialized; the prelude (fixed offset 0) points at it.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import TraceError, TraceIntegrityError
from repro.trace.events import ADDR_DTYPE, KIND_DTYPE, SIZE_DTYPE, AccessBatch
from repro.trace.stream import DEFAULT_CHUNK_EVENTS, AddressStream

#: Magic bytes opening every v2 store file.
STORE_MAGIC: bytes = b"REPROTRC"
#: On-disk format version written by :func:`write_store`.
STORE_VERSION: int = 2
#: Chunk sections start on this boundary (one OS page) so mmap views
#: are page-aligned.
PAGE: int = 4096
#: Conventional file suffix for v2 stores (detection is by magic, not
#: by name).
STORE_SUFFIX: str = ".rts"

#: Prelude: magic, version, flags, header_offset, header_len,
#: header_sha256 (raw digest).
_PRELUDE = struct.Struct("<8sIIQQ32s")

#: Bytes per event across the three sections (8 + 4 + 1).
_EVENT_BYTES: int = (
    np.dtype(ADDR_DTYPE).itemsize
    + np.dtype(SIZE_DTYPE).itemsize
    + np.dtype(KIND_DTYPE).itemsize
)


def _page_align(offset: int) -> int:
    return (offset + PAGE - 1) // PAGE * PAGE


@dataclass(frozen=True)
class ChunkRecord:
    """Header record locating and protecting one chunk.

    Attributes:
        events: number of accesses in the chunk.
        offset: file offset of the chunk's address section (page
            aligned; sizes and kinds follow contiguously).
        sha256: hex digest of the chunk's raw bytes
            (addresses ‖ sizes ‖ kinds).
    """

    events: int
    offset: int
    sha256: str

    @property
    def nbytes(self) -> int:
        """Raw payload bytes of the chunk."""
        return self.events * _EVENT_BYTES


def is_store_file(path: str | Path) -> bool:
    """True when ``path`` exists and starts with the v2 store magic."""
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            return handle.read(len(STORE_MAGIC)) == STORE_MAGIC
    except OSError:
        return False


def write_store(stream: AddressStream, path: str | Path) -> Path:
    """Write ``stream`` to ``path`` in the v2 chunked store format.

    Atomic (temp file in the destination directory + ``os.replace``)
    and bit-exact: the source stream's chunk boundaries are preserved,
    so a replay through :class:`MappedStream` batches identically to a
    replay of the original. A whole-file ``.sha256`` sidecar is still
    written (computed incrementally during the single write pass) so
    external ``sha256sum -c`` tooling keeps working; readers use the
    per-chunk digests instead.

    Returns the path written.
    """
    from repro.trace.io import _atomic_write_bytes, checksum_path

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    file_digest = hashlib.sha256()
    try:
        with os.fdopen(fd, "wb") as handle:

            def emit(payload: bytes) -> None:
                handle.write(payload)
                file_digest.update(payload)

            # Prelude placeholder; rewritten (and re-hashed) below.
            emit(b"\0" * _PRELUDE.size)
            position = _PRELUDE.size
            records: list[ChunkRecord] = []
            for chunk in stream.chunks():
                start = _page_align(position)
                emit(b"\0" * (start - position))
                chunk_digest = hashlib.sha256()
                sections = (
                    np.ascontiguousarray(chunk.addresses, dtype=ADDR_DTYPE),
                    np.ascontiguousarray(chunk.sizes, dtype=SIZE_DTYPE),
                    np.ascontiguousarray(chunk.is_store, dtype=KIND_DTYPE),
                )
                for section in sections:
                    payload = section.tobytes()
                    chunk_digest.update(payload)
                    emit(payload)
                records.append(ChunkRecord(
                    events=len(chunk), offset=start,
                    sha256=chunk_digest.hexdigest(),
                ))
                position = start + records[-1].nbytes
            header_offset = _page_align(position)
            emit(b"\0" * (header_offset - position))
            header = json.dumps({
                "events": sum(r.events for r in records),
                "chunk_events": getattr(
                    stream, "_chunk_events", DEFAULT_CHUNK_EVENTS
                ),
                "chunks": [
                    {"events": r.events, "offset": r.offset,
                     "sha256": r.sha256}
                    for r in records
                ],
            }, sort_keys=True).encode()
            emit(header)
            prelude = _PRELUDE.pack(
                STORE_MAGIC, STORE_VERSION, 0,
                header_offset, len(header),
                hashlib.sha256(header).digest(),
            )
            handle.seek(0)
            handle.write(prelude)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    # The placeholder prelude entered the running digest; splice the
    # real prelude in by re-hashing only the fixed-size head.
    digest = hashlib.sha256(prelude)
    with open(path, "rb") as handle:
        handle.seek(_PRELUDE.size)
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    _atomic_write_bytes(
        checksum_path(path), f"{digest.hexdigest()}  {path.name}\n".encode()
    )
    return path


def _read_header(path: Path) -> tuple[dict, list[ChunkRecord]]:
    """Parse and integrity-check a store's prelude + header.

    Raises:
        TraceError: not a v2 store / unsupported version.
        TraceIntegrityError: truncated or corrupt prelude/header.
    """
    try:
        size = path.stat().st_size
        with open(path, "rb") as handle:
            raw = handle.read(_PRELUDE.size)
            if len(raw) < _PRELUDE.size:
                raise TraceIntegrityError(
                    f"truncated trace store {path} ({len(raw)} bytes); "
                    f"delete it and re-trace the workload"
                )
            magic, version, _flags, header_offset, header_len, digest = (
                _PRELUDE.unpack(raw)
            )
            if magic != STORE_MAGIC:
                raise TraceError(f"{path} is not a v2 trace store")
            if version != STORE_VERSION:
                raise TraceError(
                    f"unsupported trace store version {version} in {path}"
                )
            if header_offset + header_len > size:
                raise TraceIntegrityError(
                    f"truncated trace store {path} (header past EOF); "
                    f"delete it and re-trace the workload"
                )
            handle.seek(header_offset)
            header_raw = handle.read(header_len)
    except OSError as exc:
        raise TraceIntegrityError(
            f"unreadable trace store {path} ({exc}); delete it and "
            f"re-trace the workload"
        ) from exc
    if hashlib.sha256(header_raw).digest() != digest:
        raise TraceIntegrityError(
            f"corrupt trace store header in {path} (digest mismatch); "
            f"delete it and its .sha256 sidecar, then re-trace"
        )
    try:
        header = json.loads(header_raw)
        records = [
            ChunkRecord(events=int(c["events"]), offset=int(c["offset"]),
                        sha256=str(c["sha256"]))
            for c in header["chunks"]
        ]
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise TraceIntegrityError(
            f"corrupt trace store header in {path} "
            f"({type(exc).__name__}: {exc}); delete it and re-trace"
        ) from exc
    for record in records:
        if record.offset + record.nbytes > size:
            raise TraceIntegrityError(
                f"truncated trace store {path} (chunk at offset "
                f"{record.offset} past EOF); delete it and re-trace"
            )
    return header, records


def verify_store_header(path: str | Path) -> int:
    """Check a store's prelude + header digests without touching data.

    The cheap half of incremental verification: chunk payloads verify
    lazily as they are first read. Returns the event count recorded in
    the header.
    """
    header, _records = _read_header(Path(path))
    return int(header["events"])


class MappedStream(AddressStream):
    """A read-only :class:`AddressStream` backed by an mmap'd v2 store.

    :meth:`chunks` yields zero-copy NumPy views over the mapped file;
    each chunk's SHA-256 is checked once, on first touch, against the
    header record (incremental verification). The stream supports the
    whole consumption API (``len``, :meth:`stats`, :meth:`as_batch`,
    :meth:`head`, ...) but not :meth:`append` — recording belongs to
    in-memory streams.

    Pickling a :class:`MappedStream` serializes only the path; the
    receiving process re-opens (and re-maps) the store, which is what
    makes the file-backed trace arena handle a one-liner.
    """

    def __init__(self, path: str | Path) -> None:
        path = Path(path)
        header, records = _read_header(path)
        self._path = path
        self._records = records
        self._chunk_events = int(header.get(
            "chunk_events", DEFAULT_CHUNK_EVENTS
        ))
        self._events = int(header["events"])
        self._verified = [False] * len(records)
        handle = open(path, "rb")
        try:
            if records:
                self._mm: mmap.mmap | None = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
            else:
                self._mm = None  # cannot map an effectively-empty payload
        finally:
            handle.close()

    # -- construction ---------------------------------------------------

    @classmethod
    def open(cls, path: str | Path) -> "MappedStream":
        """Map a store written by :func:`write_store`."""
        return cls(path)

    def __reduce__(self):
        return (MappedStream, (str(self._path),))

    # -- consumption ----------------------------------------------------

    @property
    def path(self) -> Path:
        """The mapped store file."""
        return self._path

    def __len__(self) -> int:
        return self._events

    @property
    def nbytes(self) -> int:
        """Payload bytes of the mapped chunks.

        This is *mapped*, not resident, memory: pages are shared
        file-backed and cost nothing per additional process.
        """
        return sum(record.nbytes for record in self._records)

    def _chunk_view(self, index: int) -> AccessBatch:
        record = self._records[index]
        n = record.events
        mm = self._mm
        assert mm is not None
        if not self._verified[index]:
            payload = memoryview(mm)[
                record.offset : record.offset + record.nbytes
            ]
            if hashlib.sha256(payload).hexdigest() != record.sha256:
                raise TraceIntegrityError(
                    f"corrupt trace store chunk {index} (offset "
                    f"{record.offset}) in {self._path}; delete this file "
                    f"and its .sha256 sidecar and re-trace the workload"
                )
            self._verified[index] = True
        addr_off = record.offset
        size_off = addr_off + n * np.dtype(ADDR_DTYPE).itemsize
        kind_off = size_off + n * np.dtype(SIZE_DTYPE).itemsize
        return AccessBatch(
            np.frombuffer(mm, dtype=ADDR_DTYPE, count=n, offset=addr_off),
            np.frombuffer(mm, dtype=SIZE_DTYPE, count=n, offset=size_off),
            np.frombuffer(mm, dtype=KIND_DTYPE, count=n, offset=kind_off),
        )

    def chunks(self) -> Iterator[AccessBatch]:
        """Zero-copy chunk views in stream order (verified on first
        touch)."""
        for index in range(len(self._records)):
            yield self._chunk_view(index)

    def verify(self) -> None:
        """Force verification of every chunk (one sequential pass)."""
        for index in range(len(self._records)):
            self._chunk_view(index)

    def materialize(self) -> AddressStream:
        """Copy the mapped data into a plain in-memory stream."""
        out = AddressStream(chunk_events=self._chunk_events)
        for chunk in self.chunks():
            out.append(chunk.addresses, chunk.sizes, chunk.is_store)
        return out

    # -- recording (unsupported) ----------------------------------------

    def append(self, addresses, sizes, is_store) -> None:
        raise TraceError(
            f"mmap-backed stream {self._path} is read-only; call "
            f"materialize() for an appendable copy"
        )

    def _flush(self) -> None:  # pragma: no cover - nothing buffered
        pass

    def close(self) -> None:
        """Release the mapping (views created earlier become invalid)."""
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:
                # Live views still reference the map; the OS reclaims
                # it when they are garbage collected.
                pass
            else:
                self._mm = None

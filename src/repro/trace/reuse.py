"""Reuse-distance and working-set analysis of address streams.

These analyses validate that the instrumented workload kernels have the
locality signature the paper's benchmarks are chosen for (e.g. the CG
gather is irregular, the BT sweep is strided) and support sizing the
scaled experiments: a cache of capacity C (in lines) hits every access
whose LRU reuse distance is < C / associativity-conflicts, so the reuse
CDF predicts hit rates across the whole capacity sweep at once.

Two implementations are provided:

- :func:`reuse_distances` — the default, a fully vectorized offline
  divide-and-conquer (CDQ) pass. The per-access stack distance is
  rewritten as a difference of two *prefix rank counts* over the
  previous-occurrence array, and every (point, query) pair is counted
  at exactly one merge level, so the whole trace resolves in
  O(log n) numpy sorts instead of a per-access Python loop.
- :func:`reuse_distances_fenwick` — the original Bennett–Kruskal
  Fenwick-tree loop, kept as the bit-exact reference for differential
  tests and the `bench_reuse_profile` microbenchmark.
"""

from __future__ import annotations

import numpy as np

from repro.trace.stream import AddressStream

#: Reuse distance reported for cold (first-touch) accesses.
COLD_DISTANCE: int = -1


def previous_occurrences(lines: np.ndarray) -> np.ndarray:
    """Index of the previous access to the same line, -1 for first touch.

    The backbone of the vectorized distance pass: one stable argsort
    groups accesses by line in time order, so each access's predecessor
    is simply its left neighbour within the group.
    """
    n = len(lines)
    prev = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return prev
    order = np.argsort(lines, kind="stable")
    grouped = lines[order]
    same = grouped[1:] == grouped[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def _prefix_rank_counts(
    values: np.ndarray, query_pos: np.ndarray, query_vals: np.ndarray
) -> np.ndarray:
    """``out[k] = #{j < query_pos[k] : values[j] <= query_vals[k]}``.

    Offline 2-D dominance counting, fully vectorized: at merge level
    ``w`` the positions split into blocks of width ``w``, and queries
    in odd blocks count the points in their pair's even block. Every
    (j < m) pair lands in exactly one level — the one where the two
    positions' blocks first merge — so the counts are exact.

    Block membership is purely positional, so each level's even-block
    points are a reshape slice (no boolean gather), sorted *per row*
    (O(n log w) instead of a full O(n log n) sort per level), and the
    flat row offsets are ``pair * w`` by construction — queries need a
    single ``searchsorted`` against pair-offset keys, not a lower and
    an upper one.
    """
    n = len(values)
    q = len(query_pos)
    out = np.zeros(q, dtype=np.int64)
    if n == 0 or q == 0:
        return out
    # Shift values so the smallest (COLD_DISTANCE's -1) maps to 0 and
    # keys within a pair stay in [pair*M, pair*M + M). The pad
    # sentinel M-1 exceeds every shifted query value, so padding rows
    # to equal width never perturbs a count.
    m_span = np.int64(n + 2)
    vals = values.astype(np.int64) + 1
    qvals = query_vals.astype(np.int64) + 1
    qpos = query_pos.astype(np.int64)
    for shift in range(max(1, n - 1).bit_length()):
        qblock = qpos >> shift
        odd = (qblock & 1) == 1
        if not odd.any():
            continue
        w = 1 << shift
        period = 2 * w
        pairs = (n + period - 1) // period
        padded = np.full(pairs * period, m_span - 1, dtype=np.int64)
        padded[:n] = vals
        rows = np.sort(padded.reshape(pairs, period)[:, :w], axis=1)
        qpair = qblock[odd] >> 1
        rows += (np.arange(pairs, dtype=np.int64) * m_span)[:, None]
        hi = np.searchsorted(
            rows.reshape(-1), qpair * m_span + qvals[odd], side="right"
        )
        out[odd] += hi - qpair * w
    return out


def _distances_run_heads(lines: np.ndarray) -> np.ndarray:
    """Stack distances for a stream with no immediate repeats."""
    n = len(lines)
    distances = np.full(n, COLD_DISTANCE, dtype=np.int64)
    if n == 0:
        return distances
    prev = previous_occurrences(lines)
    warm = np.flatnonzero(prev >= 0)
    if len(warm) == 0:
        return distances
    p = prev[warm]
    distances[warm] = _prefix_rank_counts(prev, warm, p) - (p + 1)
    return distances


def distances_for_lines(lines: np.ndarray) -> np.ndarray:
    """LRU stack distance of every access, given per-access line ids.

    The distance of access ``i`` with previous occurrence ``p`` is the
    number of distinct lines in ``(p, i)`` — the count of accesses
    ``j`` in that window that are the *first* touch of their line
    within it, i.e. with ``prev[j] <= p``. Splitting the window at
    ``p``: the count up to ``p`` is exactly ``p + 1`` (``prev[j] < j``
    always), so one prefix rank count per warm access suffices.

    Immediate repeats of the preceding line are collapsed before the
    dominance pass: a repeat has distance 0 by definition and never
    adds a distinct line to any other access's window, so only run
    heads go through the full computation. At page granularity
    high-locality streams collapse substantially — the same run
    structure the exact engine's run-collapse path exploits.
    """
    n = len(lines)
    if n == 0:
        return np.full(0, COLD_DISTANCE, dtype=np.int64)
    head = np.empty(n, dtype=bool)
    head[0] = True
    np.not_equal(lines[1:], lines[:-1], out=head[1:])
    if head.all():
        return _distances_run_heads(lines)
    distances = np.zeros(n, dtype=np.int64)  # repeats: distance 0
    idx = np.flatnonzero(head)
    distances[idx] = _distances_run_heads(lines[idx])
    return distances


def _line_shift(line_size: int) -> np.uint64:
    return np.uint64(int(line_size).bit_length() - 1)


def reuse_distances(stream: AddressStream, line_size: int = 64) -> np.ndarray:
    """LRU stack (reuse) distance of every access, at line granularity.

    The reuse distance of an access is the number of *distinct* lines
    touched since the previous access to the same line; cold misses get
    :data:`COLD_DISTANCE`.

    Vectorized offline implementation (see the module docstring);
    bit-identical to :func:`reuse_distances_fenwick`.

    Returns:
        int64 array of per-access distances.
    """
    batch = stream.as_batch()
    lines = (batch.addresses >> _line_shift(line_size)).astype(np.int64)
    return distances_for_lines(lines)


def reuse_distances_fenwick(
    stream: AddressStream, line_size: int = 64
) -> np.ndarray:
    """Reference Bennett–Kruskal implementation (per-access Fenwick loop).

    A Fenwick (binary indexed) tree over access timestamps holds a 1 at
    each line's most-recent access time; the stack distance of an
    access at time t to a line last touched at t_prev is the number of
    ones in (t_prev, t). O(log n) per access but pure Python per
    update — kept as the differential-test oracle and microbenchmark
    baseline for :func:`reuse_distances`.
    """
    shift = _line_shift(line_size)
    n = len(stream)
    distances = np.empty(n, dtype=np.int64)
    tree = np.zeros(n + 2, dtype=np.int64)  # Fenwick, 1-indexed times

    def add(i: int, delta: int) -> None:
        i += 1
        while i < len(tree):
            tree[i] += delta
            i += i & (-i)

    def prefix(i: int) -> int:
        i += 1
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return int(total)

    last_time: dict[int, int] = {}
    t = 0
    live = 0  # ones currently in the tree == distinct lines seen
    for chunk in stream.chunks():
        for line in (chunk.addresses >> shift).tolist():
            prev = last_time.get(line)
            if prev is None:
                distances[t] = COLD_DISTANCE
                live += 1
            else:
                # ones strictly after prev == live - prefix(prev)
                distances[t] = live - prefix(prev)
                add(prev, -1)
            add(t, 1)
            last_time[line] = t
            t += 1
    return distances


def hit_rate_at_capacity(distances: np.ndarray, capacity_lines: int) -> float:
    """Fully-associative LRU hit rate predicted by a reuse profile.

    An access hits a fully-associative LRU cache of ``capacity_lines``
    iff its reuse distance is in ``[0, capacity_lines)``.
    """
    if len(distances) == 0:
        return 0.0
    hits = np.count_nonzero((distances >= 0) & (distances < capacity_lines))
    return hits / len(distances)


def working_set_curve(
    stream: AddressStream,
    window_sizes: list[int],
    line_size: int = 64,
) -> dict[int, float]:
    """Average working-set size (distinct lines) per window size.

    Denning's working set W(t, τ): for each window of τ consecutive
    accesses, count distinct lines; average over non-overlapping
    windows.

    Returns:
        Mapping window size -> mean distinct line count.
    """
    shift = _line_shift(line_size)
    batch = stream.as_batch()
    lines = batch.addresses >> shift
    result: dict[int, float] = {}
    n = len(lines)
    for tau in window_sizes:
        if tau <= 0 or n == 0:
            result[tau] = 0.0
            continue
        counts = []
        for start in range(0, n - tau + 1, tau):
            counts.append(len(np.unique(lines[start : start + tau])))
        if not counts:  # stream shorter than one window
            counts = [len(np.unique(lines))]
        result[tau] = float(np.mean(counts))
    return result


def footprint_lines(stream: AddressStream, line_size: int = 64) -> int:
    """Total number of distinct lines the stream touches."""
    shift = _line_shift(line_size)
    seen: set[int] = set()
    for chunk in stream.chunks():
        seen.update(np.unique(chunk.addresses >> shift).tolist())
    return len(seen)

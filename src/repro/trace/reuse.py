"""Reuse-distance and working-set analysis of address streams.

These analyses validate that the instrumented workload kernels have the
locality signature the paper's benchmarks are chosen for (e.g. the CG
gather is irregular, the BT sweep is strided) and support sizing the
scaled experiments: a cache of capacity C (in lines) hits every access
whose LRU reuse distance is < C / associativity-conflicts, so the reuse
CDF predicts hit rates across the whole capacity sweep at once.
"""

from __future__ import annotations

import numpy as np

from repro.trace.stream import AddressStream

#: Reuse distance reported for cold (first-touch) accesses.
COLD_DISTANCE: int = -1


def reuse_distances(stream: AddressStream, line_size: int = 64) -> np.ndarray:
    """LRU stack (reuse) distance of every access, at line granularity.

    The reuse distance of an access is the number of *distinct* lines
    touched since the previous access to the same line; cold misses get
    :data:`COLD_DISTANCE`.

    Implementation: the Bennett–Kruskal algorithm — a Fenwick (binary
    indexed) tree over access timestamps holds a 1 at each line's
    most-recent access time; the stack distance of an access at time t
    to a line last touched at time t_prev is the number of ones in
    (t_prev, t), i.e. the count of distinct lines touched in between.
    O(log n) per access, so full multi-million-event traces are
    analyzable directly.

    Returns:
        int64 array of per-access distances.
    """
    shift = np.uint64(int(line_size).bit_length() - 1)
    n = len(stream)
    distances = np.empty(n, dtype=np.int64)
    tree = np.zeros(n + 2, dtype=np.int64)  # Fenwick, 1-indexed times

    def add(i: int, delta: int) -> None:
        i += 1
        while i < len(tree):
            tree[i] += delta
            i += i & (-i)

    def prefix(i: int) -> int:
        i += 1
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return int(total)

    last_time: dict[int, int] = {}
    t = 0
    live = 0  # ones currently in the tree == distinct lines seen
    for chunk in stream.chunks():
        for line in (chunk.addresses >> shift).tolist():
            prev = last_time.get(line)
            if prev is None:
                distances[t] = COLD_DISTANCE
                live += 1
            else:
                # ones strictly after prev == live - prefix(prev)
                distances[t] = live - prefix(prev)
                add(prev, -1)
            add(t, 1)
            last_time[line] = t
            t += 1
    return distances


def hit_rate_at_capacity(distances: np.ndarray, capacity_lines: int) -> float:
    """Fully-associative LRU hit rate predicted by a reuse profile.

    An access hits a fully-associative LRU cache of ``capacity_lines``
    iff its reuse distance is in ``[0, capacity_lines)``.
    """
    if len(distances) == 0:
        return 0.0
    hits = np.count_nonzero((distances >= 0) & (distances < capacity_lines))
    return hits / len(distances)


def working_set_curve(
    stream: AddressStream,
    window_sizes: list[int],
    line_size: int = 64,
) -> dict[int, float]:
    """Average working-set size (distinct lines) per window size.

    Denning's working set W(t, τ): for each window of τ consecutive
    accesses, count distinct lines; average over non-overlapping
    windows.

    Returns:
        Mapping window size -> mean distinct line count.
    """
    shift = np.uint64(int(line_size).bit_length() - 1)
    batch = stream.as_batch()
    lines = batch.addresses >> shift
    result: dict[int, float] = {}
    n = len(lines)
    for tau in window_sizes:
        if tau <= 0 or n == 0:
            result[tau] = 0.0
            continue
        counts = []
        for start in range(0, n - tau + 1, tau):
            counts.append(len(np.unique(lines[start : start + tau])))
        if not counts:  # stream shorter than one window
            counts = [len(np.unique(lines))]
        result[tau] = float(np.mean(counts))
    return result


def footprint_lines(stream: AddressStream, line_size: int = 64) -> int:
    """Total number of distinct lines the stream touches."""
    shift = np.uint64(int(line_size).bit_length() - 1)
    seen: set[int] = set()
    for chunk in stream.chunks():
        seen.update(np.unique(chunk.addresses >> shift).tolist())
    return len(seen)

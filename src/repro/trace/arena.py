"""Shared trace arena: one physical trace copy across N sweep workers.

A ``--workers N`` sweep used to pay the trace footprint N+1 times —
every worker re-loaded (or was forked holding) its own private copy of
each workload's post-trace stream. The arena inverts that: the parent
materializes each workload's trace **once** into a sharable medium and
ships workers only a tiny picklable :class:`TraceHandle`; workers
attach in place and never copy.

Two media, chosen per trace:

- ``file`` — the v2 mmap store itself (:mod:`repro.trace.store`).
  When the trace is already a :class:`~repro.trace.store.MappedStream`
  (the disk-cache hit path) the handle is literally its path: every
  worker maps the same file and the page cache keeps one physical
  copy. Traces without a backing store are spooled to a store file in
  a temp directory the arena owns.
- ``shm`` — a ``multiprocessing.shared_memory`` segment holding the
  chunk sections back-to-back. RAM-resident and filesystem-free, for
  hosts where spooling is undesirable; the same struct-of-arrays
  layout, attached as zero-copy views.

Chunk boundaries are preserved exactly, so a worker's replay batches
bit-identically to a replay of the original stream. The parent is
responsible for lifetime: :meth:`TraceArena.close` unlinks shm
segments and removes spooled files after the sweep drains.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import TraceError
from repro.trace.events import ADDR_DTYPE, KIND_DTYPE, SIZE_DTYPE, AccessBatch
from repro.trace.stream import DEFAULT_CHUNK_EVENTS, AddressStream
from repro.trace.tracer import Region

_ADDR_ITEM = np.dtype(ADDR_DTYPE).itemsize
_SIZE_ITEM = np.dtype(SIZE_DTYPE).itemsize
_KIND_ITEM = np.dtype(KIND_DTYPE).itemsize


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def _chunk_offsets(chunk_lengths: tuple[int, ...]) -> list[int]:
    """Start offset of each chunk block in the shm layout.

    Blocks are laid out back-to-back, each starting 8-byte aligned so
    the ``uint64`` address section is always properly aligned.
    """
    offsets = []
    position = 0
    for n in chunk_lengths:
        position = _align8(position)
        offsets.append(position)
        position += n * (_ADDR_ITEM + _SIZE_ITEM + _KIND_ITEM)
    return offsets


def _arena_bytes(chunk_lengths: tuple[int, ...]) -> int:
    """Total shm segment size for the given chunk lengths."""
    if not chunk_lengths:
        return 0
    offsets = _chunk_offsets(chunk_lengths)
    last = chunk_lengths[-1]
    return offsets[-1] + last * (_ADDR_ITEM + _SIZE_ITEM + _KIND_ITEM)


def _attached_shared_memory_cls():
    """Subclass of ``SharedMemory`` whose close tolerates live views.

    Zero-copy chunk views pin the underlying mmap; the stock
    ``close()`` (also called from ``__del__``) raises ``BufferError``
    while any view is alive. For attach-side segments that is
    harmless — the OS reclaims the mapping when the views go away —
    so swallow it instead of spraying "Exception ignored" noise.
    """
    from multiprocessing import shared_memory

    class _AttachedSharedMemory(shared_memory.SharedMemory):
        def close(self):
            try:
                super().close()
            except BufferError:
                pass

    return _AttachedSharedMemory


def _AttachedSharedMemory(name: str):
    return _attached_shared_memory_cls()(name=name)


class SharedStream(AddressStream):
    """A read-only :class:`AddressStream` over an attached shm segment.

    Chunks are zero-copy views into the shared buffer; the segment
    stays attached for the stream's lifetime (the publishing parent
    unlinks it after the sweep).
    """

    def __init__(self, shm, chunk_lengths: tuple[int, ...],
                 chunk_events: int) -> None:
        self._shm = shm
        self._chunk_lengths = tuple(int(n) for n in chunk_lengths)
        self._offsets = _chunk_offsets(self._chunk_lengths)
        self._chunk_events = int(chunk_events)
        self._events = sum(self._chunk_lengths)

    def __len__(self) -> int:
        return self._events

    @property
    def nbytes(self) -> int:
        """Bytes of the shared segment this stream reads.

        Shared, not private: the cost is paid once regardless of how
        many workers attach.
        """
        return _arena_bytes(self._chunk_lengths)

    def chunks(self) -> Iterator[AccessBatch]:
        buf = self._shm.buf
        for n, start in zip(self._chunk_lengths, self._offsets):
            addr_off = start
            size_off = addr_off + n * _ADDR_ITEM
            kind_off = size_off + n * _SIZE_ITEM
            arrays = (
                np.frombuffer(buf, dtype=ADDR_DTYPE, count=n, offset=addr_off),
                np.frombuffer(buf, dtype=SIZE_DTYPE, count=n, offset=size_off),
                np.frombuffer(buf, dtype=KIND_DTYPE, count=n, offset=kind_off),
            )
            for array in arrays:
                array.flags.writeable = False
            yield AccessBatch(*arrays)

    def append(self, addresses, sizes, is_store) -> None:
        raise TraceError(
            "arena-attached stream is read-only; materialize a copy to "
            "append"
        )

    def _flush(self) -> None:  # pragma: no cover - nothing buffered
        pass


@dataclass(frozen=True)
class TraceHandle:
    """Picklable reference to one published trace.

    This — not the trace — is what crosses the process boundary: a few
    hundred bytes naming either a v2 store file or an shm segment,
    plus the chunk lengths needed to rebuild zero-copy views and the
    tracer regions needed by the NDM oracle.
    """

    workload: str
    kind: str  # "file" | "shm"
    locator: str  # store path (file) or segment name (shm)
    chunk_lengths: tuple[int, ...]
    chunk_events: int
    regions: tuple[Region, ...]

    @property
    def events(self) -> int:
        """Total accesses in the published trace."""
        return sum(self.chunk_lengths)

    def attach(self) -> tuple[AddressStream, list[Region]]:
        """Open the published trace without copying it.

        ``file`` handles mmap the store (chunk digests already
        verified by the publisher, so attachment skips re-hashing);
        ``shm`` handles attach the segment and wrap it in a
        :class:`SharedStream`.
        """
        if self.kind == "file":
            from repro.trace.store import MappedStream

            stream: AddressStream = MappedStream.open(self.locator)
            # Publisher verified the payload; don't re-hash per worker.
            stream._verified = [True] * len(stream._verified)
        elif self.kind == "shm":
            # Attaching re-registers the segment with the resource
            # tracker (no track=False before 3.13). Fork and spawn
            # children both inherit the publishing parent's tracker
            # (spawn passes its fd in the preparation data), whose
            # registration cache is a set — the duplicate collapses,
            # and the parent's unlink unregisters it exactly once. Do
            # NOT unregister here: that would strip the shared
            # tracker's one registration out from under the publisher.
            shm = _AttachedSharedMemory(name=self.locator)
            stream = SharedStream(shm, self.chunk_lengths, self.chunk_events)
        else:
            raise TraceError(f"unknown trace arena handle kind {self.kind!r}")
        return stream, list(self.regions)


@dataclass
class TraceArena:
    """Parent-side registry of published traces.

    Args:
        prefer: ``"auto"`` (file for mmap-backed streams, shm for
            in-memory ones), ``"file"`` (always spool to a v2 store),
            or ``"shm"`` (always copy into shared memory).
        spool_dir: directory for spooled store files; a private temp
            directory (removed on :meth:`close`) when unset.
    """

    prefer: str = "auto"
    spool_dir: str | None = None
    _handles: dict[str, TraceHandle] = field(default_factory=dict)
    _segments: list = field(default_factory=list)
    _tempdir: str | None = None

    def publish(self, workload: str, stream: AddressStream,
                regions: list[Region] | tuple[Region, ...]) -> TraceHandle:
        """Make one workload's trace attachable by workers.

        Idempotent per workload name; returns the (cached) handle.
        """
        if workload in self._handles:
            return self._handles[workload]
        if self.prefer not in ("auto", "file", "shm"):
            raise TraceError(f"unknown arena preference {self.prefer!r}")
        from repro.trace.store import MappedStream

        chunks = list(stream.chunks())
        chunk_lengths = tuple(len(c) for c in chunks)
        chunk_events = getattr(stream, "_chunk_events", DEFAULT_CHUNK_EVENTS)
        if isinstance(stream, MappedStream) and self.prefer in ("auto", "file"):
            stream.verify()  # workers attach unverified; verify once here
            handle = TraceHandle(
                workload=workload, kind="file", locator=str(stream.path),
                chunk_lengths=chunk_lengths, chunk_events=chunk_events,
                regions=tuple(regions),
            )
        elif self.prefer in ("auto", "shm") and self._shm_fits(stream.nbytes):
            handle = self._publish_shm(
                workload, chunks, chunk_lengths, chunk_events, regions
            )
        else:
            handle = self._publish_file(
                workload, stream, chunk_lengths, chunk_events, regions
            )
        self._handles[workload] = handle
        return handle

    @property
    def handles(self) -> dict[str, TraceHandle]:
        """Published handles keyed by workload name."""
        return dict(self._handles)

    def _shm_fits(self, nbytes: int) -> bool:
        """Shared memory is usable and has headroom for ``nbytes``."""
        try:
            from multiprocessing import shared_memory  # noqa: F401

            free = shutil.disk_usage("/dev/shm").free
        except (ImportError, OSError):
            return False
        # Leave half the free shm space for everyone else.
        return nbytes <= free // 2

    def _publish_shm(self, workload, chunks, chunk_lengths, chunk_events,
                     regions) -> TraceHandle:
        from multiprocessing import shared_memory

        total = max(1, _arena_bytes(chunk_lengths))
        shm = shared_memory.SharedMemory(create=True, size=total)
        self._segments.append(shm)
        buf = shm.buf
        for n, start in zip(chunk_lengths, _chunk_offsets(chunk_lengths)):
            chunk = chunks.pop(0)
            addr_off = start
            size_off = addr_off + n * _ADDR_ITEM
            kind_off = size_off + n * _SIZE_ITEM
            for array, offset, dtype in (
                (chunk.addresses, addr_off, ADDR_DTYPE),
                (chunk.sizes, size_off, SIZE_DTYPE),
                (chunk.is_store, kind_off, KIND_DTYPE),
            ):
                view = np.frombuffer(buf, dtype=dtype, count=n, offset=offset)
                view[:] = array
        return TraceHandle(
            workload=workload, kind="shm", locator=shm.name,
            chunk_lengths=chunk_lengths, chunk_events=chunk_events,
            regions=tuple(regions),
        )

    def _publish_file(self, workload, stream, chunk_lengths, chunk_events,
                      regions) -> TraceHandle:
        from repro.trace.store import write_store

        if self.spool_dir is not None:
            directory = Path(self.spool_dir)
        else:
            if self._tempdir is None:
                self._tempdir = tempfile.mkdtemp(prefix="repro-arena-")
            directory = Path(self._tempdir)
        path = directory / f"{workload}.arena.rts"
        write_store(stream, path)
        return TraceHandle(
            workload=workload, kind="file", locator=str(path),
            chunk_lengths=chunk_lengths, chunk_events=chunk_events,
            regions=tuple(regions),
        )

    def close(self) -> None:
        """Release everything published: unlink shm, remove spool files.

        Call after the sweep drains; attached workers must be done.
        """
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, BufferError):
                pass
        self._segments.clear()
        if self._tempdir is not None:
            shutil.rmtree(self._tempdir, ignore_errors=True)
            self._tempdir = None
        self._handles.clear()

    def __enter__(self) -> "TraceArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

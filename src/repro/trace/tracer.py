"""The tracer: simulated virtual address space + stream recording.

A :class:`Tracer` plays the role PEBIL plays in the paper: it owns the
address stream being captured during a workload's execution. It also
owns a simple bump allocator for a simulated virtual address space, so
that every logical data structure of a workload (each
:class:`~repro.trace.traced_array.TracedArray`) lives in its own
contiguous, page-aligned region — exactly the "contiguous range of
addresses" granularity at which the paper's NDM partitioning operates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError
from repro.telemetry.core import get_active
from repro.trace.stream import AddressStream

#: Base of the simulated heap. Nonzero so address 0 stays invalid.
HEAP_BASE: int = 0x1000_0000
#: Regions are aligned to this boundary (a 4 KiB OS page).
REGION_ALIGN: int = 4096


@dataclass(frozen=True)
class Region:
    """A named, contiguous region of the simulated address space.

    Attributes:
        name: the logical name given at allocation (e.g. ``"matrix.values"``).
        base: first byte address of the region.
        size: region size in bytes.
    """

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        """One past the last byte address of the region."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """True iff ``address`` falls inside the region."""
        return self.base <= address < self.end


@dataclass
class Tracer:
    """Records the address stream of an instrumented workload run.

    Attributes:
        stream: the stream being recorded.
        regions: all allocated regions, in allocation order.
        enabled: when False, record calls are dropped (lets workloads
            run warm-up phases untraced, mirroring how the paper skips
            initialization).
    """

    stream: AddressStream = field(default_factory=AddressStream)
    regions: list[Region] = field(default_factory=list)
    enabled: bool = True
    _next_base: int = HEAP_BASE

    # ------------------------------------------------------------------
    # Address-space management
    # ------------------------------------------------------------------

    def allocate(self, name: str, size: int) -> Region:
        """Reserve a page-aligned region of ``size`` bytes.

        Args:
            name: logical name for the region (used by the NDM range
                profiler to label hot ranges).
            size: number of bytes; must be positive.

        Returns:
            The reserved :class:`Region`.
        """
        if size <= 0:
            raise TraceError(f"region size must be positive, got {size}")
        base = self._next_base
        region = Region(name=name, base=base, size=size)
        self.regions.append(region)
        get_active().event(
            "region_allocated", region=name, base=base, size=size
        )
        aligned = (size + REGION_ALIGN - 1) // REGION_ALIGN * REGION_ALIGN
        # Leave one guard page between regions so off-by-one addresses
        # never alias a neighbouring region.
        self._next_base = base + aligned + REGION_ALIGN
        return region

    def region_of(self, address: int) -> Region | None:
        """The region containing ``address``, or None."""
        for region in self.regions:
            if region.contains(address):
                return region
        return None

    def region_by_name(self, name: str) -> Region:
        """Look up a region by its allocation name.

        Raises:
            KeyError: if no region has that name.
        """
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(name)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(
        self,
        addresses: np.ndarray,
        sizes: np.ndarray | int,
        is_store: np.ndarray | int,
    ) -> None:
        """Append accesses to the stream (no-op when disabled)."""
        if self.enabled:
            self.stream.append(addresses, sizes, is_store)

    def record_loads(self, addresses: np.ndarray, sizes: np.ndarray | int) -> None:
        """Append load accesses."""
        self.record(addresses, sizes, 0)

    def record_stores(self, addresses: np.ndarray, sizes: np.ndarray | int) -> None:
        """Append store accesses."""
        self.record(addresses, sizes, 1)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def array(self, name: str, shape, dtype=np.float64, fill=None) -> "TracedArray":
        """Allocate and return a :class:`TracedArray` in this tracer's
        address space.

        Args:
            name: region name.
            shape: array shape.
            dtype: NumPy dtype.
            fill: optional fill value (filling is *not* traced; it models
                untraced initialization).
        """
        from repro.trace.traced_array import TracedArray

        return TracedArray.allocate(self, name, shape, dtype=dtype, fill=fill)

    def pause(self) -> "_TracerPause":
        """Context manager that disables recording inside the block::

            with tracer.pause():
                setup_phase()
        """
        return _TracerPause(self)


class _TracerPause:
    """Context manager restoring the tracer's enabled flag on exit."""

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._saved = tracer.enabled

    def __enter__(self) -> Tracer:
        self._saved = self._tracer.enabled
        self._tracer.enabled = False
        return self._tracer

    def __exit__(self, *exc_info) -> None:
        self._tracer.enabled = self._saved

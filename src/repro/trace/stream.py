"""Chunked, NumPy-backed address streams.

An :class:`AddressStream` is the unit of exchange between the
instrumentation layer and the cache simulator. It stores accesses in
fixed-size chunks so that recording is O(1) amortized per event batch
and simulation can proceed chunk-by-chunk without materializing a giant
array (HPC traces are long; the paper's framework processes them online
for the same reason).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.errors import TraceError
from repro.trace.events import (
    ADDR_DTYPE,
    KIND_DTYPE,
    SIZE_DTYPE,
    AccessBatch,
)

#: Default number of events per chunk.
DEFAULT_CHUNK_EVENTS: int = 1 << 18


@dataclass(frozen=True)
class StreamStats:
    """Summary statistics of an address stream.

    Attributes:
        events: total number of accesses.
        loads: number of load accesses.
        stores: number of store accesses.
        bytes_read: total bytes loaded.
        bytes_written: total bytes stored.
        footprint_bytes: footprint proxy — the number of distinct
            ``footprint_line``-aligned lines touched, times the line
            size (64 B by default). Counting distinct *bytes* would be
            prohibitively expensive on long traces; the line-granular
            count is the standard working-set estimate.
        min_address: lowest byte address touched (0 if empty).
        max_address: highest byte address touched (0 if empty).
    """

    events: int
    loads: int
    stores: int
    bytes_read: int
    bytes_written: int
    footprint_bytes: int
    min_address: int
    max_address: int

    @property
    def store_fraction(self) -> float:
        """Fraction of accesses that are stores (0.0 for empty streams)."""
        return self.stores / self.events if self.events else 0.0


class AddressStream:
    """An append-only, chunked sequence of memory accesses.

    Use :meth:`append` (or a :class:`~repro.trace.tracer.Tracer`) to
    record, then iterate :meth:`chunks` to consume. Streams may also be
    built directly from arrays with :meth:`from_arrays`.
    """

    def __init__(self, chunk_events: int = DEFAULT_CHUNK_EVENTS) -> None:
        if chunk_events <= 0:
            raise TraceError(f"chunk_events must be positive, got {chunk_events}")
        self._chunk_events = int(chunk_events)
        self._chunks: list[AccessBatch] = []
        # Write buffer for incremental appends.
        self._buf_addr = np.empty(self._chunk_events, dtype=ADDR_DTYPE)
        self._buf_size = np.empty(self._chunk_events, dtype=SIZE_DTYPE)
        self._buf_kind = np.empty(self._chunk_events, dtype=KIND_DTYPE)
        self._buf_fill = 0
        self._events = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        addresses: Iterable[int] | np.ndarray,
        sizes: Iterable[int] | np.ndarray | int,
        is_store: Iterable[int] | np.ndarray | int,
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
    ) -> "AddressStream":
        """Build a stream from whole arrays.

        ``sizes`` and ``is_store`` may be scalars, in which case they are
        broadcast over all addresses.
        """
        addr = np.asarray(addresses, dtype=ADDR_DTYPE)
        n = len(addr)
        if np.isscalar(sizes) or (isinstance(sizes, np.ndarray) and sizes.ndim == 0):
            size_arr = np.full(n, int(sizes), dtype=SIZE_DTYPE)
        else:
            size_arr = np.asarray(sizes, dtype=SIZE_DTYPE)
        if np.isscalar(is_store) or (
            isinstance(is_store, np.ndarray) and is_store.ndim == 0
        ):
            kind_arr = np.full(n, int(bool(is_store)), dtype=KIND_DTYPE)
        else:
            kind_arr = np.asarray(is_store, dtype=KIND_DTYPE)
        stream = cls(chunk_events=chunk_events)
        stream.append(addr, size_arr, kind_arr)
        return stream

    @classmethod
    def from_batches(
        cls, batches: Iterable[AccessBatch], chunk_events: int = DEFAULT_CHUNK_EVENTS
    ) -> "AddressStream":
        """Build a stream by concatenating existing batches."""
        stream = cls(chunk_events=chunk_events)
        for batch in batches:
            stream.append(batch.addresses, batch.sizes, batch.is_store)
        return stream

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def append(
        self,
        addresses: np.ndarray,
        sizes: np.ndarray | int,
        is_store: np.ndarray | int,
    ) -> None:
        """Append a batch of accesses (vectorized).

        Args:
            addresses: byte addresses (any integer array-like).
            sizes: per-access sizes, or a scalar broadcast to all.
            is_store: per-access kind flags, or a scalar.
        """
        addr = np.asarray(addresses, dtype=ADDR_DTYPE).ravel()
        n = len(addr)
        if n == 0:
            return
        if np.isscalar(sizes) or (isinstance(sizes, np.ndarray) and sizes.ndim == 0):
            size_arr = np.full(n, int(sizes), dtype=SIZE_DTYPE)
        else:
            size_arr = np.asarray(sizes, dtype=SIZE_DTYPE).ravel()
            if len(size_arr) != n:
                raise TraceError("sizes length does not match addresses length")
        if np.isscalar(is_store) or (
            isinstance(is_store, np.ndarray) and is_store.ndim == 0
        ):
            kind_arr = np.full(n, int(bool(is_store)), dtype=KIND_DTYPE)
        else:
            kind_arr = np.asarray(is_store, dtype=KIND_DTYPE).ravel()
            if len(kind_arr) != n:
                raise TraceError("is_store length does not match addresses length")

        self._events += n
        pos = 0
        while pos < n:
            space = self._chunk_events - self._buf_fill
            take = min(space, n - pos)
            lo, hi = self._buf_fill, self._buf_fill + take
            self._buf_addr[lo:hi] = addr[pos : pos + take]
            self._buf_size[lo:hi] = size_arr[pos : pos + take]
            self._buf_kind[lo:hi] = kind_arr[pos : pos + take]
            self._buf_fill += take
            pos += take
            if self._buf_fill == self._chunk_events:
                self._flush()

    def _flush(self) -> None:
        if self._buf_fill == 0:
            return
        self._chunks.append(
            AccessBatch(
                self._buf_addr[: self._buf_fill].copy(),
                self._buf_size[: self._buf_fill].copy(),
                self._buf_kind[: self._buf_fill].copy(),
            )
        )
        self._buf_fill = 0

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._events

    @property
    def nbytes(self) -> int:
        """Resident memory of the stored arrays (flushed chunks plus the
        live write buffer) — what a captured stream costs to keep around."""
        total = sum(
            c.addresses.nbytes + c.sizes.nbytes + c.is_store.nbytes
            for c in self._chunks
        )
        return total + (
            self._buf_addr.nbytes + self._buf_size.nbytes + self._buf_kind.nbytes
        )

    def chunks(self) -> Iterator[AccessBatch]:
        """Iterate over the stream's batches in order.

        The stream remains appendable afterwards; pending buffered events
        are flushed into a chunk first so iteration always sees the full
        stream.
        """
        self._flush()
        return iter(self._chunks)

    def as_batch(self) -> AccessBatch:
        """Materialize the whole stream as a single batch.

        Convenient for tests and small streams; avoid on very long
        streams (copies everything).
        """
        chunks = list(self.chunks())
        if not chunks:
            return AccessBatch.empty()
        if len(chunks) == 1:
            return chunks[0]
        return AccessBatch(
            np.concatenate([c.addresses for c in chunks]),
            np.concatenate([c.sizes for c in chunks]),
            np.concatenate([c.is_store for c in chunks]),
        )

    def stats(self, footprint_line: int = 64) -> StreamStats:
        """Compute summary statistics in one pass over the chunks.

        The footprint count stays vectorized end to end: each chunk
        contributes its ``np.unique`` line array and the per-chunk
        uniques are merged with a single ``np.unique`` at the end,
        instead of round-tripping every line through a Python ``set``
        (bit-identical result, ~20x less per-chunk overhead on long
        streams; see docs/performance.md).
        """
        loads = stores = 0
        bytes_read = bytes_written = 0
        min_addr: int | None = None
        max_addr = 0
        chunk_lines: list[np.ndarray] = []
        shift = int(footprint_line).bit_length() - 1
        for chunk in self.chunks():
            store_mask = chunk.is_store != 0
            n_stores = int(np.count_nonzero(store_mask))
            stores += n_stores
            loads += len(chunk) - n_stores
            sizes64 = chunk.sizes.astype(np.int64)
            bytes_written += int(sizes64[store_mask].sum())
            bytes_read += int(sizes64[~store_mask].sum())
            if len(chunk):
                cmin = int(chunk.addresses.min())
                cmax = int(chunk.addresses.max())
                min_addr = cmin if min_addr is None else min(min_addr, cmin)
                max_addr = max(max_addr, cmax)
                chunk_lines.append(
                    np.unique(chunk.addresses >> np.uint64(shift))
                )
        if not chunk_lines:
            footprint_lines = 0
        elif len(chunk_lines) == 1:
            footprint_lines = len(chunk_lines[0])
        else:
            footprint_lines = len(np.unique(np.concatenate(chunk_lines)))
        return StreamStats(
            events=len(self),
            loads=loads,
            stores=stores,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            footprint_bytes=footprint_lines * footprint_line,
            min_address=min_addr or 0,
            max_address=max_addr,
        )

    def verify(self) -> None:
        """Force integrity verification of the stream's backing data.

        In-memory streams have nothing to verify; mmap-backed streams
        (:class:`~repro.trace.store.MappedStream`) override this to
        hash every chunk against the store header up front instead of
        lazily on first read.
        """

    def head(self, n: int) -> "AddressStream":
        """A new stream holding only the first ``n`` events."""
        if n < 0:
            raise TraceError("head length must be non-negative")
        out = AddressStream(chunk_events=self._chunk_events)
        remaining = n
        for chunk in self.chunks():
            if remaining <= 0:
                break
            take = min(remaining, len(chunk))
            sub = chunk.slice(0, take)
            out.append(sub.addresses, sub.sizes, sub.is_store)
            remaining -= take
        return out

    def concat(self, other: "AddressStream") -> "AddressStream":
        """A new stream holding self's events followed by other's."""
        out = AddressStream(chunk_events=self._chunk_events)
        for chunk in self.chunks():
            out.append(chunk.addresses, chunk.sizes, chunk.is_store)
        for chunk in other.chunks():
            out.append(chunk.addresses, chunk.sizes, chunk.is_store)
        return out

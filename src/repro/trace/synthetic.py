"""Synthetic address-stream generators.

These produce streams with controlled locality signatures. They are used
by the test suite (known-answer cache behaviour), by the generalization
heat-map harness, and as lightweight stand-ins when exploring the design
space without running a full workload kernel.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.trace.stream import AddressStream


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(0 if seed is None else seed)


def sequential_stream(
    n_events: int,
    *,
    base: int = 0x1000_0000,
    access_size: int = 8,
    store_fraction: float = 0.0,
    seed: int | None = None,
) -> AddressStream:
    """A unit-stride sweep: address ``base + i * access_size``.

    Maximal spatial locality; every cache with line size > access_size
    hits on all but one access per line.
    """
    return strided_stream(
        n_events,
        stride=access_size,
        base=base,
        access_size=access_size,
        store_fraction=store_fraction,
        seed=seed,
    )


def strided_stream(
    n_events: int,
    *,
    stride: int,
    base: int = 0x1000_0000,
    access_size: int = 8,
    store_fraction: float = 0.0,
    seed: int | None = None,
) -> AddressStream:
    """A fixed-stride sweep: address ``base + i * stride``.

    With stride >= line size, every access misses a cold cache: the
    classic worst case for spatial locality.
    """
    if n_events < 0:
        raise TraceError("n_events must be non-negative")
    if stride <= 0:
        raise TraceError("stride must be positive")
    idx = np.arange(n_events, dtype=np.uint64)
    addrs = np.uint64(base) + idx * np.uint64(stride)
    kinds = _kinds(n_events, store_fraction, seed)
    return AddressStream.from_arrays(addrs, access_size, kinds)


def random_stream(
    n_events: int,
    *,
    footprint_bytes: int,
    base: int = 0x1000_0000,
    access_size: int = 8,
    store_fraction: float = 0.0,
    seed: int | None = None,
) -> AddressStream:
    """Uniform random accesses over a footprint of the given size.

    Temporal locality is entirely determined by the footprint:capacity
    ratio — the canonical capacity-stress pattern.
    """
    if footprint_bytes < access_size:
        raise TraceError("footprint must be at least one access in size")
    rng = _rng(seed)
    slots = footprint_bytes // access_size
    idx = rng.integers(0, slots, size=n_events, dtype=np.uint64)
    addrs = np.uint64(base) + idx * np.uint64(access_size)
    kinds = _kinds(n_events, store_fraction, seed)
    return AddressStream.from_arrays(addrs, access_size, kinds)


def zipf_stream(
    n_events: int,
    *,
    footprint_bytes: int,
    alpha: float = 1.2,
    base: int = 0x1000_0000,
    access_size: int = 8,
    store_fraction: float = 0.0,
    seed: int | None = None,
) -> AddressStream:
    """Zipf-skewed accesses: a hot subset is touched far more often.

    Models the skewed reuse of data-intensive workloads (graph
    frontiers, hash-table hot buckets).
    """
    if alpha <= 1.0:
        raise TraceError("zipf alpha must be > 1.0")
    rng = _rng(seed)
    slots = max(1, footprint_bytes // access_size)
    raw = rng.zipf(alpha, size=n_events)
    idx = np.minimum(raw, slots).astype(np.uint64) - np.uint64(1)
    # Scatter ranks over the footprint so the hot set is not one dense
    # prefix (which line granularity would otherwise compact for free).
    perm_seed = _rng(seed).integers(0, 2**31)
    scatter = np.random.default_rng(int(perm_seed)).permutation(slots).astype(np.uint64)
    addrs = np.uint64(base) + scatter[idx.astype(np.int64)] * np.uint64(access_size)
    kinds = _kinds(n_events, store_fraction, seed)
    return AddressStream.from_arrays(addrs, access_size, kinds)


def pointer_chase_stream(
    n_events: int,
    *,
    footprint_bytes: int,
    base: int = 0x1000_0000,
    node_size: int = 64,
    seed: int | None = None,
) -> AddressStream:
    """A random-cycle pointer chase: each access depends on the last.

    All loads; the permutation cycle covers the whole footprint, so with
    footprint > capacity every access misses (latency-bound worst case).
    """
    rng = _rng(seed)
    nodes = max(2, footprint_bytes // node_size)
    perm = rng.permutation(nodes)
    # next_node[perm[i]] = perm[i+1] builds one big cycle.
    next_node = np.empty(nodes, dtype=np.int64)
    next_node[perm[:-1]] = perm[1:]
    next_node[perm[-1]] = perm[0]
    path = np.empty(n_events, dtype=np.uint64)
    node = int(perm[0])
    for i in range(n_events):
        path[i] = node
        node = int(next_node[node])
    addrs = np.uint64(base) + path * np.uint64(node_size)
    return AddressStream.from_arrays(addrs, 8, 0)


def _kinds(n: int, store_fraction: float, seed: int | None) -> np.ndarray:
    """Deterministic store-flag vector with the requested store mix."""
    if not 0.0 <= store_fraction <= 1.0:
        raise TraceError("store_fraction must be within [0, 1]")
    if store_fraction == 0.0:
        return np.zeros(n, dtype=np.uint8)
    if store_fraction == 1.0:
        return np.ones(n, dtype=np.uint8)
    rng = _rng(seed)
    return (rng.random(n) < store_fraction).astype(np.uint8)

"""One-pass reuse-distance profiling and the analytic fast-path engine.

A :class:`~repro.profile.profiler.GranularityProfile` is computed once
per (trace, block granularity) and answers, in closed form, what any
LRU cache of that granularity would do with the stream: per-access
stack distances give the full miss-ratio curve over capacity, and
per-store *writeback gaps* (the largest eviction exposure between a
store and the next store to the same sector) give dirty-eviction and
residual-dirty counts. Profiles persist next to the trace cache with
the same SHA-256 sidecar integrity as the traces themselves.

The :class:`~repro.profile.engine.AnalyticEngine` walks a design's
lower-level chain top-down, converts the profiles into per-level
hit/miss/writeback counts (with a binomial conflict correction for
set-associative geometry), and emits :class:`~repro.cache.stats.LevelStats`
that flow unchanged into the AMAT/energy/EDP model — collapsing a
sweep's per-design simulation cost from O(trace) to O(1).
"""

from repro.profile.engine import AnalyticEngine, StreamTotals, hit_probability
from repro.profile.profiler import (
    GranularityProfile,
    compute_profile,
    load_profile,
    save_profile,
)

__all__ = [
    "AnalyticEngine",
    "GranularityProfile",
    "StreamTotals",
    "compute_profile",
    "hit_probability",
    "load_profile",
    "save_profile",
]

"""Stack-distance reuse profiles of captured address streams.

A profile is computed in one vectorized pass per granularity and holds
everything the analytic engine needs to predict *any* LRU cache of
that block size against the same stream:

- ``distances`` — the per-access LRU stack distance at block
  granularity (Mattson): a fully-associative cache of C blocks hits an
  access iff its distance is in ``[0, C)``, so one array yields the
  whole miss-ratio curve over capacity.
- ``wb_gap`` — per store, the *eviction exposure* of the dirty data it
  creates: the largest block-granularity stack distance among the
  accesses between this store and the next store to the same dirty
  sector (for the final store of a sector, also counting the distinct
  blocks touched after the block's last access — later traffic can
  still push it out). A fully-associative cache of C blocks writes the
  dirty sector back iff ``wb_gap >= C``; otherwise the next store
  refreshes it in place (or it survives to the end as residual dirty
  state, flushed only by a drain).
- ``last_store`` — marks each sector's final store, whose surviving
  dirty instance is what a drain flushes.

Profiles are design-independent — every design whose level matches the
(block, sector) granularity pair reuses the same profile — and persist
as ``.npz`` artifacts with SHA-256 sidecars via the same atomic-write
machinery as the trace cache (:mod:`repro.trace.io`).
"""

from __future__ import annotations

import io as _io
import zipfile
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path

import numpy as np

from repro.errors import TraceError, TraceIntegrityError
from repro.trace.events import AccessBatch
from repro.trace.io import _write_artifact, verify_artifact
from repro.trace.reuse import COLD_DISTANCE, distances_for_lines
from repro.trace.stream import AddressStream
from repro.units import log2_int

#: Format marker stored in every profile file.
_PROFILE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class GranularityProfile:
    """Reuse profile of one stream at one block granularity.

    Attributes:
        granularity: block (allocation) size in bytes.
        chain_granularity: dirty-tracking sector size in bytes
            (``== granularity`` for unsectored caches).
        references: number of accesses profiled.
        distances: int64 per-access stack distance at block
            granularity (:data:`~repro.trace.reuse.COLD_DISTANCE` for
            first touches).
        is_store: bool per-access store flag.
        wb_gap: int64 per-*store* eviction exposure (see module
            docstring); aligned with ``distances[is_store]``.
        last_store: bool per-store flag marking each sector's final
            store.
        footprint: distinct blocks touched.
    """

    granularity: int
    chain_granularity: int
    references: int
    distances: np.ndarray
    is_store: np.ndarray
    wb_gap: np.ndarray
    last_store: np.ndarray
    footprint: int

    @property
    def n_stores(self) -> int:
        """Number of store accesses."""
        return len(self.wb_gap)

    @property
    def n_loads(self) -> int:
        """Number of load accesses."""
        return self.references - self.n_stores

    def hit_count(self, capacity_blocks: int) -> int:
        """Exact fully-associative LRU hits at the given capacity."""
        d = self.distances
        return int(np.count_nonzero((d >= 0) & (d < capacity_blocks)))

    def writeback_count(self, capacity_blocks: int) -> int:
        """Exact fully-associative LRU dirty-eviction writebacks."""
        return int(np.count_nonzero(self.wb_gap >= capacity_blocks))

    def residual_dirty(self, capacity_blocks: int) -> int:
        """Sectors still dirty at end of stream (drain flush volume)."""
        return int(
            np.count_nonzero(self.wb_gap[self.last_store] < capacity_blocks)
        )

    def miss_ratio_curve(self, capacities: np.ndarray) -> np.ndarray:
        """Fully-associative LRU miss ratio at each capacity (blocks).

        One sorted pass over the distance array answers every capacity
        at once — the Mattson one-pass property.
        """
        caps = np.asarray(capacities, dtype=np.int64)
        if self.references == 0:
            return np.ones(len(caps), dtype=np.float64)
        warm = np.sort(self.distances[self.distances >= 0])
        hits = np.searchsorted(warm, caps, side="left")
        return 1.0 - hits / self.references

    @cached_property
    def distance_classes(self) -> tuple[np.ndarray, ...]:
        """``(values, load_counts, store_counts, inverse)`` of the
        distance array.

        Stack distances repeat heavily (at most ``footprint + 1``
        distinct values, usually far fewer), and every conflict-model
        evaluation is elementwise in the distance — so the engine
        computes per *class* and weights by these counts instead of
        touching all ``references`` accesses per design. Computed once
        per profile and shared across the whole sweep.
        """
        values = np.unique(self.distances)
        inverse = np.searchsorted(values, self.distances)
        loads = np.bincount(inverse[~self.is_store], minlength=len(values))
        stores = np.bincount(inverse[self.is_store], minlength=len(values))
        return values, loads, stores, inverse

    @cached_property
    def wb_classes(self) -> tuple[np.ndarray, ...]:
        """``(values, counts, last_counts, inverse)`` of ``wb_gap`` —
        the writeback analogue of :attr:`distance_classes`, with
        ``last_counts`` restricted to each sector's final store (the
        drain-flush candidates)."""
        values = np.unique(self.wb_gap)
        inverse = np.searchsorted(values, self.wb_gap)
        counts = np.bincount(inverse, minlength=len(values))
        last = np.bincount(inverse[self.last_store], minlength=len(values))
        return values, counts, last, inverse

    def distance_histogram(self, stores_only: bool = False) -> np.ndarray:
        """Histogram of warm stack distances (index = distance)."""
        d = self.distances[self.is_store] if stores_only else self.distances
        warm = d[d >= 0]
        if len(warm) == 0:
            return np.zeros(0, dtype=np.int64)
        return np.bincount(warm)


def _range_max(values: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Max of ``values[lo[k] : hi[k] + 1]`` per query; 0 for empty ranges.

    Classic sparse-table range maximum: level ``j`` holds windowed
    maxima of width ``2**j``, and each query resolves as the max of two
    overlapping windows. Vectorized over all queries by grouping them
    per level.
    """
    out = np.zeros(len(lo), dtype=np.int64)
    valid = hi >= lo
    if not valid.any():
        return out
    n = len(values)
    length = (hi - lo + 1).astype(np.int64)
    max_len = int(length[valid].max())
    levels = max(1, max_len.bit_length())
    table = [values]
    for j in range(1, levels):
        prev = table[-1]
        width = 1 << j
        half = width >> 1
        if n < width:
            table.append(prev[:0])
            continue
        table.append(np.maximum(prev[: n - width + 1], prev[half:]))
    # Per-query level: the largest j with 2**j <= length. Exact for
    # lengths below 2**53 (they are array indices, far below that).
    lvl = np.zeros(len(lo), dtype=np.int64)
    lvl[valid] = np.floor(np.log2(length[valid])).astype(np.int64)
    for j in range(levels):
        mask = valid & (lvl == j)
        if not mask.any():
            continue
        width = 1 << j
        left = table[j][lo[mask]]
        right = table[j][hi[mask] - width + 1]
        out[mask] = np.maximum(left, right)
    return out


def _writeback_gaps(
    blocks: np.ndarray,
    sectors: np.ndarray,
    distances: np.ndarray,
    is_store: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-store eviction exposure and last-store flags (see module doc).

    Works entirely on sorted views: accesses grouped by block give each
    store's window of follow-on block accesses (a contiguous slice, so
    the max stack distance inside it is a sparse-table range query);
    stores grouped by sector give each store's chain successor; and a
    reversed cumulative sum of last-touch flags gives the distinct
    blocks after any position — the end-of-trace exposure of final
    stores.
    """
    n = len(blocks)
    store_pos = np.flatnonzero(is_store)
    ns = len(store_pos)
    if ns == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, np.zeros(0, dtype=bool)

    order = np.argsort(blocks, kind="stable")
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)
    gaps = distances[order]
    grouped_blocks = blocks[order]
    boundary = np.empty(n, dtype=bool)
    boundary[-1] = True
    np.not_equal(grouped_blocks[1:], grouped_blocks[:-1], out=boundary[:-1])
    ends = np.flatnonzero(boundary)  # inclusive group end, grouped order
    group_id = np.zeros(n, dtype=np.int64)
    group_id[1:] = np.cumsum(boundary[:-1])
    group_end = ends[group_id]

    # Distinct blocks strictly after global position t: reversed cumsum
    # of the per-position "last touch of its block" indicator.
    last_touch = np.zeros(n, dtype=np.int64)
    last_touch[order[ends]] = 1
    after = np.zeros(n + 1, dtype=np.int64)
    after[:n] = last_touch[::-1].cumsum()[::-1]
    after = after[1:]  # after[t] = distinct blocks at positions > t

    # Chain successor: the next store to the same sector.
    store_sectors = sectors[store_pos]
    so = np.argsort(store_sectors, kind="stable")
    sp = store_pos[so]
    ss = store_sectors[so]
    nxt = np.full(ns, -1, dtype=np.int64)
    if ns > 1:
        same = ss[1:] == ss[:-1]
        nxt[so[:-1]] = np.where(same, sp[1:], -1)
    last_store = nxt < 0

    srank = rank[store_pos]
    lo = srank + 1
    hi = np.empty(ns, dtype=np.int64)
    has_next = ~last_store
    hi[has_next] = rank[nxt[has_next]]
    hi[last_store] = group_end[srank[last_store]]
    wb_gap = _range_max(gaps, lo, hi)
    if last_store.any():
        # Final stores stay exposed after the block's last access.
        tail_pos = order[group_end[srank[last_store]]]
        wb_gap[last_store] = np.maximum(wb_gap[last_store], after[tail_pos])
    return wb_gap, last_store


def compute_profile(
    stream: AddressStream | AccessBatch,
    granularity: int,
    chain_granularity: int | None = None,
) -> GranularityProfile:
    """Profile a stream at one block granularity (one vectorized pass).

    Args:
        stream: the accesses to profile (captured post-L3 stream).
        granularity: cache block (allocation) size in bytes.
        chain_granularity: dirty-sector size in bytes for writeback
            chains (defaults to ``granularity`` — unsectored).
    """
    batch = stream.as_batch() if isinstance(stream, AddressStream) else stream
    cg = granularity if chain_granularity is None else chain_granularity
    block_shift = np.uint64(log2_int(granularity))
    sector_shift = np.uint64(log2_int(cg))
    blocks = (batch.addresses >> block_shift).astype(np.int64)
    sectors = (batch.addresses >> sector_shift).astype(np.int64)
    is_store = batch.is_store.astype(bool)
    distances = distances_for_lines(blocks)
    wb_gap, last_store = _writeback_gaps(blocks, sectors, distances, is_store)
    return GranularityProfile(
        granularity=int(granularity),
        chain_granularity=int(cg),
        references=len(blocks),
        distances=distances,
        is_store=is_store,
        wb_gap=wb_gap,
        last_store=last_store,
        footprint=int(np.count_nonzero(distances == COLD_DISTANCE)),
    )


def save_profile(profile: GranularityProfile, path: str | Path) -> None:
    """Write a profile to ``path`` (.npz, SHA-256 sidecar).

    Atomic (temp file + rename), same guarantees as the trace cache.
    Uncompressed on purpose: persistence sits inside the analytic
    screen's first-use path, deflate costs ~30x the raw write for a
    few MB per profile, and the sidecar already guards integrity.
    ``load_profile`` reads either format, so caches written before
    this choice stay valid.
    """
    buffer = _io.BytesIO()
    np.savez(
        buffer,
        version=np.int64(_PROFILE_FORMAT_VERSION),
        granularity=np.int64(profile.granularity),
        chain_granularity=np.int64(profile.chain_granularity),
        references=np.int64(profile.references),
        footprint=np.int64(profile.footprint),
        distances=profile.distances,
        is_store=profile.is_store,
        wb_gap=profile.wb_gap,
        last_store=profile.last_store,
    )
    _write_artifact(Path(path), buffer.getvalue())


def load_profile(path: str | Path) -> GranularityProfile:
    """Read a profile written by :func:`save_profile`.

    Raises:
        TraceError: for missing files or unknown formats.
        TraceIntegrityError: for truncated, bit-flipped, or otherwise
            unparseable files (checksum verified when a sidecar
            exists) — the caller should delete the artifact and
            recompute.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no profile file at {path}")
    verify_artifact(path)
    try:
        with np.load(path) as data:
            version = int(data["version"])
            if version != _PROFILE_FORMAT_VERSION:
                raise TraceError(
                    f"unsupported profile format version {version} in {path}"
                )
            return GranularityProfile(
                granularity=int(data["granularity"]),
                chain_granularity=int(data["chain_granularity"]),
                references=int(data["references"]),
                footprint=int(data["footprint"]),
                distances=data["distances"],
                is_store=data["is_store"],
                wb_gap=data["wb_gap"],
                last_store=data["last_store"],
            )
    except TraceError:
        raise
    except (zipfile.BadZipFile, KeyError, ValueError, OSError, EOFError) as exc:
        raise TraceIntegrityError(
            f"corrupt profile file {path} ({type(exc).__name__}: {exc}); "
            f"delete it and re-profile the trace"
        ) from exc

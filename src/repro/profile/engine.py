"""The analytic fast-path engine: profiles in, LevelStats out.

Given the reuse profiles of a captured post-L3 stream, the engine
predicts what every level of a design's *lower* hierarchy would count
during an exact replay — without replaying anything. Per design the
cost is O(distinct stack-distance values) when the whole chain shares
one profile — the common sweep shape — and O(stream) of vectorized
float math for mixed-granularity chains (the profiles themselves are
computed once per trace and shared across every design in the sweep),
versus a full stateful cache simulation per design for the exact
engines.

Model, per lower cache level (top-down):

- **Hit probability.** A fully-associative LRU cache of C blocks hits
  an access iff its stack distance d is in [0, C) — exact. For S sets
  of A ways with hashed indexing, the d intervening distinct blocks
  spread ~uniformly over sets, so the probability that fewer than A of
  them land in the access's own set is the binomial CDF
  ``P[Binomial(d, 1/S) <= A-1]`` — the Hill–Smith conflict
  correction.
- **Chaining.** Levels below the first see only the miss stream of the
  level above. Capacities grow down the chain, so residency nests:
  per access, the probability of hitting level i *given* it reached it
  is ``max(0, P_i - max_j<i P_j)`` — a running maximum over the chain,
  no inter-level stream ever materialized.
- **Writebacks.** A store's dirty data leaves level i iff its
  writeback gap (see :mod:`repro.profile.profiler`) defeats level i's
  retention: expected writebacks are ``sum(1 - P_i(wb_gap))`` over
  stores, and nesting makes the level-(i-1)-evicted-but-level-i-held
  difference the store-arrival hits of level i. Drains flush each
  sector's final store if it is still held: ``sum over last stores of
  P_i(wb_gap)``.
- **Traffic shaping** mirrors the exact engine bit for bit in form:
  every miss emits one fill load of ``block_size`` bytes; every
  writeback emits one store of ``sector_size`` bytes (sectored) or
  ``block_size`` bytes (unsectored); the terminal memory reports all
  arrivals as hits.

Designs with no lower caches (REF, NDM) are *simulated* outright — the
terminal memories are stateless counters, so driving them over the
captured stream is exact and as cheap as the estimate would be.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.cache.partition import PartitionedMemory
from repro.cache.stats import LevelStats
from repro.errors import SimulationError
from repro.profile.profiler import GranularityProfile
from repro.telemetry.core import get_active
from repro.trace.events import AccessBatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.designs.base import MemoryDesign


@dataclass(frozen=True)
class StreamTotals:
    """Exact arrival totals of the captured post-L3 stream.

    These seed the first lower level's (and REF's) demand accounting,
    so every analytic hierarchy starts from exact arrival counts.
    """

    loads: int
    stores: int
    load_bits: int
    store_bits: int

    @staticmethod
    def from_chunks(chunks: Iterable[AccessBatch]) -> "StreamTotals":
        """Accumulate totals over a chunked stream."""
        probe = LevelStats(name="TOTALS")
        for chunk in chunks:
            if len(chunk):
                probe.account_batch(chunk)
        return StreamTotals(
            loads=probe.loads,
            stores=probe.stores,
            load_bits=probe.load_bits,
            store_bits=probe.store_bits,
        )


def hit_probability(
    distances: np.ndarray, num_sets: int, ways: int
) -> np.ndarray:
    """Per-access probability of hitting an (S sets, A ways) LRU cache.

    Exact 0/1 indicator for fully-associative geometry (one set); the
    Hill–Smith binomial conflict model otherwise: the d intervening
    distinct blocks hash ~uniformly over sets, so the access hits iff
    fewer than A of them land in its own set —
    ``P[Binomial(d, 1/S) <= A-1]`` (the Poisson limit for large S).
    Cold accesses (negative distance) never hit.
    """
    d = distances
    out = np.zeros(len(d), dtype=np.float64)
    warm = d >= 0
    if not warm.any():
        return out
    if num_sets == 1:
        out[warm & (d < ways)] = 1.0
        return out
    # Binomial CDF by iterative terms: term_k = C(d,k) p^k (1-p)^(d-k).
    # term_0 via exp/log1p stays finite for any d; the recurrence
    # factor (d-k+1) hits zero at k = d+1, so short stacks contribute
    # their full (exact) mass and never go negative.
    dv = d[warm].astype(np.float64)
    p = 1.0 / float(num_sets)
    odds = p / (1.0 - p)
    term = np.exp(dv * np.log1p(-p))
    acc = term.copy()
    for k in range(1, ways):
        term = term * np.maximum(dv - k + 1, 0.0) * (odds / k)
        acc += term
    out[warm] = np.minimum(acc, 1.0)
    return out


def _round_clamped(value: float, upper: int) -> int:
    return min(int(round(value)), upper)


def _memory_stats(memory) -> list[LevelStats]:
    if isinstance(memory, PartitionedMemory):
        return memory.stats_list
    return [memory.stats]


class AnalyticEngine:
    """Closed-form lower-hierarchy evaluation for one workload trace.

    Args:
        profiles: ``(granularity, chain_granularity) -> GranularityProfile``
            provider (the runner caches these in memory and on disk).
        totals: exact arrival totals of the captured post-L3 stream.
        chunks: zero-argument callable yielding the captured stream's
            chunks — used only for the exact no-lower-cache paths
            (REF, NDM), where the terminal memories are stateless and
            driving them directly is both exact and cheap.
    """

    def __init__(
        self,
        profiles: Callable[[int, int], GranularityProfile],
        totals: StreamTotals,
        chunks: Callable[[], Iterable[AccessBatch]],
    ) -> None:
        self._profiles = profiles
        self._totals = totals
        self._chunks = chunks
        self._announced: set[tuple] = set()

    # ------------------------------------------------------------------

    def _announce(self, config) -> None:
        tel = get_active()
        if not tel.enabled:
            return
        key = (config.name, config.num_sets, config.associativity)
        if key in self._announced:
            return
        self._announced.add(key)
        tel.event(
            "engine_selected",
            level=config.name,
            engine="analytic",
            policy=config.policy,
            sets=config.num_sets,
            ways=config.associativity,
        )

    def lower_stats(self, design: "MemoryDesign", drain: bool = False) -> list[LevelStats]:
        """Per-level stats for a design's lower caches + terminal memory.

        The returned list appends directly onto the exact upper-level
        (L1–L3) stats to form a
        :class:`~repro.cache.stats.HierarchyStats` indistinguishable in
        shape from an exact replay.
        """
        lower = design.lower_caches()
        memory = design.memory()
        if not lower:
            # REF / NDM: stateless terminal memories — exact.
            for chunk in self._chunks():
                if len(chunk):
                    memory.process(chunk)
            return _memory_stats(memory)
        if isinstance(memory, PartitionedMemory):
            raise SimulationError(
                "the analytic engine cannot split estimated cache-miss "
                "traffic across a partitioned memory; use an exact engine "
                f"for design {design.name!r}"
            )

        totals = self._totals
        chain = []
        for cache in lower:
            config = cache.config
            g = config.block_size
            sectored = (
                config.sector_size is not None
                and config.sector_size < config.block_size
            )
            cg = config.sector_size if sectored else g
            if config.policy != "lru":
                raise SimulationError(
                    f"the analytic engine models LRU levels only; level "
                    f"{config.name!r} uses {config.policy!r}"
                )
            self._announce(config)
            chain.append((config, g, cg, self._profiles(g, cg)))
        # Stack distances repeat heavily (at most footprint + 1
        # distinct values), and the conflict model is elementwise in
        # the distance — so evaluate the binomial CDF once per
        # distinct value. When the whole chain shares one profile (one
        # granularity pair — every single-level chain, and multi-level
        # chains at a common page size) the running maxima collapse to
        # per-*class* arrays too, and an entire cell costs O(classes)
        # instead of O(stream). Mixed-granularity chains gather the
        # per-class CDFs out to per-access arrays for the running max.
        by_class = all(p is chain[0][3] for _, _, _, p in chain)

        cm_hit: np.ndarray | None = None  # running max hit probability
        cm_wb: np.ndarray | None = None  # running max retention
        levels: list[LevelStats] = []
        prev: dict | None = None  # emission summary of the level above
        for config, g, cg, profile in chain:
            d_vals, d_loads, d_stores, d_inv = profile.distance_classes
            w_vals, w_counts, w_last, w_inv = profile.wb_classes
            cdf_hit = hit_probability(
                d_vals, config.num_sets, config.associativity
            )
            cdf_keep = hit_probability(
                w_vals, config.num_sets, config.associativity
            )
            stats = LevelStats(name=config.name)
            if by_class:
                new_cm = (
                    cdf_hit if cm_hit is None
                    else np.maximum(cm_hit, cdf_hit)
                )
                new_cmw = (
                    cdf_keep if cm_wb is None
                    else np.maximum(cm_wb, cdf_keep)
                )
                wb_float = float((1.0 - new_cmw) @ w_counts)
                flush_float = float(new_cmw @ w_last)
                if prev is None:
                    load_hits = float(new_cm @ d_loads)
                    store_hits = float(new_cm @ d_stores)
                else:
                    load_hits = float(
                        (new_cm - cm_hit) @ (d_loads + d_stores)
                    )
                    store_hits = (
                        float((new_cmw - cm_wb) @ w_counts) + prev["flush"]
                    )
            else:
                p_hit = cdf_hit[d_inv]
                p_keep = cdf_keep[w_inv]
                new_cm = (
                    p_hit if cm_hit is None else np.maximum(cm_hit, p_hit)
                )
                new_cmw = (
                    p_keep if cm_wb is None else np.maximum(cm_wb, p_keep)
                )
                wb_float = float((1.0 - new_cmw).sum())
                flush_float = float(new_cmw[profile.last_store].sum())
                if prev is not None:
                    load_hits = float((new_cm - cm_hit).sum())
                    store_hits = (
                        float((new_cmw - cm_wb).sum()) + prev["flush"]
                    )
                else:
                    store_mask = profile.is_store
                    load_hits = float(new_cm[~store_mask].sum())
                    store_hits = float(new_cm[store_mask].sum())
            if prev is None:
                # First lower level: arrivals are the captured accesses
                # themselves — demand accounting is exact.
                stats.loads = totals.loads
                stats.stores = totals.stores
                stats.load_bits = totals.load_bits
                stats.store_bits = totals.store_bits
            else:
                # Arrivals are the level above's fills (loads) and
                # writebacks (+ drain flushes, which nest and hit).
                stats.loads = prev["fills"]
                stats.stores = prev["writebacks"] + prev["flush"]
                stats.load_bits = prev["fills"] * prev["fill_bytes"] * 8
                stats.store_bits = (
                    (prev["writebacks"] + prev["flush"]) * prev["wb_bytes"] * 8
                )
            lh = _round_clamped(load_hits, stats.loads)
            sh = _round_clamped(store_hits, stats.stores)
            stats.load_hits = lh
            stats.load_misses = stats.loads - lh
            stats.store_hits = sh
            stats.store_misses = stats.stores - sh
            stats.fills = stats.load_misses + stats.store_misses
            writebacks = _round_clamped(wb_float, profile.n_stores)
            flush = 0
            if drain:
                flush = _round_clamped(flush_float, profile.n_stores)
            stats.writebacks = writebacks + flush
            levels.append(stats)
            prev = {
                "fills": stats.fills,
                "writebacks": writebacks,
                "flush": flush,
                "fill_bytes": g,
                "wb_bytes": cg,
            }
            cm_hit, cm_wb = new_cm, new_cmw

        mem_stats = LevelStats(name=memory.name)
        mem_stats.loads = prev["fills"]
        mem_stats.stores = prev["writebacks"] + prev["flush"]
        mem_stats.load_bits = prev["fills"] * prev["fill_bytes"] * 8
        mem_stats.store_bits = (
            (prev["writebacks"] + prev["flush"]) * prev["wb_bytes"] * 8
        )
        mem_stats.load_hits = mem_stats.loads
        mem_stats.store_hits = mem_stats.stores
        levels.append(mem_stats)
        return levels

"""v2 trace store and shared trace arena tests."""

import pickle

import numpy as np
import pytest

from repro.errors import TraceError, TraceIntegrityError
from repro.trace.arena import SharedStream, TraceArena, TraceHandle
from repro.trace.io import (
    checksum_path,
    load_stream,
    load_trace,
    save_stream,
    save_trace,
    verify_artifact,
)
from repro.trace.store import (
    PAGE,
    MappedStream,
    is_store_file,
    verify_store_header,
    write_store,
)
from repro.trace.stream import AddressStream
from repro.trace.synthetic import random_stream
from repro.trace.tracer import Tracer


def _assert_streams_equal(a, b):
    ba, bb = a.as_batch(), b.as_batch()
    assert np.array_equal(ba.addresses, bb.addresses)
    assert np.array_equal(ba.sizes, bb.sizes)
    assert np.array_equal(ba.is_store, bb.is_store)


@pytest.fixture
def stream():
    return random_stream(
        5000, footprint_bytes=1 << 20, store_fraction=0.3, seed=11
    )


@pytest.fixture
def chunky_stream():
    # Small chunks force a multi-chunk store.
    s = AddressStream(chunk_events=512)
    src = random_stream(3000, footprint_bytes=1 << 18, seed=3)
    for chunk in src.chunks():
        s.append(chunk.addresses, chunk.sizes, chunk.is_store)
    return s


class TestStoreFormat:
    def test_round_trip_bit_exact(self, tmp_path, stream):
        path = tmp_path / "s.rts"
        write_store(stream, path)
        loaded = load_stream(path)
        assert isinstance(loaded, MappedStream)
        assert len(loaded) == len(stream)
        _assert_streams_equal(stream, loaded)

    def test_chunk_boundaries_preserved(self, tmp_path, chunky_stream):
        path = tmp_path / "c.rts"
        write_store(chunky_stream, path)
        loaded = load_stream(path)
        assert [len(c) for c in loaded.chunks()] == [
            len(c) for c in chunky_stream.chunks()
        ]

    def test_chunks_are_zero_copy_read_only(self, tmp_path, stream):
        path = tmp_path / "s.rts"
        write_store(stream, path)
        loaded = load_stream(path)
        chunk = next(loaded.chunks())
        assert not chunk.addresses.flags.writeable
        assert not chunk.addresses.flags.owndata

    def test_chunks_page_aligned(self, tmp_path, chunky_stream):
        path = tmp_path / "c.rts"
        write_store(chunky_stream, path)
        for record in loaded_records(path):
            assert record.offset % PAGE == 0

    def test_magic_sniff(self, tmp_path, stream):
        v2 = tmp_path / "s.rts"
        write_store(stream, v2)
        assert is_store_file(v2)
        v1 = tmp_path / "s.npz"
        save_stream(stream, v1)
        assert not is_store_file(v1)

    def test_append_rejected(self, tmp_path, stream):
        path = tmp_path / "s.rts"
        write_store(stream, path)
        loaded = load_stream(path)
        with pytest.raises(TraceError, match="read-only"):
            loaded.append(
                np.zeros(1, dtype=np.uint64),
                np.full(1, 8, dtype=np.uint32),
                np.zeros(1, dtype=np.uint8),
            )

    def test_materialize_appendable_copy(self, tmp_path, stream):
        path = tmp_path / "s.rts"
        write_store(stream, path)
        copy = load_stream(path).materialize()
        copy.append(
            np.zeros(1, dtype=np.uint64),
            np.full(1, 8, dtype=np.uint32),
            np.zeros(1, dtype=np.uint8),
        )
        assert len(copy) == len(stream) + 1

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "e.rts"
        write_store(AddressStream(), path)
        loaded = load_stream(path)
        assert len(loaded) == 0
        assert list(loaded.chunks()) == []
        loaded.verify()

    def test_stats_match_in_memory(self, tmp_path, chunky_stream):
        path = tmp_path / "c.rts"
        write_store(chunky_stream, path)
        assert load_stream(path).stats() == chunky_stream.stats()

    def test_pickle_reopens_by_path(self, tmp_path, stream):
        path = tmp_path / "s.rts"
        write_store(stream, path)
        loaded = load_stream(path)
        clone = pickle.loads(pickle.dumps(loaded))
        assert isinstance(clone, MappedStream)
        _assert_streams_equal(loaded, clone)


def loaded_records(path):
    from repro.trace.store import _read_header

    _, records = _read_header(path)
    return records


class TestStoreIntegrity:
    def test_corrupt_chunk_names_chunk(self, tmp_path, chunky_stream):
        path = tmp_path / "c.rts"
        write_store(chunky_stream, path)
        records = loaded_records(path)
        target = records[2]
        data = bytearray(path.read_bytes())
        data[target.offset + 5] ^= 0xFF
        path.write_bytes(bytes(data))
        loaded = load_stream(path)
        with pytest.raises(TraceIntegrityError, match="chunk 2"):
            loaded.verify()

    def test_lazy_detection_on_first_touch(self, tmp_path, chunky_stream):
        path = tmp_path / "c.rts"
        write_store(chunky_stream, path)
        data = bytearray(path.read_bytes())
        data[PAGE + 3] ^= 0xFF  # first chunk's payload
        path.write_bytes(bytes(data))
        loaded = load_stream(path)  # lazy: open succeeds
        with pytest.raises(TraceIntegrityError, match="chunk 0"):
            next(loaded.chunks())

    def test_header_verify_detects_truncation(self, tmp_path, stream):
        path = tmp_path / "s.rts"
        write_store(stream, path)
        events = verify_store_header(path)
        assert events == len(stream)
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size // 2)
        with pytest.raises(TraceIntegrityError):
            verify_store_header(path)

    def test_verify_artifact_fast_path(self, tmp_path, stream):
        path = tmp_path / "s.rts"
        write_store(stream, path)
        # Small file (under the cap): full sidecar hash as before.
        verify_artifact(path, max_bytes=1 << 30)
        # Over the cap: only prelude + header digests are checked.
        verify_artifact(path, max_bytes=1)
        # Over the cap with a corrupt header: still detected.
        data = bytearray(path.read_bytes())
        data[-2] ^= 0xFF  # header JSON lives at the end of the file
        path.write_bytes(bytes(data))
        with pytest.raises(TraceIntegrityError):
            verify_artifact(path, max_bytes=1)

    def test_verify_artifact_fast_path_skips_non_store(self, tmp_path):
        path = tmp_path / "big.bin"
        path.write_bytes(b"x" * 4096)
        checksum_path(path).write_text("0" * 64 + "  big.bin\n")
        # Under the cap: the (wrong) sidecar is checked and fails.
        with pytest.raises(TraceIntegrityError):
            verify_artifact(path, max_bytes=1 << 20)
        # Over the cap and not a v2 store: deferred, no error.
        verify_artifact(path, max_bytes=1)


class TestMigration:
    def _traced(self, tmp_path, version):
        tracer = Tracer()
        a = tracer.array("data", (700,))
        _ = a[:]
        _ = a[:350]
        paths = save_trace(tracer.stream, tracer, tmp_path, "mig",
                           version=version)
        return tracer, paths

    def test_v1_to_v2_migration_bit_exact(self, tmp_path):
        tracer, (v1_path, _) = self._traced(tmp_path, version=1)
        assert v1_path.suffix == ".npz"
        stream, regions = load_trace(tmp_path, "mig", migrate=True)
        assert isinstance(stream, MappedStream)
        _assert_streams_equal(tracer.stream, stream)
        assert [r.name for r in regions] == ["data"]
        # The npz and its sidecar are gone; the store replaced them.
        assert not v1_path.exists()
        assert not checksum_path(v1_path).exists()
        assert (tmp_path / "mig.stream.rts").exists()

    def test_no_migration_without_flag(self, tmp_path):
        _, (v1_path, _) = self._traced(tmp_path, version=1)
        stream, _ = load_trace(tmp_path, "mig")
        assert not isinstance(stream, MappedStream)
        assert v1_path.exists()

    def test_save_trace_removes_stale_other_version(self, tmp_path):
        self._traced(tmp_path, version=1)
        tracer, (v2_path, _) = self._traced(tmp_path, version=2)
        assert v2_path.suffix == ".rts"
        assert not (tmp_path / "mig.stream.npz").exists()

    def test_discard_trace_removes_v2_artifacts(self, tmp_path):
        from repro.trace.io import discard_trace

        self._traced(tmp_path, version=2)
        removed = discard_trace(tmp_path, "mig")
        assert len(removed) == 4  # stream + regions + two sidecars
        assert not list(tmp_path.iterdir())


class TestArena:
    def _regions(self):
        tracer = Tracer()
        tracer.allocate("a", 4096)
        return tuple(tracer.regions)

    def test_file_handle_round_trip(self, tmp_path, chunky_stream):
        path = tmp_path / "c.rts"
        write_store(chunky_stream, path)
        mapped = load_stream(path)
        with TraceArena() as arena:
            handle = arena.publish("W", mapped, self._regions())
            assert handle.kind == "file"
            assert handle.events == len(chunky_stream)
            clone = pickle.loads(pickle.dumps(handle))
            attached, regions = clone.attach()
            _assert_streams_equal(chunky_stream, attached)
            assert [r.name for r in regions] == ["a"]

    def test_shm_handle_round_trip(self, chunky_stream):
        arena = TraceArena(prefer="shm")
        try:
            handle = arena.publish("W", chunky_stream, self._regions())
            assert handle.kind == "shm"
            attached, _ = handle.attach()
            assert isinstance(attached, SharedStream)
            assert [len(c) for c in attached.chunks()] == [
                len(c) for c in chunky_stream.chunks()
            ]
            _assert_streams_equal(chunky_stream, attached)
            with pytest.raises(TraceError, match="read-only"):
                attached.append(
                    np.zeros(1, dtype=np.uint64),
                    np.full(1, 8, dtype=np.uint32),
                    np.zeros(1, dtype=np.uint8),
                )
        finally:
            arena.close()

    def test_in_memory_stream_spools_to_file(self, chunky_stream):
        arena = TraceArena(prefer="file")
        try:
            handle = arena.publish("W", chunky_stream, ())
            assert handle.kind == "file"
            attached, _ = handle.attach()
            _assert_streams_equal(chunky_stream, attached)
        finally:
            arena.close()
        from pathlib import Path

        assert not Path(handle.locator).exists()  # spool cleaned up

    def test_publish_idempotent(self, chunky_stream):
        with TraceArena(prefer="shm") as arena:
            first = arena.publish("W", chunky_stream, ())
            second = arena.publish("W", chunky_stream, ())
            assert first is second

    def test_unknown_kind_rejected(self):
        handle = TraceHandle(
            workload="W", kind="carrier-pigeon", locator="x",
            chunk_lengths=(), chunk_events=1, regions=(),
        )
        with pytest.raises(TraceError):
            handle.attach()


@pytest.mark.resilience
class TestExecutorArena:
    def test_workers_share_published_traces(self, tmp_path):
        from repro.designs.reference import ReferenceDesign
        from repro.experiments.runner import Runner
        from repro.resilience import SweepExecutor
        from repro.workloads.registry import get_workload

        scale = 1.0 / 8192
        runner = Runner(scale=scale, seed=4, trace_cache_dir=str(tmp_path))
        executor = SweepExecutor(
            runner, workers=2, journal=tmp_path / "j.jsonl"
        )
        result = executor.run(
            [ReferenceDesign(scale=scale)], [get_workload("CG")]
        )
        assert all(o.ok for o in result.outcomes)
        # The arena is torn down after the campaign drains.
        assert executor._arena_handles is None
        # Parity: a serial run of the same cell is bit-identical.
        serial = Runner(
            scale=scale, seed=4, trace_cache_dir=str(tmp_path)
        ).evaluate(ReferenceDesign(scale=scale), get_workload("CG"))
        parallel_ev = result.outcomes[0].evaluation
        assert parallel_ev.time_norm == serial.time_norm
        assert parallel_ev.energy_j == serial.energy_j

    def test_share_traces_off_still_runs(self, tmp_path):
        from repro.designs.reference import ReferenceDesign
        from repro.experiments.runner import Runner
        from repro.resilience import SweepExecutor
        from repro.workloads.registry import get_workload

        scale = 1.0 / 8192
        runner = Runner(scale=scale, seed=4, trace_cache_dir=str(tmp_path))
        executor = SweepExecutor(runner, workers=2, share_traces=False)
        result = executor.run(
            [ReferenceDesign(scale=scale)], [get_workload("CG")]
        )
        assert all(o.ok for o in result.outcomes)

    def test_runner_prefers_arena_handle(self, tmp_path, chunky_stream):
        from repro.experiments.runner import Runner

        with TraceArena(prefer="shm") as arena:
            handle = arena.publish("CG", chunky_stream, ())
            runner = Runner(
                scale=1.0 / 8192, seed=4,
                trace_arena={"CG": handle},
            )
            from repro.workloads.registry import get_workload

            result = runner._load_cached_trace(get_workload("CG"))
            assert result is not None
            assert result.checks == {"cached": True}
            assert len(result.stream) == len(chunky_stream)

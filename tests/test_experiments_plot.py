"""SVG plotting tests: well-formed markup, content present."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import ModelError
from repro.experiments.figures import FigureSeries
from repro.experiments.heatmap import HeatMap
from repro.experiments.plot import figure_to_svg, heatmap_to_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


def figure():
    return FigureSeries(
        figure="Figure X",
        title="demo",
        metric="time_norm",
        categories=["N1", "N2", "N3"],
        series={
            "PCM": {"N1": 1.2, "N2": 1.1, "N3": 0.9},
            "STTRAM": {"N1": 1.3, "N2": 1.0, "N3": 0.8},
        },
    )


def heatmap():
    return HeatMap(
        figure="Figure Y",
        title="heat",
        metric="time_norm",
        read_factors=[1, 5],
        write_factors=[1, 5],
        values=[[1.0, 1.1], [1.05, 1.3]],
    )


class TestFigureSvg:
    def test_wellformed_xml(self, tmp_path):
        path = figure_to_svg(figure(), tmp_path / "f.svg")
        root = ET.parse(path).getroot()
        assert root.tag == f"{SVG_NS}svg"

    def test_one_bar_per_point(self, tmp_path):
        path = figure_to_svg(figure(), tmp_path / "f.svg")
        root = ET.parse(path).getroot()
        rects = root.findall(f".//{SVG_NS}rect")
        # 6 data bars + 2 legend swatches.
        assert len(rects) == 6 + 2

    def test_titles_carry_values(self, tmp_path):
        path = figure_to_svg(figure(), tmp_path / "f.svg")
        text = path.read_text()
        assert "PCM N1: 1.200" in text
        assert "Figure X" in text

    def test_categories_labeled(self, tmp_path):
        path = figure_to_svg(figure(), tmp_path / "f.svg")
        text = path.read_text()
        for category in ("N1", "N2", "N3"):
            assert f">{category}</text>" in text

    def test_empty_rejected(self, tmp_path):
        empty = FigureSeries(figure="F", title="t", metric="m", categories=[])
        with pytest.raises(ModelError):
            figure_to_svg(empty, tmp_path / "e.svg")

    def test_missing_category_skipped(self, tmp_path):
        fig = figure()
        del fig.series["PCM"]["N2"]
        path = figure_to_svg(fig, tmp_path / "f.svg")
        root = ET.parse(path).getroot()
        rects = root.findall(f".//{SVG_NS}rect")
        assert len(rects) == 5 + 2


class TestHeatmapSvg:
    def test_wellformed(self, tmp_path):
        path = heatmap_to_svg(heatmap(), tmp_path / "h.svg")
        root = ET.parse(path).getroot()
        assert root.tag == f"{SVG_NS}svg"

    def test_one_cell_per_point(self, tmp_path):
        path = heatmap_to_svg(heatmap(), tmp_path / "h.svg")
        root = ET.parse(path).getroot()
        rects = root.findall(f".//{SVG_NS}rect")
        assert len(rects) == 4

    def test_values_printed(self, tmp_path):
        path = heatmap_to_svg(heatmap(), tmp_path / "h.svg")
        text = path.read_text()
        assert "1.30" in text and "1.00" in text

    def test_extremes_get_extreme_colors(self, tmp_path):
        from repro.experiments.plot import _heat_color

        low = _heat_color(1.0, 1.0, 2.0)
        high = _heat_color(2.0, 1.0, 2.0)
        assert low != high
        # Low is blue-ish (blue channel max), high is red-ish.
        assert low.endswith("ff")
        assert high.startswith("#ff")

    def test_empty_rejected(self, tmp_path):
        empty = HeatMap(figure="F", title="t", metric="m",
                        read_factors=[], write_factors=[])
        with pytest.raises(ModelError):
            heatmap_to_svg(empty, tmp_path / "e.svg")

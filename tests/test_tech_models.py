"""mini-CACTI, DRAM power, and technology scaling tests."""

import pytest

from repro.errors import ConfigError
from repro.tech.dram_power import (
    DDR3_STATIC_MW_PER_MB,
    dram_static_power_w,
    edram_refresh_power_w,
    refresh_energy_j,
)
from repro.tech.minicacti import estimate_sram_cache
from repro.tech.params import DRAM, PCM
from repro.tech.scaling import scaled_technology
from repro.units import GiB, KiB, MiB


class TestMiniCacti:
    def test_latency_pyramid(self):
        """L1 < L2 < L3 latency, in the CACTI ballpark."""
        l1 = estimate_sram_cache(32 * KiB, 8)
        l2 = estimate_sram_cache(256 * KiB, 8)
        l3 = estimate_sram_cache(20 * MiB, 20)
        assert l1.access_ns < l2.access_ns < l3.access_ns
        assert 0.5 < l1.access_ns < 2.5  # ~4 cycles at 3 GHz
        assert 5.0 < l3.access_ns < 15.0

    def test_energy_grows_with_capacity(self):
        small = estimate_sram_cache(32 * KiB, 8)
        big = estimate_sram_cache(20 * MiB, 8)
        assert big.energy_pj_per_bit > small.energy_pj_per_bit

    def test_energy_grows_with_associativity(self):
        low = estimate_sram_cache(1 * MiB, 2)
        high = estimate_sram_cache(1 * MiB, 16)
        assert high.energy_pj_per_bit > low.energy_pj_per_bit

    def test_leakage_proportional_to_capacity(self):
        a = estimate_sram_cache(1 * MiB, 8)
        b = estimate_sram_cache(2 * MiB, 8)
        assert b.leakage_w == pytest.approx(2 * a.leakage_w)

    def test_sram_cheaper_per_bit_than_dram_access(self):
        # On-chip SRAM reads must cost less per bit than a DRAM access.
        l3 = estimate_sram_cache(20 * MiB, 20)
        assert l3.energy_pj_per_bit < DRAM.read_energy_pj_per_bit

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            estimate_sram_cache(0, 8)
        with pytest.raises(ConfigError):
            estimate_sram_cache(1024, 0)


class TestDramPower:
    def test_density_constant(self):
        assert dram_static_power_w(1 * MiB) == pytest.approx(
            DDR3_STATIC_MW_PER_MB / 1000
        )

    def test_4gb_in_watt_ballpark(self):
        # ~1 W/GB RDIMM planning number -> ~4 W for 4 GB.
        assert 1.0 < dram_static_power_w(4 * GiB) < 8.0

    def test_edram_refresh_at_least_dram_density(self):
        assert edram_refresh_power_w(1 * MiB) >= dram_static_power_w(1 * MiB)

    def test_refresh_energy(self):
        energy = refresh_energy_j(1024 * MiB, 10.0)
        assert energy == pytest.approx(dram_static_power_w(1024 * MiB) * 10.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            dram_static_power_w(-1)
        with pytest.raises(ConfigError):
            refresh_energy_j(1024, -1.0)


class TestScaledTechnology:
    def test_latency_scaling(self):
        t = scaled_technology(DRAM, read_latency_x=5, write_latency_x=2)
        assert t.read_delay_ns == 50.0
        assert t.write_delay_ns == 20.0

    def test_energy_scaling(self):
        t = scaled_technology(DRAM, read_energy_x=3)
        assert t.read_energy_pj_per_bit == 30.0
        assert t.write_energy_pj_per_bit == 10.0

    def test_static_zeroed_makes_nonvolatile(self):
        t = scaled_technology(DRAM, static_x=0.0)
        assert t.static_mw_per_mb == 0.0
        assert not t.volatile

    def test_base_unmodified(self):
        scaled_technology(PCM, read_latency_x=10)
        assert PCM.read_delay_ns == 21.0

    def test_custom_name(self):
        t = scaled_technology(DRAM, read_latency_x=2, name="HYP")
        assert t.name == "HYP"

    def test_default_name_annotated(self):
        t = scaled_technology(DRAM, read_latency_x=2)
        assert "DRAM" in t.name and "2" in t.name

    def test_negative_factor_rejected(self):
        with pytest.raises(ConfigError):
            scaled_technology(DRAM, read_latency_x=-1)

    def test_identity(self):
        t = scaled_technology(DRAM)
        assert t.read_delay_ns == DRAM.read_delay_ns
        assert t.volatile

"""Calibration-procedure tests."""

import pytest

from repro.errors import ModelError
from repro.experiments.calibrate import (
    CalibrationResult,
    anchor_delta,
    calibrate_local_factor,
)
from repro.experiments.runner import Runner
from repro.workloads.registry import get_workload

SCALE = 1.0 / 8192


@pytest.fixture(scope="module")
def zero_runner():
    return Runner(scale=SCALE, seed=1, local_factor=0.0)


@pytest.fixture(scope="module")
def small_suite():
    return [get_workload("CG"), get_workload("Hashing")]


class TestAnchorDelta:
    def test_positive(self, zero_runner, small_suite):
        delta = anchor_delta(zero_runner, small_suite, lam=0.0)
        assert delta > 0  # 5x read latency must cost something

    def test_monotone_decreasing_in_lambda(self, zero_runner, small_suite):
        deltas = [
            anchor_delta(zero_runner, small_suite, lam)
            for lam in (0.0, 4.0, 16.0)
        ]
        assert deltas[0] > deltas[1] > deltas[2]

    def test_requires_zero_local_factor(self, small_suite):
        runner = Runner(scale=SCALE, seed=1, local_factor=8.0)
        with pytest.raises(ModelError):
            anchor_delta(runner, small_suite, lam=0.0)


class TestBisection:
    def test_hits_target_within_tolerance(self):
        result = calibrate_local_factor(
            scale=SCALE,
            seed=1,
            workload_names=["CG", "Hashing"],
            target_delta=0.05,
            tolerance=0.005,
        )
        assert isinstance(result, CalibrationResult)
        assert abs(result.achieved_delta - 0.05) <= 0.005 or (
            result.local_factor == 0.0
        )

    def test_large_target_needs_no_dilution(self):
        """An impossible (too large) target clamps at lambda = 0."""
        result = calibrate_local_factor(
            scale=SCALE,
            seed=1,
            workload_names=["CG"],
            target_delta=10.0,
        )
        assert result.local_factor == 0.0
        assert result.iterations == 0

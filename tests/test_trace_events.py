"""AccessBatch and line-expansion tests."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.events import LOAD, STORE, AccessBatch, expand_to_lines


class TestAccessBatch:
    def test_from_lists_coerces_dtypes(self):
        batch = AccessBatch.from_lists([0, 64], [8, 8], [0, 1])
        assert batch.addresses.dtype == np.uint64
        assert batch.sizes.dtype == np.uint32
        assert batch.is_store.dtype == np.uint8

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            AccessBatch.from_lists([0, 64], [8], [0, 1])

    def test_empty(self):
        batch = AccessBatch.empty()
        assert len(batch) == 0
        assert batch.load_count == 0 and batch.store_count == 0

    def test_counts(self):
        batch = AccessBatch.from_lists([0, 8, 16], 8, [0, 1, 1])
        assert batch.load_count == 1
        assert batch.store_count == 2

    def test_concat_preserves_order(self):
        a = AccessBatch.from_lists([1, 2], 8, 0)
        b = AccessBatch.from_lists([3], 8, 1)
        joined = a.concat(b)
        assert joined.addresses.tolist() == [1, 2, 3]
        assert joined.is_store.tolist() == [0, 0, 1]

    def test_slice_is_view(self):
        batch = AccessBatch.from_lists(range(10), 8, 0)
        sub = batch.slice(2, 5)
        assert sub.addresses.tolist() == [2, 3, 4]

    def test_load_store_constants(self):
        assert LOAD == 0 and STORE == 1


class TestExpandToLines:
    def test_aligned_accesses_one_line_each(self):
        batch = AccessBatch.from_lists([0, 64, 128], 8, 0)
        lines, kinds = expand_to_lines(batch, 64)
        assert lines.tolist() == [0, 1, 2]
        assert kinds.tolist() == [0, 0, 0]

    def test_spanning_access_expanded(self):
        # 16-byte access at offset 56 touches lines 0 and 1.
        batch = AccessBatch.from_lists([56], [16], [1])
        lines, kinds = expand_to_lines(batch, 64)
        assert lines.tolist() == [0, 1]
        assert kinds.tolist() == [1, 1]

    def test_large_access_touches_many_lines(self):
        batch = AccessBatch.from_lists([0], [256], [0])
        lines, _ = expand_to_lines(batch, 64)
        assert lines.tolist() == [0, 1, 2, 3]

    def test_order_preserved_around_span(self):
        batch = AccessBatch.from_lists([0, 60, 128], [8, 8, 8], [0, 1, 0])
        lines, kinds = expand_to_lines(batch, 64)
        assert lines.tolist() == [0, 0, 1, 2]
        assert kinds.tolist() == [0, 1, 1, 0]

    def test_empty_batch(self):
        lines, kinds = expand_to_lines(AccessBatch.empty(), 64)
        assert len(lines) == 0 and len(kinds) == 0

"""Experiment runner tests: caching, shared-prefix correctness, oracle."""

import pytest

from repro.designs.configs import EH_CONFIGS, N_CONFIGS
from repro.designs.fourlc import FourLCDesign
from repro.designs.nmm import NMMDesign
from repro.designs.reference import ReferenceDesign
from repro.experiments.runner import CapturingMemory, Runner
from repro.tech.params import EDRAM, PCM, STTRAM
from repro.trace.events import AccessBatch
from repro.workloads.registry import get_workload

SCALE = 1.0 / 8192


@pytest.fixture(scope="module")
def shared_runner():
    """One runner reused across this module (tracing is the slow part)."""
    return Runner(scale=SCALE, seed=5)


@pytest.fixture(scope="module")
def cg():
    return get_workload("CG")


class TestCapturingMemory:
    def test_captures_requests(self):
        mem = CapturingMemory()
        mem.process(AccessBatch.from_lists([0, 64], 64, [0, 1]))
        assert len(mem.captured) == 2
        assert mem.stats.loads == 1


class TestPrepare:
    def test_cached_per_workload(self, shared_runner, cg):
        a = shared_runner.prepare(cg)
        b = shared_runner.prepare(cg)
        assert a is b

    def test_local_factor_dilutes_references(self, cg):
        with_locals = Runner(scale=SCALE, seed=5, local_factor=4.0)
        without = Runner(scale=SCALE, seed=5, local_factor=0.0)
        tw = with_locals.prepare(cg)
        to = without.prepare(cg)
        assert tw.references == to.references * 5
        # The injected traffic is all L1 load hits.
        assert tw.upper_stats[0].load_hits - to.upper_stats[0].load_hits == (
            tw.references - to.references
        )

    def test_invalid_local_factor(self):
        with pytest.raises(ValueError):
            Runner(local_factor=-1.0)

    def test_reference_amat_positive(self, shared_runner, cg):
        trace = shared_runner.prepare(cg)
        assert trace.ref_raw.amat_ns > 0

    def test_post_l3_smaller_than_trace(self, shared_runner, cg):
        trace = shared_runner.prepare(cg)
        assert 0 < len(trace.post_l3) < len(trace.result.stream)


class TestEvaluate:
    def test_reference_normalizes_to_unity(self, shared_runner, cg):
        ref = ReferenceDesign(scale=SCALE, reference=shared_runner.reference)
        ev = shared_runner.evaluate(ref, cg)
        assert ev.time_norm == pytest.approx(1.0)
        assert ev.energy_norm == pytest.approx(1.0)

    def test_split_equals_full_hierarchy_run(self, shared_runner, cg):
        """The shared-prefix optimization must be exact: running the
        design's full hierarchy end-to-end gives identical stats."""
        design = NMMDesign(
            PCM, N_CONFIGS["N6"], scale=SCALE, reference=shared_runner.reference
        )
        split = shared_runner.stats_for(design, cg)
        trace = shared_runner.prepare(cg)
        full = design.build().run(trace.result.stream)
        for split_level, full_level in zip(split.levels, full.levels):
            if split_level.name == "L1":
                continue  # locals injection intentionally differs
            assert split_level.as_dict() == full_level.as_dict(), split_level.name

    def test_sim_shared_across_technologies(self, shared_runner, cg):
        a = NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                      reference=shared_runner.reference)
        b = NMMDesign(STTRAM, N_CONFIGS["N6"], scale=SCALE,
                      reference=shared_runner.reference)
        stats_a = shared_runner.stats_for(a, cg)
        stats_b = shared_runner.stats_for(b, cg)
        assert stats_a is stats_b  # one simulation, two bindings

    def test_nvm_write_asymmetry_visible(self, shared_runner, cg):
        """PCM (100 ns writes) must cost more time than STT-RAM (35 ns)
        whenever any writebacks reach NVM."""
        pcm = shared_runner.evaluate(
            NMMDesign(PCM, N_CONFIGS["N9"], scale=SCALE,
                      reference=shared_runner.reference), cg
        )
        stt = shared_runner.evaluate(
            NMMDesign(STTRAM, N_CONFIGS["N9"], scale=SCALE,
                      reference=shared_runner.reference), cg
        )
        stats = shared_runner.stats_for(
            NMMDesign(PCM, N_CONFIGS["N9"], scale=SCALE,
                      reference=shared_runner.reference), cg
        )
        if stats.level("NVM").stores > stats.level("NVM").loads:
            assert pcm.time_norm > stt.time_norm

    def test_fourlc_design_evaluates(self, shared_runner, cg):
        design = FourLCDesign(
            EDRAM, EH_CONFIGS["EH1"], scale=SCALE,
            reference=shared_runner.reference,
        )
        ev = shared_runner.evaluate(design, cg)
        assert 0.5 < ev.time_norm < 2.0
        assert ev.energy_j > 0


class TestNdmOracle:
    def test_oracle_returns_placements(self, shared_runner, cg):
        results = shared_runner.ndm_oracle(cg, PCM)
        assert results
        best = results[0]
        assert best.evaluation.time_s > 0
        assert best.nvm_ranges

    def test_oracle_objective_ranking(self, shared_runner, cg):
        results = shared_runner.ndm_oracle(cg, PCM, objective="time")
        feasible = [r for r in results if r.feasible]
        if len(feasible) >= 2:
            times = [r.evaluation.time_s for r in feasible]
            assert times == sorted(times)

"""Synthetic stream generator tests: locality signatures must be real."""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.setassoc import SetAssociativeCache
from repro.errors import TraceError
from repro.trace.synthetic import (
    pointer_chase_stream,
    random_stream,
    sequential_stream,
    strided_stream,
    zipf_stream,
)
from repro.units import KiB, MiB


def hit_rate(stream, capacity=32 * KiB):
    cache = SetAssociativeCache(CacheConfig("T", capacity, 8, 64))
    for chunk in stream.chunks():
        cache.process(chunk)
    return cache.stats.hit_rate


class TestSequential:
    def test_count_and_addresses(self):
        stream = sequential_stream(100, base=0, access_size=8)
        batch = stream.as_batch()
        assert batch.addresses.tolist() == [8 * i for i in range(100)]

    def test_high_spatial_locality(self):
        assert hit_rate(sequential_stream(50_000)) > 0.85

    def test_store_fraction(self):
        stream = sequential_stream(10_000, store_fraction=0.5, seed=1)
        assert 0.4 < stream.stats().store_fraction < 0.6

    def test_deterministic(self):
        a = sequential_stream(100, store_fraction=0.3, seed=7).as_batch()
        b = sequential_stream(100, store_fraction=0.3, seed=7).as_batch()
        assert np.array_equal(a.is_store, b.is_store)


class TestStrided:
    def test_stride_spacing(self):
        batch = strided_stream(10, stride=256, base=0).as_batch()
        assert batch.addresses.tolist() == [256 * i for i in range(10)]

    def test_cache_line_stride_defeats_spatial_locality(self):
        stream = strided_stream(20_000, stride=64)
        assert hit_rate(stream) < 0.05

    def test_invalid_stride(self):
        with pytest.raises(TraceError):
            strided_stream(10, stride=0)

    def test_negative_events(self):
        with pytest.raises(TraceError):
            strided_stream(-1, stride=8)


class TestRandom:
    def test_footprint_respected(self):
        stream = random_stream(10_000, footprint_bytes=1 * MiB, base=0, seed=0)
        stats = stream.stats()
        assert stats.max_address < 1 * MiB

    def test_capacity_behaviour(self):
        fits = random_stream(30_000, footprint_bytes=16 * KiB, seed=0)
        spills = random_stream(30_000, footprint_bytes=16 * MiB, seed=0)
        assert hit_rate(fits) > 0.9
        assert hit_rate(spills) < 0.2

    def test_tiny_footprint_rejected(self):
        with pytest.raises(TraceError):
            random_stream(10, footprint_bytes=4, access_size=8)


class TestZipf:
    def test_skewed_reuse(self):
        """The Zipf hot set keeps hit rates high even when the footprint
        dwarfs the cache — unlike uniform random."""
        zipf = zipf_stream(30_000, footprint_bytes=16 * MiB, alpha=1.5, seed=0)
        uniform = random_stream(30_000, footprint_bytes=16 * MiB, seed=0)
        assert hit_rate(zipf) > hit_rate(uniform) + 0.2

    def test_alpha_validation(self):
        with pytest.raises(TraceError):
            zipf_stream(10, footprint_bytes=1 * MiB, alpha=1.0)

    def test_store_fraction_bounds(self):
        with pytest.raises(TraceError):
            zipf_stream(10, footprint_bytes=1 * MiB, store_fraction=1.5)


class TestPointerChase:
    def test_all_loads(self):
        stream = pointer_chase_stream(1000, footprint_bytes=64 * KiB, seed=0)
        assert stream.stats().stores == 0

    def test_cycle_visits_distinct_nodes(self):
        stream = pointer_chase_stream(512, footprint_bytes=64 * KiB, seed=0)
        batch = stream.as_batch()
        # A permutation cycle: no address repeats within one lap.
        assert len(np.unique(batch.addresses)) == 512

    def test_worst_case_for_capacity(self):
        stream = pointer_chase_stream(
            20_000, footprint_bytes=16 * MiB, node_size=64, seed=0
        )
        assert hit_rate(stream) < 0.05

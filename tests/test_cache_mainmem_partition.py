"""MainMemory and PartitionedMemory tests."""

import pytest

from repro.cache.mainmem import MainMemory
from repro.cache.partition import PartitionedMemory, RoutingRule
from repro.errors import ConfigError
from repro.trace.events import AccessBatch


def batch(addresses, sizes=64, kinds=0):
    n = len(addresses)
    return AccessBatch.from_lists(
        addresses,
        [sizes] * n if isinstance(sizes, int) else sizes,
        [kinds] * n if isinstance(kinds, int) else kinds,
    )


class TestMainMemory:
    def test_counts_loads_and_stores(self, memory):
        memory.process(batch([0, 64, 128], kinds=[0, 1, 0]))
        assert memory.stats.loads == 2
        assert memory.stats.stores == 1

    def test_bits(self, memory):
        memory.process(batch([0, 64], sizes=[64, 4096], kinds=[0, 1]))
        assert memory.stats.load_bits == 64 * 8
        assert memory.stats.store_bits == 4096 * 8

    def test_everything_hits(self, memory):
        memory.process(batch([0, 64]))
        assert memory.stats.hit_rate == 1.0

    def test_returns_empty_downstream(self, memory):
        assert len(memory.process(batch([0]))) == 0

    def test_reset(self, memory):
        memory.process(batch([0]))
        memory.reset()
        assert memory.stats.accesses == 0


class TestRoutingRule:
    def test_empty_range_rejected(self):
        with pytest.raises(ConfigError):
            RoutingRule(10, 10, 0)

    def test_negative_device_rejected(self):
        with pytest.raises(ConfigError):
            RoutingRule(0, 10, -1)


class TestPartitionedMemory:
    def make(self):
        dram = MainMemory("DRAMpart")
        nvm = MainMemory("NVMpart")
        pm = PartitionedMemory(
            [dram, nvm], [RoutingRule(1000, 2000, 1)], default_device=0
        )
        return pm, dram, nvm

    def test_routing_by_range(self):
        pm, dram, nvm = self.make()
        pm.process(batch([0, 1000, 1999, 2000, 500]))
        assert dram.stats.loads == 3
        assert nvm.stats.loads == 2

    def test_first_match_wins(self):
        a, b = MainMemory("A"), MainMemory("B")
        pm = PartitionedMemory(
            [a, b],
            [RoutingRule(0, 100, 1), RoutingRule(0, 1000, 0)],
            default_device=0,
        )
        pm.process(batch([50]))
        assert b.stats.loads == 1

    def test_kind_preserved_across_routing(self):
        pm, dram, nvm = self.make()
        pm.process(batch([1500, 500], kinds=[1, 0]))
        assert nvm.stats.stores == 1
        assert dram.stats.loads == 1

    def test_no_devices_rejected(self):
        with pytest.raises(ConfigError):
            PartitionedMemory([], [])

    def test_bad_default_rejected(self):
        with pytest.raises(ConfigError):
            PartitionedMemory([MainMemory("A")], [], default_device=5)

    def test_rule_to_missing_device_rejected(self):
        with pytest.raises(ConfigError):
            PartitionedMemory([MainMemory("A")], [RoutingRule(0, 10, 3)])

    def test_stats_list_order(self):
        pm, dram, nvm = self.make()
        assert [s.name for s in pm.stats_list] == ["DRAMpart", "NVMpart"]

    def test_reset(self):
        pm, dram, nvm = self.make()
        pm.process(batch([1500]))
        pm.reset()
        assert nvm.stats.accesses == 0

    def test_empty_batch(self):
        pm, _, _ = self.make()
        assert len(pm.process(AccessBatch.empty())) == 0

    def test_name(self):
        pm, _, _ = self.make()
        assert pm.name == "DRAMpart+NVMpart"
